//===- ir/Expr.h - Immutable expression AST ---------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression IR shared by every stage of the pipeline: the functional
/// model of loop bodies (paper Section 3.3), the symbolic unfoldings consumed
/// by Algorithm 1, the rewrite engine's terms, and the candidate expressions
/// produced by join synthesis.
///
/// Expressions are immutable, heap-allocated nodes reachable through
/// std::shared_ptr<const Expr> (ExprRef). Every node caches its structural
/// hash, depth and size at construction, so equality checks (hash fast path +
/// recursive compare) and the cost function of Definition 6.1 are cheap.
/// LLVM-style isa<>/cast<>/dyn_cast<> dispatch is provided through kind tags.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_IR_EXPR_H
#define PARSYNT_IR_EXPR_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parsynt {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Internal factory granting the static get() functions access to the
/// private node constructors (defined in Expr.cpp).
struct ExprFactory;

/// Discriminator for the Expr class hierarchy.
enum class ExprKind {
  IntConst,
  BoolConst,
  Var,
  SeqAccess,
  Unary,
  Binary,
  Ite,
};

/// Unary operators. Neg : int -> int, Not : bool -> bool.
enum class UnaryOp { Neg, Not };

/// Binary operators of the Figure-3/Figure-4 grammars.
enum class BinaryOp {
  // int x int -> int
  Add,
  Sub,
  Mul,
  Div,
  Min,
  Max,
  // int x int -> bool
  Lt,
  Le,
  Gt,
  Ge,
  // T x T -> bool
  Eq,
  Ne,
  // bool x bool -> bool
  And,
  Or,
};

/// Role of a named variable in a loop body (paper Section 3.3): state
/// variables are assigned in the body; input variables are only read.
/// Unknown marks the symbolic initial-state variables introduced by the
/// unfolder of Algorithm 1 (the "red" values in the paper's Figure 5).
enum class VarClass { State, Input, Unknown };

/// Returns the result type of applying \p Op to integer or boolean operands.
Type binaryResultType(BinaryOp Op);
/// True for Add..Max (operands are ints, result is int).
bool isArithOp(BinaryOp Op);
/// True for Lt..Ne.
bool isCompareOp(BinaryOp Op);
/// True for And/Or.
bool isBoolOp(BinaryOp Op);
/// True if the operator is commutative over its (well-typed) domain.
bool isCommutative(BinaryOp Op);
/// True if the operator is associative over its (well-typed) domain.
bool isAssociative(BinaryOp Op);
/// Source spelling of the operator ("+", "min", "&&", ...).
const char *binaryOpName(BinaryOp Op);
const char *unaryOpName(UnaryOp Op);

/// Base class of all expression nodes.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  Type type() const { return Ty; }
  /// Structural hash, cached at construction.
  uint64_t hash() const { return Hash; }
  /// Height of the expression tree; leaves have depth 1.
  unsigned depth() const { return Depth; }
  /// Total number of nodes.
  unsigned size() const { return Size; }

protected:
  Expr(ExprKind Kind, Type Ty, uint64_t Hash, unsigned Depth, unsigned Size)
      : Kind(Kind), Ty(Ty), Hash(Hash), Depth(Depth), Size(Size) {}

private:
  ExprKind Kind;
  Type Ty;
  uint64_t Hash;
  unsigned Depth;
  unsigned Size;
};

/// An integer literal.
class IntConstExpr : public Expr {
public:
  int64_t value() const { return Value; }

  static ExprRef get(int64_t Value);
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntConst; }

private:
  friend struct ExprFactory;
  IntConstExpr(int64_t Value, uint64_t Hash)
      : Expr(ExprKind::IntConst, Type::Int, Hash, 1, 1), Value(Value) {}
  int64_t Value;
};

/// A boolean literal.
class BoolConstExpr : public Expr {
public:
  bool value() const { return Value; }

  static ExprRef get(bool Value);
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::BoolConst;
  }

private:
  friend struct ExprFactory;
  BoolConstExpr(bool Value, uint64_t Hash)
      : Expr(ExprKind::BoolConst, Type::Bool, Hash, 1, 1), Value(Value) {}
  bool Value;
};

/// A scalar variable reference. Identity is (name); the class records the
/// variable's role for sketch compilation and unfolding.
class VarExpr : public Expr {
public:
  const std::string &name() const { return Name; }
  VarClass varClass() const { return Class; }

  static ExprRef get(std::string Name, Type Ty, VarClass Class);
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  friend struct ExprFactory;
  VarExpr(std::string Name, Type Ty, VarClass Class, uint64_t Hash)
      : Expr(ExprKind::Var, Ty, Hash, 1, 1), Name(std::move(Name)),
        Class(Class) {}
  std::string Name;
  VarClass Class;
};

/// A sequence element access s[e]. The sequence itself is identified by name;
/// ElemTy is the element type of the sequence.
class SeqAccessExpr : public Expr {
public:
  const std::string &seqName() const { return SeqName; }
  const ExprRef &index() const { return Index; }

  static ExprRef get(std::string SeqName, Type ElemTy, ExprRef Index);
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::SeqAccess;
  }

private:
  friend struct ExprFactory;
  SeqAccessExpr(std::string SeqName, Type ElemTy, ExprRef Index, uint64_t Hash,
                unsigned Depth, unsigned Size)
      : Expr(ExprKind::SeqAccess, ElemTy, Hash, Depth, Size),
        SeqName(std::move(SeqName)), Index(std::move(Index)) {}
  std::string SeqName;
  ExprRef Index;
};

/// A unary operation (-e, !e).
class UnaryExpr : public Expr {
public:
  UnaryOp op() const { return Op; }
  const ExprRef &operand() const { return Operand; }

  static ExprRef get(UnaryOp Op, ExprRef Operand);
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  friend struct ExprFactory;
  UnaryExpr(UnaryOp Op, ExprRef Operand, uint64_t Hash, unsigned Depth,
            unsigned Size)
      : Expr(ExprKind::Unary, Op == UnaryOp::Neg ? Type::Int : Type::Bool,
             Hash, Depth, Size),
        Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprRef Operand;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryOp op() const { return Op; }
  const ExprRef &lhs() const { return Lhs; }
  const ExprRef &rhs() const { return Rhs; }

  static ExprRef get(BinaryOp Op, ExprRef Lhs, ExprRef Rhs);
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  friend struct ExprFactory;
  BinaryExpr(BinaryOp Op, ExprRef Lhs, ExprRef Rhs, uint64_t Hash,
             unsigned Depth, unsigned Size)
      : Expr(ExprKind::Binary, binaryResultType(Op), Hash, Depth, Size),
        Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprRef Lhs;
  ExprRef Rhs;
};

/// A conditional expression (c ? t : e).
class IteExpr : public Expr {
public:
  const ExprRef &cond() const { return Cond; }
  const ExprRef &thenExpr() const { return Then; }
  const ExprRef &elseExpr() const { return Else; }

  static ExprRef get(ExprRef Cond, ExprRef Then, ExprRef Else);
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Ite; }

private:
  friend struct ExprFactory;
  IteExpr(ExprRef Cond, ExprRef Then, ExprRef Else, uint64_t Hash,
          unsigned Depth, unsigned Size)
      : Expr(ExprKind::Ite, Then->type(), Hash, Depth, Size),
        Cond(std::move(Cond)), Then(std::move(Then)), Else(std::move(Else)) {}
  ExprRef Cond;
  ExprRef Then;
  ExprRef Else;
};

//===----------------------------------------------------------------------===//
// LLVM-style RTTI over ExprKind.
//===----------------------------------------------------------------------===//

template <typename T> bool isa(const Expr *E) {
  assert(E && "isa<> on null expression");
  return T::classof(E);
}
template <typename T> bool isa(const ExprRef &E) { return isa<T>(E.get()); }

template <typename T> const T *cast(const Expr *E) {
  assert(isa<T>(E) && "cast<> to incompatible expression kind");
  return static_cast<const T *>(E);
}
template <typename T> const T *cast(const ExprRef &E) {
  return cast<T>(E.get());
}

template <typename T> const T *dyn_cast(const Expr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> const T *dyn_cast(const ExprRef &E) {
  return dyn_cast<T>(E.get());
}

//===----------------------------------------------------------------------===//
// Structural operations.
//===----------------------------------------------------------------------===//

/// Structural equality (hash fast path + recursive compare).
bool exprEquals(const ExprRef &A, const ExprRef &B);

/// Renders the expression in source syntax, fully parenthesized where the
/// structure is not obvious.
std::string exprToString(const ExprRef &E);

//===----------------------------------------------------------------------===//
// Convenience builders.
//===----------------------------------------------------------------------===//

inline ExprRef intConst(int64_t V) { return IntConstExpr::get(V); }
inline ExprRef boolConst(bool V) { return BoolConstExpr::get(V); }
inline ExprRef stateVar(std::string Name, Type Ty = Type::Int) {
  return VarExpr::get(std::move(Name), Ty, VarClass::State);
}
inline ExprRef inputVar(std::string Name, Type Ty = Type::Int) {
  return VarExpr::get(std::move(Name), Ty, VarClass::Input);
}
inline ExprRef unknownVar(std::string Name, Type Ty = Type::Int) {
  return VarExpr::get(std::move(Name), Ty, VarClass::Unknown);
}
inline ExprRef seqAccess(std::string Seq, ExprRef Index,
                         Type ElemTy = Type::Int) {
  return SeqAccessExpr::get(std::move(Seq), ElemTy, std::move(Index));
}
inline ExprRef neg(ExprRef E) { return UnaryExpr::get(UnaryOp::Neg, E); }
inline ExprRef notE(ExprRef E) { return UnaryExpr::get(UnaryOp::Not, E); }
inline ExprRef binary(BinaryOp Op, ExprRef L, ExprRef R) {
  return BinaryExpr::get(Op, std::move(L), std::move(R));
}
inline ExprRef add(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Add, std::move(L), std::move(R));
}
inline ExprRef sub(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Sub, std::move(L), std::move(R));
}
inline ExprRef mul(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Mul, std::move(L), std::move(R));
}
inline ExprRef minE(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Min, std::move(L), std::move(R));
}
inline ExprRef maxE(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Max, std::move(L), std::move(R));
}
inline ExprRef lt(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Lt, std::move(L), std::move(R));
}
inline ExprRef le(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Le, std::move(L), std::move(R));
}
inline ExprRef gt(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Gt, std::move(L), std::move(R));
}
inline ExprRef ge(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Ge, std::move(L), std::move(R));
}
inline ExprRef eq(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Eq, std::move(L), std::move(R));
}
inline ExprRef ne(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Ne, std::move(L), std::move(R));
}
inline ExprRef andE(ExprRef L, ExprRef R) {
  return binary(BinaryOp::And, std::move(L), std::move(R));
}
inline ExprRef orE(ExprRef L, ExprRef R) {
  return binary(BinaryOp::Or, std::move(L), std::move(R));
}
inline ExprRef ite(ExprRef C, ExprRef T, ExprRef E) {
  return IteExpr::get(std::move(C), std::move(T), std::move(E));
}

} // namespace parsynt

#endif // PARSYNT_IR_EXPR_H
