//===- ir/Expr.cpp - Immutable expression AST -----------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include <functional>
#include <sstream>

using namespace parsynt;

//===----------------------------------------------------------------------===//
// Operator metadata.
//===----------------------------------------------------------------------===//

Type parsynt::binaryResultType(BinaryOp Op) {
  return isArithOp(Op) ? Type::Int : Type::Bool;
}

bool parsynt::isArithOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Min:
  case BinaryOp::Max:
    return true;
  default:
    return false;
  }
}

bool parsynt::isCompareOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

bool parsynt::isBoolOp(BinaryOp Op) {
  return Op == BinaryOp::And || Op == BinaryOp::Or;
}

bool parsynt::isCommutative(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::Min:
  case BinaryOp::Max:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::And:
  case BinaryOp::Or:
    return true;
  default:
    return false;
  }
}

bool parsynt::isAssociative(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::Min:
  case BinaryOp::Max:
  case BinaryOp::And:
  case BinaryOp::Or:
    return true;
  default:
    return false;
  }
}

const char *parsynt::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Min:
    return "min";
  case BinaryOp::Max:
    return "max";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

const char *parsynt::unaryOpName(UnaryOp Op) {
  return Op == UnaryOp::Neg ? "-" : "!";
}

//===----------------------------------------------------------------------===//
// Hashing.
//===----------------------------------------------------------------------===//

namespace {

uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // Boost-style combiner with a 64-bit golden-ratio constant.
  return Seed ^ (Value + 0x9e3779b97f4a7c15ull + (Seed << 12) + (Seed >> 4));
}

uint64_t hashString(const std::string &S) {
  return std::hash<std::string>{}(S);
}

} // namespace

/// Grants the static get() factories access to the private constructors
/// without befriending std::make_shared's internals.
struct parsynt::ExprFactory {
  template <typename T, typename... Args> static ExprRef make(Args &&...A) {
    return ExprRef(new T(std::forward<Args>(A)...));
  }
};

ExprRef IntConstExpr::get(int64_t Value) {
  uint64_t H = hashCombine(1, static_cast<uint64_t>(Value));
  return ExprFactory::make<IntConstExpr>(Value, H);
}

ExprRef BoolConstExpr::get(bool Value) {
  uint64_t H = hashCombine(2, Value ? 0xb5ull : 0x5bull);
  return ExprFactory::make<BoolConstExpr>(Value, H);
}

ExprRef VarExpr::get(std::string Name, Type Ty, VarClass Class) {
  uint64_t H = hashCombine(3, hashString(Name));
  H = hashCombine(H, static_cast<uint64_t>(Ty));
  return ExprFactory::make<VarExpr>(std::move(Name), Ty, Class, H);
}

ExprRef SeqAccessExpr::get(std::string SeqName, Type ElemTy, ExprRef Index) {
  assert(Index && Index->type() == Type::Int && "sequence index must be int");
  uint64_t H = hashCombine(4, hashString(SeqName));
  H = hashCombine(H, Index->hash());
  unsigned Depth = Index->depth() + 1;
  unsigned Size = Index->size() + 1;
  return ExprFactory::make<SeqAccessExpr>(std::move(SeqName), ElemTy,
                                          std::move(Index), H, Depth, Size);
}

ExprRef UnaryExpr::get(UnaryOp Op, ExprRef Operand) {
  assert(Operand && "null operand");
  assert((Op == UnaryOp::Neg ? Operand->type() == Type::Int
                             : Operand->type() == Type::Bool) &&
         "ill-typed unary expression");
  uint64_t H = hashCombine(5, static_cast<uint64_t>(Op));
  H = hashCombine(H, Operand->hash());
  unsigned Depth = Operand->depth() + 1;
  unsigned Size = Operand->size() + 1;
  return ExprFactory::make<UnaryExpr>(Op, std::move(Operand), H, Depth, Size);
}

ExprRef BinaryExpr::get(BinaryOp Op, ExprRef Lhs, ExprRef Rhs) {
  assert(Lhs && Rhs && "null operand");
  if (isArithOp(Op) || (isCompareOp(Op) && !(Op == BinaryOp::Eq ||
                                             Op == BinaryOp::Ne)))
    assert(Lhs->type() == Type::Int && Rhs->type() == Type::Int &&
           "ill-typed arithmetic/comparison");
  if (Op == BinaryOp::Eq || Op == BinaryOp::Ne)
    assert(Lhs->type() == Rhs->type() && "ill-typed equality");
  if (isBoolOp(Op))
    assert(Lhs->type() == Type::Bool && Rhs->type() == Type::Bool &&
           "ill-typed boolean operation");
  uint64_t H = hashCombine(6, static_cast<uint64_t>(Op));
  H = hashCombine(H, Lhs->hash());
  H = hashCombine(H, Rhs->hash());
  unsigned Depth = std::max(Lhs->depth(), Rhs->depth()) + 1;
  unsigned Size = Lhs->size() + Rhs->size() + 1;
  return ExprFactory::make<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs), H,
                                       Depth, Size);
}

ExprRef IteExpr::get(ExprRef Cond, ExprRef Then, ExprRef Else) {
  assert(Cond && Then && Else && "null operand");
  assert(Cond->type() == Type::Bool && "condition must be boolean");
  assert(Then->type() == Else->type() && "branch types must agree");
  uint64_t H = hashCombine(7, Cond->hash());
  H = hashCombine(H, Then->hash());
  H = hashCombine(H, Else->hash());
  unsigned Depth =
      std::max(Cond->depth(), std::max(Then->depth(), Else->depth())) + 1;
  unsigned Size = Cond->size() + Then->size() + Else->size() + 1;
  return ExprFactory::make<IteExpr>(std::move(Cond), std::move(Then),
                                    std::move(Else), H, Depth, Size);
}

//===----------------------------------------------------------------------===//
// Structural equality.
//===----------------------------------------------------------------------===//

bool parsynt::exprEquals(const ExprRef &A, const ExprRef &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B)
    return false;
  if (A->hash() != B->hash() || A->kind() != B->kind() ||
      A->type() != B->type() || A->size() != B->size())
    return false;
  switch (A->kind()) {
  case ExprKind::IntConst:
    return cast<IntConstExpr>(A)->value() == cast<IntConstExpr>(B)->value();
  case ExprKind::BoolConst:
    return cast<BoolConstExpr>(A)->value() == cast<BoolConstExpr>(B)->value();
  case ExprKind::Var:
    return cast<VarExpr>(A)->name() == cast<VarExpr>(B)->name();
  case ExprKind::SeqAccess: {
    const auto *SA = cast<SeqAccessExpr>(A);
    const auto *SB = cast<SeqAccessExpr>(B);
    return SA->seqName() == SB->seqName() &&
           exprEquals(SA->index(), SB->index());
  }
  case ExprKind::Unary: {
    const auto *UA = cast<UnaryExpr>(A);
    const auto *UB = cast<UnaryExpr>(B);
    return UA->op() == UB->op() && exprEquals(UA->operand(), UB->operand());
  }
  case ExprKind::Binary: {
    const auto *BA = cast<BinaryExpr>(A);
    const auto *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && exprEquals(BA->lhs(), BB->lhs()) &&
           exprEquals(BA->rhs(), BB->rhs());
  }
  case ExprKind::Ite: {
    const auto *IA = cast<IteExpr>(A);
    const auto *IB = cast<IteExpr>(B);
    return exprEquals(IA->cond(), IB->cond()) &&
           exprEquals(IA->thenExpr(), IB->thenExpr()) &&
           exprEquals(IA->elseExpr(), IB->elseExpr());
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Printing.
//===----------------------------------------------------------------------===//

namespace {

void printExpr(std::ostringstream &OS, const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
    OS << cast<IntConstExpr>(E)->value();
    return;
  case ExprKind::BoolConst:
    OS << (cast<BoolConstExpr>(E)->value() ? "true" : "false");
    return;
  case ExprKind::Var:
    OS << cast<VarExpr>(E)->name();
    return;
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    OS << S->seqName() << "[";
    printExpr(OS, S->index());
    OS << "]";
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    OS << unaryOpName(U->op()) << "(";
    printExpr(OS, U->operand());
    OS << ")";
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::Min || B->op() == BinaryOp::Max) {
      OS << binaryOpName(B->op()) << "(";
      printExpr(OS, B->lhs());
      OS << ", ";
      printExpr(OS, B->rhs());
      OS << ")";
      return;
    }
    OS << "(";
    printExpr(OS, B->lhs());
    OS << " " << binaryOpName(B->op()) << " ";
    printExpr(OS, B->rhs());
    OS << ")";
    return;
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    OS << "(";
    printExpr(OS, I->cond());
    OS << " ? ";
    printExpr(OS, I->thenExpr());
    OS << " : ";
    printExpr(OS, I->elseExpr());
    OS << ")";
    return;
  }
  }
}

} // namespace

std::string parsynt::exprToString(const ExprRef &E) {
  if (!E)
    return "<null>";
  std::ostringstream OS;
  printExpr(OS, E);
  return OS.str();
}
