//===- ir/Loop.cpp - Recurrence-equation loop model -----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Loop.h"
#include "ir/ExprOps.h"

#include <algorithm>
#include <sstream>

using namespace parsynt;

const Equation *Loop::findEquation(const std::string &VarName) const {
  for (const Equation &Eq : Equations)
    if (Eq.Name == VarName)
      return &Eq;
  return nullptr;
}

Equation *Loop::findEquation(const std::string &VarName) {
  for (Equation &Eq : Equations)
    if (Eq.Name == VarName)
      return &Eq;
  return nullptr;
}

std::optional<size_t> Loop::equationIndex(const std::string &VarName) const {
  for (size_t I = 0; I != Equations.size(); ++I)
    if (Equations[I].Name == VarName)
      return I;
  return std::nullopt;
}

std::vector<std::string> Loop::stateVarNames() const {
  std::vector<std::string> Names;
  Names.reserve(Equations.size());
  for (const Equation &Eq : Equations)
    Names.push_back(Eq.Name);
  return Names;
}

unsigned Loop::auxiliaryCount() const {
  unsigned Count = 0;
  for (const Equation &Eq : Equations)
    if (Eq.IsAuxiliary)
      ++Count;
  return Count;
}

bool Loop::hasSequence(const std::string &SeqName) const {
  return std::any_of(Sequences.begin(), Sequences.end(),
                     [&](const SeqDecl &S) { return S.Name == SeqName; });
}

Type Loop::seqElemType(const std::string &SeqName) const {
  for (const SeqDecl &S : Sequences)
    if (S.Name == SeqName)
      return S.ElemTy;
  assert(false && "unknown sequence");
  return Type::Int;
}

std::vector<std::string> Loop::outputNames() const {
  if (!Outputs.empty())
    return Outputs;
  return stateVarNames();
}

std::optional<std::string> Loop::validate() const {
  std::set<std::string> Seen;
  for (const SeqDecl &S : Sequences)
    if (!Seen.insert(S.Name).second)
      return "duplicate sequence name '" + S.Name + "'";
  for (const ParamDecl &P : Params)
    if (!Seen.insert(P.Name).second)
      return "duplicate parameter name '" + P.Name + "'";
  if (!Seen.insert(IndexName).second)
    return "index name '" + IndexName + "' clashes with another declaration";
  for (const Equation &Eq : Equations)
    if (!Seen.insert(Eq.Name).second)
      return "duplicate state variable '" + Eq.Name + "'";

  std::set<std::string> StateNames;
  for (const Equation &Eq : Equations)
    StateNames.insert(Eq.Name);
  std::set<std::string> ParamNames;
  for (const ParamDecl &P : Params)
    ParamNames.insert(P.Name);

  for (const Equation &Eq : Equations) {
    if (!Eq.Init || !Eq.Update)
      return "equation '" + Eq.Name + "' has a null init or update";
    if (Eq.Init->type() != Eq.Ty || Eq.Update->type() != Eq.Ty)
      return "equation '" + Eq.Name + "' is ill typed";
    // Inits may only mention parameters.
    for (const std::string &V : collectAllVars(Eq.Init))
      if (!ParamNames.count(V))
        return "init of '" + Eq.Name + "' references non-parameter '" + V +
               "'";
    if (!collectSeqNames(Eq.Init).empty())
      return "init of '" + Eq.Name + "' reads a sequence";
    // Updates may mention state vars, params, and the index.
    for (const std::string &V : collectAllVars(Eq.Update))
      if (!StateNames.count(V) && !ParamNames.count(V) && V != IndexName)
        return "update of '" + Eq.Name + "' references undeclared '" + V +
               "'";
    for (const std::string &S : collectSeqNames(Eq.Update))
      if (!hasSequence(S))
        return "update of '" + Eq.Name + "' reads undeclared sequence '" + S +
               "'";
  }
  for (const std::string &Out : Outputs)
    if (!StateNames.count(Out))
      return "output '" + Out + "' is not a state variable";
  return std::nullopt;
}

std::string Loop::str() const {
  std::ostringstream OS;
  OS << "loop " << (Name.empty() ? "<anonymous>" : Name) << " over";
  for (const SeqDecl &S : Sequences)
    OS << " " << S.Name << ":" << typeName(S.ElemTy);
  OS << " (index " << IndexName << ")\n";
  for (const ParamDecl &P : Params)
    OS << "  param " << P.Name << " : " << typeName(P.Ty) << "\n";
  for (const Equation &Eq : Equations) {
    OS << "  " << Eq.Name << " : " << typeName(Eq.Ty)
       << (Eq.IsAuxiliary ? " (aux)" : "") << "\n";
    OS << "    init   = " << exprToString(Eq.Init) << "\n";
    OS << "    update = " << exprToString(Eq.Update) << "\n";
  }
  return OS.str();
}
