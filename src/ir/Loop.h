//===- ir/Loop.h - Recurrence-equation loop model ---------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The formal loop model of paper Section 3.3: a loop body with no nested
/// loops is a system of recurrence equations E = <s1 = exp1, ..., sn = expn>
/// where, after the Appendix-A conversion, every right-hand side refers to
/// the start-of-iteration values of the state variables (simultaneous
/// assignment semantics). A Loop bundles the equations with the sequences it
/// traverses, the iteration index, free scalar parameters, and the initial
/// state.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_IR_LOOP_H
#define PARSYNT_IR_LOOP_H

#include "ir/Expr.h"

#include <optional>
#include <string>
#include <vector>

namespace parsynt {

/// An input sequence traversed by the loop. Multiple sequences (e.g. the two
/// strings of hamming) are traversed in lockstep with the same index.
struct SeqDecl {
  std::string Name;
  Type ElemTy = Type::Int;
};

/// A free scalar input parameter of the loop (e.g. the evaluation point of
/// poly). Parameters are read-only.
struct ParamDecl {
  std::string Name;
  Type Ty = Type::Int;
};

/// One recurrence equation: State = Update(SVar, IVar), with the initial
/// value the state variable holds before the first iteration.
struct Equation {
  std::string Name;
  Type Ty = Type::Int;
  /// Value before the first iteration. May reference parameters but not
  /// state variables or sequence elements.
  ExprRef Init;
  /// Start-of-iteration state variables + inputs -> end-of-iteration value.
  ExprRef Update;
  /// True for auxiliary accumulators added by lifting (Section 6); kept for
  /// reporting and for the Table-1 "#Aux" column.
  bool IsAuxiliary = false;
};

/// A single-pass loop over one or more sequences, modelled as an ordered
/// system of recurrence equations with simultaneous-assignment semantics.
class Loop {
public:
  std::string Name;
  std::vector<SeqDecl> Sequences;
  std::string IndexName = "i";
  std::vector<ParamDecl> Params;
  std::vector<Equation> Equations;
  /// Names of the state variables whose final values constitute the loop's
  /// result (the remaining ones are internal/auxiliary). Empty means "all".
  std::vector<std::string> Outputs;

  /// Finds the equation defining \p Name, or null.
  const Equation *findEquation(const std::string &Name) const;
  Equation *findEquation(const std::string &Name);

  /// Index of the equation defining \p VarName, or nullopt.
  std::optional<size_t> equationIndex(const std::string &VarName) const;

  /// All state variable names, in equation order.
  std::vector<std::string> stateVarNames() const;

  /// Number of auxiliary (lifting-introduced) equations.
  unsigned auxiliaryCount() const;

  /// True if a sequence named \p Name is declared.
  bool hasSequence(const std::string &Name) const;
  /// Element type of the sequence \p Name; asserts it exists.
  Type seqElemType(const std::string &Name) const;

  /// Output variable names (Outputs if set, otherwise all state vars).
  std::vector<std::string> outputNames() const;

  /// Structural sanity checks: unique names, inits free of state/sequence
  /// references, updates referencing only declared names. Returns an error
  /// description, or nullopt if the loop is well formed.
  std::optional<std::string> validate() const;

  /// Pretty-prints the equation system.
  std::string str() const;
};

} // namespace parsynt

#endif // PARSYNT_IR_LOOP_H
