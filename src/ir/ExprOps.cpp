//===- ir/ExprOps.cpp - Structural utilities over Expr --------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/ExprOps.h"

using namespace parsynt;

ExprRef parsynt::substitute(const ExprRef &E, const Substitution &Subst) {
  switch (E->kind()) {
  case ExprKind::IntConst:
  case ExprKind::BoolConst:
    return E;
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Subst.find(V->name());
    if (It == Subst.end())
      return E;
    assert(It->second->type() == V->type() && "ill-typed substitution");
    return It->second;
  }
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    ExprRef NewIndex = substitute(S->index(), Subst);
    if (NewIndex.get() == S->index().get())
      return E;
    return SeqAccessExpr::get(S->seqName(), S->type(), std::move(NewIndex));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    ExprRef NewOp = substitute(U->operand(), Subst);
    if (NewOp.get() == U->operand().get())
      return E;
    return UnaryExpr::get(U->op(), std::move(NewOp));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    ExprRef NewL = substitute(B->lhs(), Subst);
    ExprRef NewR = substitute(B->rhs(), Subst);
    if (NewL.get() == B->lhs().get() && NewR.get() == B->rhs().get())
      return E;
    return BinaryExpr::get(B->op(), std::move(NewL), std::move(NewR));
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    ExprRef NewC = substitute(I->cond(), Subst);
    ExprRef NewT = substitute(I->thenExpr(), Subst);
    ExprRef NewE = substitute(I->elseExpr(), Subst);
    if (NewC.get() == I->cond().get() && NewT.get() == I->thenExpr().get() &&
        NewE.get() == I->elseExpr().get())
      return E;
    return IteExpr::get(std::move(NewC), std::move(NewT), std::move(NewE));
  }
  }
  return E;
}

ExprRef parsynt::rewriteSeqAccesses(
    const ExprRef &E,
    const std::function<ExprRef(const SeqAccessExpr &)> &Fn) {
  switch (E->kind()) {
  case ExprKind::IntConst:
  case ExprKind::BoolConst:
  case ExprKind::Var:
    return E;
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    if (ExprRef Replacement = Fn(*S))
      return Replacement;
    ExprRef NewIndex = rewriteSeqAccesses(S->index(), Fn);
    if (NewIndex.get() == S->index().get())
      return E;
    return SeqAccessExpr::get(S->seqName(), S->type(), std::move(NewIndex));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return UnaryExpr::get(U->op(), rewriteSeqAccesses(U->operand(), Fn));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return BinaryExpr::get(B->op(), rewriteSeqAccesses(B->lhs(), Fn),
                           rewriteSeqAccesses(B->rhs(), Fn));
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    return IteExpr::get(rewriteSeqAccesses(I->cond(), Fn),
                        rewriteSeqAccesses(I->thenExpr(), Fn),
                        rewriteSeqAccesses(I->elseExpr(), Fn));
  }
  }
  return E;
}

ExprRef
parsynt::mapChildren(const ExprRef &E,
                     const std::function<ExprRef(const ExprRef &)> &Fn) {
  switch (E->kind()) {
  case ExprKind::IntConst:
  case ExprKind::BoolConst:
  case ExprKind::Var:
    return E;
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    return SeqAccessExpr::get(S->seqName(), S->type(), Fn(S->index()));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return UnaryExpr::get(U->op(), Fn(U->operand()));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return BinaryExpr::get(B->op(), Fn(B->lhs()), Fn(B->rhs()));
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    return IteExpr::get(Fn(I->cond()), Fn(I->thenExpr()), Fn(I->elseExpr()));
  }
  }
  return E;
}

std::vector<ExprRef> parsynt::children(const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
  case ExprKind::BoolConst:
  case ExprKind::Var:
    return {};
  case ExprKind::SeqAccess:
    return {cast<SeqAccessExpr>(E)->index()};
  case ExprKind::Unary:
    return {cast<UnaryExpr>(E)->operand()};
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return {B->lhs(), B->rhs()};
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    return {I->cond(), I->thenExpr(), I->elseExpr()};
  }
  }
  return {};
}

void parsynt::forEachNode(const ExprRef &E,
                          const std::function<void(const ExprRef &)> &Fn) {
  Fn(E);
  for (const ExprRef &Child : children(E))
    forEachNode(Child, Fn);
}

std::set<std::string> parsynt::collectVars(const ExprRef &E, VarClass Class) {
  std::set<std::string> Result;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      if (V->varClass() == Class)
        Result.insert(V->name());
  });
  return Result;
}

std::set<std::string> parsynt::collectAllVars(const ExprRef &E) {
  std::set<std::string> Result;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      Result.insert(V->name());
  });
  return Result;
}

std::vector<std::pair<std::string, Type>>
parsynt::collectTypedVars(const ExprRef &E) {
  std::map<std::string, Type> Found;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      Found.emplace(V->name(), V->type());
  });
  return {Found.begin(), Found.end()};
}

std::set<std::string> parsynt::collectSeqNames(const ExprRef &E) {
  std::set<std::string> Result;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *S = dyn_cast<SeqAccessExpr>(Node))
      Result.insert(S->seqName());
  });
  return Result;
}

bool parsynt::containsVarClass(const ExprRef &E, VarClass Class) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return V->varClass() == Class;
  for (const ExprRef &Child : children(E))
    if (containsVarClass(Child, Class))
      return true;
  return false;
}

bool parsynt::containsVar(const ExprRef &E, const std::string &Name) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return V->name() == Name;
  for (const ExprRef &Child : children(E))
    if (containsVar(Child, Name))
      return true;
  return false;
}

unsigned parsynt::countOccurrences(const ExprRef &E,
                                   const std::set<std::string> &Names) {
  unsigned Count = 0;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      if (Names.count(V->name()))
        ++Count;
  });
  return Count;
}

static unsigned maxVarDepthImpl(const ExprRef &E,
                                const std::set<std::string> &Names,
                                unsigned Depth) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return Names.count(V->name()) ? Depth : 0;
  unsigned Best = 0;
  for (const ExprRef &Child : children(E))
    Best = std::max(Best, maxVarDepthImpl(Child, Names, Depth + 1));
  return Best;
}

unsigned parsynt::maxVarDepth(const ExprRef &E,
                              const std::set<std::string> &Names) {
  return maxVarDepthImpl(E, Names, 0);
}

ExprCost parsynt::exprCost(const ExprRef &E,
                           const std::set<std::string> &Names) {
  return {maxVarDepth(E, Names), countOccurrences(E, Names)};
}
