//===- ir/ExprOps.h - Structural utilities over Expr ------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substitution, traversal and measurement utilities over the expression IR.
/// These back the unfolder of Algorithm 1 (substitution), the cost function
/// of Definition 6.1 (occurrence counts / depths of the unknowns), and the
/// sketch compiler (variable collection).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_IR_EXPROPS_H
#define PARSYNT_IR_EXPROPS_H

#include "ir/Expr.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace parsynt {

/// A name -> expression binding used by substitute().
using Substitution = std::map<std::string, ExprRef>;

/// Replaces every VarExpr whose name appears in \p Subst with its binding.
/// Bindings must be type-correct; this is asserted.
ExprRef substitute(const ExprRef &E, const Substitution &Subst);

/// Replaces every SeqAccessExpr by Fn(access); Fn returning null keeps the
/// access (with its index recursively rewritten).
ExprRef
rewriteSeqAccesses(const ExprRef &E,
                   const std::function<ExprRef(const SeqAccessExpr &)> &Fn);

/// Rebuilds \p E with each direct child replaced by Fn(child). Leaves are
/// returned unchanged. The helper preserves the node's own operator/kind.
ExprRef mapChildren(const ExprRef &E,
                    const std::function<ExprRef(const ExprRef &)> &Fn);

/// Collects the direct children of \p E in evaluation order.
std::vector<ExprRef> children(const ExprRef &E);

/// Invokes Fn on every node of \p E (pre-order).
void forEachNode(const ExprRef &E,
                 const std::function<void(const ExprRef &)> &Fn);

/// Names of all variables of class \p Class occurring in \p E.
std::set<std::string> collectVars(const ExprRef &E, VarClass Class);

/// Names of all variables occurring in \p E regardless of class.
std::set<std::string> collectAllVars(const ExprRef &E);

/// All variables of \p E with their types, sorted by name (deduplicated).
std::vector<std::pair<std::string, Type>> collectTypedVars(const ExprRef &E);

/// Names of all sequences accessed in \p E.
std::set<std::string> collectSeqNames(const ExprRef &E);

/// True if any variable of class \p Class occurs in \p E.
bool containsVarClass(const ExprRef &E, VarClass Class);

/// True if a variable with name \p Name occurs in \p E.
bool containsVar(const ExprRef &E, const std::string &Name);

/// Number of occurrences of variables whose names are in \p Names.
unsigned countOccurrences(const ExprRef &E, const std::set<std::string> &Names);

/// Depth of the deepest occurrence of any variable in \p Names, counted from
/// the root (the root has depth 0). Returns 0 if no such variable occurs.
unsigned maxVarDepth(const ExprRef &E, const std::set<std::string> &Names);

/// The cost of Definition 6.1: (max depth of any unknown, total occurrences
/// of unknowns). Compared lexicographically.
struct ExprCost {
  unsigned MaxDepth = 0;
  unsigned Occurrences = 0;

  friend bool operator<(const ExprCost &A, const ExprCost &B) {
    if (A.MaxDepth != B.MaxDepth)
      return A.MaxDepth < B.MaxDepth;
    return A.Occurrences < B.Occurrences;
  }
  friend bool operator==(const ExprCost &A, const ExprCost &B) {
    return A.MaxDepth == B.MaxDepth && A.Occurrences == B.Occurrences;
  }
};

/// Computes CostV(E) for the variable set \p Names.
ExprCost exprCost(const ExprRef &E, const std::set<std::string> &Names);

} // namespace parsynt

#endif // PARSYNT_IR_EXPROPS_H
