//===- ir/Type.h - Scalar types ---------------------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar types of the input language (paper Section 3.1). The paper's
/// generic scalar type Sc is instantiated with mathematical integers and
/// booleans; chars (atoi, balanced parentheses) are encoded as integers.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_IR_TYPE_H
#define PARSYNT_IR_TYPE_H

namespace parsynt {

/// A scalar type. Sequences are not first-class values in expressions; a
/// sequence enters an expression only through an element access s[e].
enum class Type { Int, Bool };

/// Returns "int" or "bool".
inline const char *typeName(Type Ty) {
  return Ty == Type::Int ? "int" : "bool";
}

} // namespace parsynt

#endif // PARSYNT_IR_TYPE_H
