//===- proof/ProofCheck.h - Homomorphism proof obligations ------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section-7 correctness machinery. The paper's Dafny proofs are
/// inductions on the length of the second sequence with exactly two
/// obligations per state variable; this module checks the same two
/// verification conditions by evaluation over sampled reachable states:
///
///   base:  join(u, init)        == u                      (t == [])
///   step:  join(u, step(v, a))  == step(join(u, v), a)    (t == t'+[a])
///
/// where u, v range over states reachable by running the loop on arbitrary
/// prefixes and a over arbitrary elements. Together with fE(x) being the
/// loop's own semantics, these two conditions imply
/// fE(x • y) == fE(x) ⊙ fE(y) for all x, y by induction on |y| — the exact
/// argument of the paper's Figure-7 lemmas. The companion DafnyEmit module
/// produces the machine-checkable artifact for an external Dafny verifier.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_PROOF_PROOFCHECK_H
#define PARSYNT_PROOF_PROOFCHECK_H

#include "interp/Interp.h"
#include "ir/Loop.h"

#include <optional>
#include <string>
#include <vector>

namespace parsynt {

struct ProofOptions {
  /// Reachable-state samples for u and v. Short prefixes dominate: the
  /// states that refute coincidental joins (near-initial, boundary-valued)
  /// live there.
  unsigned StateSamples = 800;
  /// Prefix length bound used to generate reachable states.
  unsigned MaxPrefixLen = 10;
  /// Elements per (u, v) pair tried in the step obligation.
  unsigned ElementsPerPair = 6;
  uint64_t Seed = 0xBEEF;
};

/// A failed obligation, with the witnessing values.
struct ProofFailure {
  std::string Obligation; ///< "base" or "step"
  std::string StateVar;   ///< component that differed
  std::string Details;    ///< rendered witness
};

struct ProofReport {
  bool Verified = false;
  uint64_t BaseChecks = 0;
  uint64_t StepChecks = 0;
  std::optional<ProofFailure> Failure;
  double Seconds = 0;

  std::string str() const;
};

/// Checks the two induction obligations for \p Join (one component per
/// equation of \p L) over sampled reachable states.
ProofReport checkHomomorphismProof(const Loop &L,
                                   const std::vector<ExprRef> &Join,
                                   const ProofOptions &Options = {});

} // namespace parsynt

#endif // PARSYNT_PROOF_PROOFCHECK_H
