//===- proof/ProofCheck.cpp - Homomorphism proof obligations --------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "proof/ProofCheck.h"
#include "ir/ExprOps.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"
#include "support/Random.h"

#include <chrono>
#include <set>
#include <sstream>

using namespace parsynt;

namespace {

/// Element pool mirroring the oracle's: small values plus loop constants.
std::vector<int64_t> elementPool(const Loop &L) {
  std::set<int64_t> Pool = {-2, -1, 0, 1, 2, 3, 7, -11};
  for (const Equation &Eq : L.Equations) {
    forEachNode(Eq.Update, [&](const ExprRef &Node) {
      if (const auto *C = dyn_cast<IntConstExpr>(Node)) {
        if (std::abs(C->value()) > 1000)
          return;
        Pool.insert(C->value());
        Pool.insert(C->value() + 1);
        Pool.insert(C->value() - 1);
      }
    });
  }
  return {Pool.begin(), Pool.end()};
}

/// One loop iteration on the per-sequence elements \p Elems with the local
/// index \p Index.
StateTuple stepOnElements(const Loop &L, const StateTuple &State,
                          const std::map<std::string, Value> &Elems,
                          int64_t Index, const Env &Params) {
  SeqEnv Seqs;
  for (const SeqDecl &S : L.Sequences)
    Seqs[S.Name] = std::vector<Value>(static_cast<size_t>(Index) + 1,
                                      Elems.at(S.Name));
  return stepLoop(L, State, Seqs, Index, Params);
}

StateTuple applyJoin(const Loop &L, const std::vector<ExprRef> &Join,
                     const StateTuple &Left, const StateTuple &Right,
                     const Env &Params) {
  Env E = Params;
  for (size_t I = 0; I != L.Equations.size(); ++I) {
    E[L.Equations[I].Name + "_l"] = Left[I];
    E[L.Equations[I].Name + "_r"] = Right[I];
  }
  StateTuple Result;
  Result.reserve(Join.size());
  for (const ExprRef &Component : Join)
    Result.push_back(evalExpr(Component, E));
  return Result;
}

} // namespace

ProofReport
parsynt::checkHomomorphismProof(const Loop &L,
                                const std::vector<ExprRef> &Join,
                                const ProofOptions &Options) {
  auto StartTime = std::chrono::steady_clock::now();
  ProofReport Report;
  Span ProofSpan("checkHomomorphismProof", trace::Proof);
  ProofSpan.attr("loop", L.Name.empty() ? "<loop>" : L.Name);
  struct ProofFinisher {
    Span &S;
    const ProofReport &R;
    ~ProofFinisher() {
      S.attr("verified", R.Verified);
      S.attr("base_checks", R.BaseChecks);
      S.attr("step_checks", R.StepChecks);
      if (R.Failure)
        S.attr("obligation", R.Failure->Obligation);
      MetricsRegistry &M = MetricsRegistry::global();
      M.counter("proof.calls").inc();
      M.counter("proof.base_checks").add(R.BaseChecks);
      M.counter("proof.step_checks").add(R.StepChecks);
      if (!R.Verified)
        M.counter("proof.failures").inc();
      M.histogram("proof.millis").observe(
          static_cast<uint64_t>(R.Seconds * 1e3));
    }
  } Finish{ProofSpan, Report};
  Rng R(Options.Seed);
  std::vector<int64_t> Pool = elementPool(L);

  // Sample reachable states: (state after a random prefix, its prefix
  // length, parameters used). States must be generated and compared under
  // consistent parameter bindings, so parameters are drawn per sample pair.
  struct Sample {
    StateTuple State;
    size_t PrefixLen;
    Env Params;
  };
  auto drawSample = [&](const Env &Params) {
    size_t Len = static_cast<size_t>(R.intIn(0, Options.MaxPrefixLen));
    SeqEnv Seqs;
    for (const SeqDecl &S : L.Sequences) {
      std::vector<Value> Elems;
      for (size_t I = 0; I != Len; ++I)
        Elems.push_back(Value::ofInt(Pool[R.index(Pool.size())]));
      Seqs[S.Name] = std::move(Elems);
    }
    return Sample{runLoop(L, Seqs, Params), Len, Params};
  };

  auto drawParams = [&]() {
    Env Params;
    for (const ParamDecl &P : L.Params)
      Params[P.Name] = P.Ty == Type::Int ? Value::ofInt(R.intIn(-3, 3))
                                         : Value::ofBool(R.flip());
    return Params;
  };

  auto fail = [&](const char *Obligation, size_t Component,
                  const std::string &Details) {
    Report.Failure = ProofFailure{Obligation, L.Equations[Component].Name,
                                  Details};
  };

  for (unsigned N = 0; N != Options.StateSamples && !Report.Failure; ++N) {
    Env Params = drawParams();
    Sample U = drawSample(Params);
    Sample V = drawSample(Params);
    StateTuple Init = initialState(L, Params);

    // Base: join(u, init) == u.
    StateTuple Base = applyJoin(L, Join, U.State, Init, Params);
    ++Report.BaseChecks;
    for (size_t I = 0; I != Base.size(); ++I) {
      if (Base[I] != U.State[I]) {
        fail("base", I,
             "u = {" + stateToString(L, U.State) + "}, join(u, init) gave " +
                 Base[I].str());
        break;
      }
    }
    if (Report.Failure)
      break;

    // Step: join(u, step(v, a)) == step(join(u, v), a). The element index
    // seen by the step is v's own local position (|t'|); the loops in this
    // model read the index only through the materialized position
    // accumulator, so any index value yields the same result — the local
    // one is used for fidelity.
    for (unsigned EIdx = 0; EIdx != Options.ElementsPerPair; ++EIdx) {
      std::map<std::string, Value> Elems;
      for (const SeqDecl &S : L.Sequences)
        Elems[S.Name] = Value::ofInt(Pool[R.index(Pool.size())]);
      int64_t Index = static_cast<int64_t>(V.PrefixLen);
      StateTuple Lhs = applyJoin(
          L, Join, U.State, stepOnElements(L, V.State, Elems, Index, Params),
          Params);
      StateTuple JoinedUV = applyJoin(L, Join, U.State, V.State, Params);
      // The joined state stands for the run over x • t'; its step index is
      // |x| + |t'|.
      int64_t JoinedIndex =
          static_cast<int64_t>(U.PrefixLen + V.PrefixLen);
      StateTuple Rhs =
          stepOnElements(L, JoinedUV, Elems, JoinedIndex, Params);
      ++Report.StepChecks;
      for (size_t I = 0; I != Lhs.size(); ++I) {
        if (Lhs[I] != Rhs[I]) {
          std::ostringstream OS;
          OS << "u = {" << stateToString(L, U.State) << "}, v = {"
             << stateToString(L, V.State) << "}, a = ";
          for (const auto &[Name, Val] : Elems)
            OS << Name << ":" << Val.str() << " ";
          OS << "-> lhs " << Lhs[I].str() << " vs rhs " << Rhs[I].str();
          fail("step", I, OS.str());
          break;
        }
      }
      if (Report.Failure)
        break;
    }
  }

  Report.Verified = !Report.Failure.has_value();
  Report.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();
  return Report;
}

std::string ProofReport::str() const {
  std::ostringstream OS;
  if (Verified) {
    OS << "proof obligations verified (" << BaseChecks << " base + "
       << StepChecks << " step checks, " << Seconds << "s)";
  } else {
    OS << "proof FAILED [" << Failure->Obligation << ", "
       << Failure->StateVar << "]: " << Failure->Details;
  }
  return OS.str();
}
