//===- proof/DafnyEmit.h - Figure-7 Dafny artifact emitter ------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the machine-checkable Dafny proof artifact of paper Section 7
/// (Figure 7): one recursive function per state variable (the functional
/// model of the loop), one join function per state variable, and one
/// homomorphism lemma per state variable proved by induction on the second
/// sequence, with the generic base-case/induction-step guidance and the
/// dependency rule ("if u's value depends on v, recall v's homomorphism
/// lemma in u's proof").
///
/// Dafny itself is not bundled in this repository; the emitted artifact is
/// the hand-off point to an external verifier, while proof/ProofCheck.h
/// validates the same obligations internally.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_PROOF_DAFNYEMIT_H
#define PARSYNT_PROOF_DAFNYEMIT_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace parsynt {

/// Renders the full Dafny module (functions, joins, lemmas) for \p L and
/// its synthesized \p Join.
std::string emitDafnyProof(const Loop &L, const std::vector<ExprRef> &Join);

} // namespace parsynt

#endif // PARSYNT_PROOF_DAFNYEMIT_H
