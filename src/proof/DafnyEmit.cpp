//===- proof/DafnyEmit.cpp - Figure-7 Dafny artifact emitter --------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "proof/DafnyEmit.h"
#include "ir/ExprOps.h"

#include <set>
#include <sstream>

using namespace parsynt;

namespace {

/// Dafny-safe identifier for a state variable's model function.
std::string funcName(const std::string &Var) {
  std::string Clean;
  for (char C : Var)
    Clean += (std::isalnum(static_cast<unsigned char>(C)) ? C : '_');
  Clean[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(
      Clean[0])));
  return "F_" + Clean;
}

std::string joinName(const std::string &Var) {
  return "Join_" + funcName(Var).substr(2);
}

std::string dafnyType(Type Ty) { return Ty == Type::Int ? "int" : "bool"; }

/// Renders an expression in Dafny syntax. \p StateRef maps a state-variable
/// read; \p SeqElem renders a sequence element access.
class DafnyPrinter {
public:
  std::function<std::string(const std::string &)> VarRef;

  std::string print(const ExprRef &E) const {
    switch (E->kind()) {
    case ExprKind::IntConst:
      return std::to_string(cast<IntConstExpr>(E)->value());
    case ExprKind::BoolConst:
      return cast<BoolConstExpr>(E)->value() ? "true" : "false";
    case ExprKind::Var:
      return VarRef(cast<VarExpr>(E)->name());
    case ExprKind::SeqAccess:
      // Inside a rightwards model the element read is the last one.
      return cast<SeqAccessExpr>(E)->seqName() + "[|" +
             cast<SeqAccessExpr>(E)->seqName() + "|-1]";
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      return std::string(U->op() == UnaryOp::Neg ? "-" : "!") + "(" +
             print(U->operand()) + ")";
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->op() == BinaryOp::Min || B->op() == BinaryOp::Max)
        return std::string(B->op() == BinaryOp::Min ? "MinI" : "MaxI") + "(" +
               print(B->lhs()) + ", " + print(B->rhs()) + ")";
      return "(" + print(B->lhs()) + " " + binaryOpName(B->op()) + " " +
             print(B->rhs()) + ")";
    }
    case ExprKind::Ite: {
      const auto *I = cast<IteExpr>(E);
      return "(if " + print(I->cond()) + " then " + print(I->thenExpr()) +
             " else " + print(I->elseExpr()) + ")";
    }
    }
    return "?";
  }
};

} // namespace

std::string parsynt::emitDafnyProof(const Loop &L,
                                    const std::vector<ExprRef> &Join) {
  std::ostringstream OS;
  OS << "// Auto-generated homomorphism proof for loop '" << L.Name
     << "'\n";
  OS << "// (Figure-7 template of 'Synthesis of Divide and Conquer "
        "Parallelism for Loops', PLDI 2017)\n\n";
  OS << "function MinI(a: int, b: int): int { if a < b then a else b }\n";
  OS << "function MaxI(a: int, b: int): int { if a > b then a else b }\n\n";

  // Function signature pieces shared by every model function: one seq<int>
  // per loop sequence plus the scalar parameters.
  std::string SeqArgs, SeqActualsS, SeqActualsT, SeqPrefixT;
  for (const SeqDecl &S : L.Sequences) {
    if (!SeqArgs.empty()) {
      SeqArgs += ", ";
      SeqActualsS += ", ";
      SeqActualsT += ", ";
      SeqPrefixT += ", ";
    }
    SeqArgs += S.Name + ": seq<int>";
    SeqActualsS += S.Name + "_s";
    SeqActualsT += S.Name + "_t";
    SeqPrefixT += S.Name + "_t[..|" + S.Name + "_t|-1]";
  }
  std::string ParamArgs, ParamActuals;
  for (const ParamDecl &P : L.Params) {
    ParamArgs += ", " + P.Name + ": " + dafnyType(P.Ty);
    ParamActuals += ", " + P.Name;
  }

  const std::string Seq0 = L.Sequences.front().Name;

  // Model functions: F_v(s) == value of v after running the loop over s.
  std::string PrefixCall; // actuals "s[..|s|-1], ..."
  for (const SeqDecl &S : L.Sequences) {
    if (!PrefixCall.empty())
      PrefixCall += ", ";
    PrefixCall += S.Name + "[..|" + S.Name + "|-1]";
  }
  for (const Equation &Eq : L.Equations) {
    DafnyPrinter Printer;
    Printer.VarRef = [&](const std::string &Name) -> std::string {
      if (L.findEquation(Name))
        return funcName(Name) + "(" + PrefixCall + ParamActuals + ")";
      if (Name == L.IndexName)
        return "(|" + Seq0 + "|-1)";
      return Name; // parameter
    };
    OS << "function " << funcName(Eq.Name) << "(" << SeqArgs << ParamArgs
       << "): " << dafnyType(Eq.Ty) << "\n";
    OS << "{\n  if |" << Seq0 << "| == 0 then "
       << DafnyPrinter{[](const std::string &N) { return N; }}.print(Eq.Init)
       << "\n  else " << Printer.print(Eq.Update) << "\n}\n\n";
  }

  // Join functions: one per state variable, over all left/right values.
  std::string JoinArgs, JoinActualsST;
  for (const Equation &Eq : L.Equations) {
    if (!JoinArgs.empty()) {
      JoinArgs += ", ";
      JoinActualsST += ", ";
    }
    JoinArgs += Eq.Name + "_l: " + dafnyType(Eq.Ty);
    JoinActualsST += funcName(Eq.Name) + "(" + SeqActualsS + ParamActuals +
                     ")";
  }
  for (const Equation &Eq : L.Equations) {
    JoinArgs += ", " + Eq.Name + "_r: " + dafnyType(Eq.Ty);
    JoinActualsST +=
        ", " + funcName(Eq.Name) + "(" + SeqActualsT + ParamActuals + ")";
  }
  for (size_t I = 0; I != L.Equations.size(); ++I) {
    DafnyPrinter Printer;
    Printer.VarRef = [](const std::string &Name) { return Name; };
    OS << "function " << joinName(L.Equations[I].Name) << "(" << JoinArgs
       << ParamArgs << "): " << dafnyType(L.Equations[I].Ty) << "\n{\n  "
       << Printer.print(Join[I]) << "\n}\n\n";
  }

  // Homomorphism lemmas, one per state variable, by induction on |t|.
  std::string LemmaSeqArgs, ConcatActuals, RecCallActuals;
  for (const SeqDecl &S : L.Sequences) {
    if (!LemmaSeqArgs.empty()) {
      LemmaSeqArgs += ", ";
      ConcatActuals += ", ";
      RecCallActuals += ", ";
    }
    LemmaSeqArgs += S.Name + "_s: seq<int>, " + S.Name + "_t: seq<int>";
    ConcatActuals += S.Name + "_s + " + S.Name + "_t";
    RecCallActuals +=
        S.Name + "_s, " + S.Name + "_t[..|" + S.Name + "_t|-1]";
  }
  for (size_t I = 0; I != L.Equations.size(); ++I) {
    const Equation &Eq = L.Equations[I];
    // Dependency rule: recall the homomorphism lemma of every state
    // variable the update or the join component reads.
    std::set<std::string> Deps;
    for (const std::string &V : collectVars(Eq.Update, VarClass::State))
      if (V != Eq.Name)
        Deps.insert(V);
    for (const std::string &V : collectAllVars(Join[I])) {
      for (const Equation &Other : L.Equations) {
        if (Other.Name == Eq.Name)
          continue;
        if (V == Other.Name + "_l" || V == Other.Name + "_r")
          Deps.insert(Other.Name);
      }
    }

    OS << "lemma Hom_" << funcName(Eq.Name).substr(2) << "(" << LemmaSeqArgs
       << ParamArgs << ")\n";
    if (L.Sequences.size() > 1) {
      OS << "  requires ";
      for (size_t S = 1; S != L.Sequences.size(); ++S)
        OS << "|" << L.Sequences[0].Name << "_s| == |"
           << L.Sequences[S].Name << "_s| && |" << L.Sequences[0].Name
           << "_t| == |" << L.Sequences[S].Name << "_t|";
      OS << "\n";
    }
    OS << "  ensures " << funcName(Eq.Name) << "(" << ConcatActuals
       << ParamActuals << ") ==\n          " << joinName(Eq.Name) << "("
       << JoinActualsST << ParamActuals << ")\n";
    OS << "{\n";
    OS << "  if " << Seq0 << "_t == [] {\n";
    for (const SeqDecl &S : L.Sequences)
      OS << "    assert " << S.Name << "_s + [] == " << S.Name << "_s;\n";
    OS << "  } else {\n";
    OS << "    // Induction step: peel off the last element of t.\n";
    for (const SeqDecl &S : L.Sequences)
      OS << "    assert (" << S.Name << "_s + " << S.Name << "_t[..|"
         << S.Name << "_t|-1]) + [" << S.Name << "_t[|" << S.Name
         << "_t|-1]] == " << S.Name << "_s + " << S.Name << "_t;\n";
    OS << "    Hom_" << funcName(Eq.Name).substr(2) << "(" << RecCallActuals
       << ParamActuals << ");\n";
    for (const std::string &Dep : Deps)
      OS << "    Hom_" << funcName(Dep).substr(2) << "(" << RecCallActuals
         << ParamActuals << ");\n";
    OS << "  }\n}\n\n";
  }
  return OS.str();
}
