//===- interp/SemanticEq.h - Sampling-based equivalence ---------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling-based semantic equivalence of expressions, used by the rewrite
/// engine's property tests, the lifting algorithm's "already covered by an
/// existing auxiliary" check, and accumulator folding. This plays the role
/// the bounded solver plays in the paper: candidate equivalences accepted
/// here are re-validated downstream by join synthesis and the Section-7
/// proof obligations.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_INTERP_SEMANTICEQ_H
#define PARSYNT_INTERP_SEMANTICEQ_H

#include "interp/Interp.h"
#include "support/Random.h"

#include <vector>

namespace parsynt {

/// Draws \p Count random environments binding every variable in \p Vars
/// (ints from a mixed small/large distribution, bools uniform). The first
/// environments enumerate structured corners (all zero, all one, all minus
/// one) before random draws.
std::vector<Env> sampleEnvs(const std::vector<std::pair<std::string, Type>>
                                &Vars,
                            size_t Count, Rng &R);

/// True if \p A and \p B evaluate identically on all \p Envs (expressions
/// must not contain sequence accesses).
bool agreeOn(const ExprRef &A, const ExprRef &B, const std::vector<Env> &Envs);

/// Sampling-based equivalence over the free variables of both expressions.
/// \p Samples random environments plus structured corners.
bool probablyEquivalent(const ExprRef &A, const ExprRef &B, Rng &R,
                        size_t Samples = 48);

} // namespace parsynt

#endif // PARSYNT_INTERP_SEMANTICEQ_H
