//===- interp/Interp.cpp - Expression and loop evaluation -----------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include <sstream>

using namespace parsynt;

namespace {

int64_t evalArith(BinaryOp Op, int64_t L, int64_t R) {
  // Add/Sub/Mul wrap in two's complement (computed over uint64_t to stay
  // defined behaviour): synthesis candidates are evaluated on arbitrary
  // environments and must never trip UB, only produce wrong values that the
  // oracle rejects.
  switch (Op) {
  case BinaryOp::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(L) +
                                static_cast<uint64_t>(R));
  case BinaryOp::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(L) -
                                static_cast<uint64_t>(R));
  case BinaryOp::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(L) *
                                static_cast<uint64_t>(R));
  case BinaryOp::Div:
    // Total division: x/0 == 0 (see header). Also avoid INT64_MIN / -1 UB.
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return INT64_MIN;
    return L / R;
  case BinaryOp::Min:
    return L < R ? L : R;
  case BinaryOp::Max:
    return L > R ? L : R;
  default:
    assert(false && "not an arithmetic operator");
    return 0;
  }
}

bool evalCompare(BinaryOp Op, const Value &L, const Value &R) {
  switch (Op) {
  case BinaryOp::Lt:
    return L.asInt() < R.asInt();
  case BinaryOp::Le:
    return L.asInt() <= R.asInt();
  case BinaryOp::Gt:
    return L.asInt() > R.asInt();
  case BinaryOp::Ge:
    return L.asInt() >= R.asInt();
  case BinaryOp::Eq:
    return L == R;
  case BinaryOp::Ne:
    return L != R;
  default:
    assert(false && "not a comparison operator");
    return false;
  }
}

} // namespace

Value parsynt::evalExpr(const ExprRef &E, const Env &Vars, const SeqEnv &Seqs) {
  switch (E->kind()) {
  case ExprKind::IntConst:
    return Value::ofInt(cast<IntConstExpr>(E)->value());
  case ExprKind::BoolConst:
    return Value::ofBool(cast<BoolConstExpr>(E)->value());
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Vars.find(V->name());
    assert(It != Vars.end() && "unbound variable");
    assert(It->second.type() == V->type() && "environment type mismatch");
    return It->second;
  }
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    auto It = Seqs.find(S->seqName());
    assert(It != Seqs.end() && "unbound sequence");
    int64_t Index = evalExpr(S->index(), Vars, Seqs).asInt();
    assert(Index >= 0 &&
           static_cast<size_t>(Index) < It->second.size() &&
           "sequence access out of range");
    return It->second[static_cast<size_t>(Index)];
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Value Operand = evalExpr(U->operand(), Vars, Seqs);
    if (U->op() == UnaryOp::Neg)
      return Value::ofInt(static_cast<int64_t>(
          0 - static_cast<uint64_t>(Operand.asInt())));
    return Value::ofBool(!Operand.asBool());
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    // Short-circuit boolean operators so candidates behave like source code.
    if (B->op() == BinaryOp::And) {
      if (!evalExpr(B->lhs(), Vars, Seqs).asBool())
        return Value::ofBool(false);
      return evalExpr(B->rhs(), Vars, Seqs);
    }
    if (B->op() == BinaryOp::Or) {
      if (evalExpr(B->lhs(), Vars, Seqs).asBool())
        return Value::ofBool(true);
      return evalExpr(B->rhs(), Vars, Seqs);
    }
    Value L = evalExpr(B->lhs(), Vars, Seqs);
    Value R = evalExpr(B->rhs(), Vars, Seqs);
    if (isArithOp(B->op()))
      return Value::ofInt(evalArith(B->op(), L.asInt(), R.asInt()));
    return Value::ofBool(evalCompare(B->op(), L, R));
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    if (evalExpr(I->cond(), Vars, Seqs).asBool())
      return evalExpr(I->thenExpr(), Vars, Seqs);
    return evalExpr(I->elseExpr(), Vars, Seqs);
  }
  }
  assert(false && "unknown expression kind");
  return Value();
}

Value parsynt::evalExpr(const ExprRef &E, const Env &Vars) {
  static const SeqEnv Empty;
  return evalExpr(E, Vars, Empty);
}

StateTuple parsynt::initialState(const Loop &L, const Env &Params) {
  StateTuple State;
  State.reserve(L.Equations.size());
  for (const Equation &Eq : L.Equations)
    State.push_back(evalExpr(Eq.Init, Params));
  return State;
}

StateTuple parsynt::stepLoop(const Loop &L, const StateTuple &State,
                             const SeqEnv &Seqs, int64_t Index,
                             const Env &Params) {
  assert(State.size() == L.Equations.size() && "state arity mismatch");
  Env Vars = Params;
  Vars[L.IndexName] = Value::ofInt(Index);
  for (size_t I = 0; I != L.Equations.size(); ++I)
    Vars[L.Equations[I].Name] = State[I];
  StateTuple Next;
  Next.reserve(State.size());
  for (const Equation &Eq : L.Equations)
    Next.push_back(evalExpr(Eq.Update, Vars, Seqs));
  return Next;
}

StateTuple parsynt::runLoopRange(const Loop &L, StateTuple State,
                                 const SeqEnv &Seqs, int64_t Begin,
                                 int64_t End, const Env &Params) {
  // Rebuild the environment in place per iteration instead of re-creating
  // maps; this function is the hot path of every oracle.
  Env Vars = Params;
  for (size_t I = 0; I != L.Equations.size(); ++I)
    Vars[L.Equations[I].Name] = State[I];
  Value &IndexSlot = Vars[L.IndexName];
  StateTuple Next(State.size());
  for (int64_t Index = Begin; Index < End; ++Index) {
    IndexSlot = Value::ofInt(Index);
    for (size_t I = 0; I != L.Equations.size(); ++I)
      Next[I] = evalExpr(L.Equations[I].Update, Vars, Seqs);
    for (size_t I = 0; I != L.Equations.size(); ++I)
      Vars[L.Equations[I].Name] = Next[I];
    State = Next;
  }
  return State;
}

StateTuple parsynt::runLoop(const Loop &L, const SeqEnv &Seqs,
                            const Env &Params) {
  size_t Length = 0;
  if (!L.Sequences.empty()) {
    auto It = Seqs.find(L.Sequences.front().Name);
    assert(It != Seqs.end() && "missing sequence contents");
    Length = It->second.size();
    for (const SeqDecl &S : L.Sequences) {
      auto SIt = Seqs.find(S.Name);
      assert(SIt != Seqs.end() && SIt->second.size() == Length &&
             "lockstep sequences must have equal length");
      (void)SIt;
    }
  }
  return runLoopRange(L, initialState(L, Params), Seqs, 0,
                      static_cast<int64_t>(Length), Params);
}

Env parsynt::stateToEnv(const Loop &L, const StateTuple &State,
                        const std::string &Suffix) {
  assert(State.size() == L.Equations.size() && "state arity mismatch");
  Env Result;
  for (size_t I = 0; I != State.size(); ++I)
    Result[L.Equations[I].Name + Suffix] = State[I];
  return Result;
}

std::string parsynt::stateToString(const Loop &L, const StateTuple &State) {
  std::ostringstream OS;
  for (size_t I = 0; I != State.size(); ++I) {
    if (I)
      OS << ", ";
    OS << L.Equations[I].Name << "=" << State[I].str();
  }
  return OS.str();
}
