//===- interp/Interp.h - Expression and loop evaluation ---------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable semantics fE of paper Section 4.1. The interpreter powers
/// the bounded synthesis oracle (Section 4.2's correctness specification),
/// semantic-equivalence testing during lifting, proof-obligation sampling
/// (Section 7), and the interpreted parallel runtime.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_INTERP_INTERP_H
#define PARSYNT_INTERP_INTERP_H

#include "interp/Value.h"
#include "ir/Expr.h"
#include "ir/Loop.h"

#include <map>
#include <string>
#include <vector>

namespace parsynt {

/// A variable environment: name -> value. Used for state variables,
/// parameters, the loop index, and the fresh symbolic inputs of lifting.
using Env = std::map<std::string, Value>;

/// Concrete contents of the input sequences: name -> element values. All
/// sequences of a loop must have the same length (lockstep traversal).
using SeqEnv = std::map<std::string, std::vector<Value>>;

/// Evaluates \p E under variable bindings \p Vars and sequence contents
/// \p Seqs. All referenced variables/sequences must be bound; out-of-range
/// sequence accesses are a programmatic error (asserted). Division by zero
/// yields 0 (total semantics, mirroring solver-friendly SMT division; the
/// same convention is used consistently by the synthesis oracle and the
/// runtime so candidates are judged under the semantics they will run with).
Value evalExpr(const ExprRef &E, const Env &Vars, const SeqEnv &Seqs);

/// Convenience overload for expressions with no sequence accesses.
Value evalExpr(const ExprRef &E, const Env &Vars);

/// The state tuple of a loop: values of the state variables, in equation
/// order.
using StateTuple = std::vector<Value>;

/// Builds the initial state of \p L under parameter bindings \p Params.
StateTuple initialState(const Loop &L, const Env &Params = {});

/// Runs one iteration of \p L: simultaneous evaluation of all updates at
/// index \p Index over sequence contents \p Seqs.
StateTuple stepLoop(const Loop &L, const StateTuple &State, const SeqEnv &Seqs,
                    int64_t Index, const Env &Params = {});

/// Runs \p L over the index range [Begin, End) of \p Seqs starting from
/// \p State. This is the "leaf" computation of the divide-and-conquer
/// skeleton; runLoop(L, initialState(L), Seqs, 0, |s|) is fE.
StateTuple runLoopRange(const Loop &L, StateTuple State, const SeqEnv &Seqs,
                        int64_t Begin, int64_t End, const Env &Params = {});

/// Computes fE over the full sequences.
StateTuple runLoop(const Loop &L, const SeqEnv &Seqs, const Env &Params = {});

/// Converts a state tuple to an environment keyed by state-variable name,
/// with an optional suffix appended to every name (the "l"/"r" convention of
/// join expressions, e.g. "sum" -> "sum_l").
Env stateToEnv(const Loop &L, const StateTuple &State,
               const std::string &Suffix = "");

/// Renders a state tuple as "name=value, ...".
std::string stateToString(const Loop &L, const StateTuple &State);

} // namespace parsynt

#endif // PARSYNT_INTERP_INTERP_H
