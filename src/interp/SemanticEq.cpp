//===- interp/SemanticEq.cpp - Sampling-based equivalence -----------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "interp/SemanticEq.h"
#include "ir/ExprOps.h"

#include <algorithm>

using namespace parsynt;

std::vector<Env>
parsynt::sampleEnvs(const std::vector<std::pair<std::string, Type>> &Vars,
                    size_t Count, Rng &R) {
  std::vector<Env> Envs;
  Envs.reserve(Count);
  // Structured corners first: they catch identity/absorption mistakes that
  // random draws miss with noticeable probability.
  const int64_t Corners[] = {0, 1, -1, 2, -2};
  for (int64_t Corner : Corners) {
    if (Envs.size() >= Count)
      break;
    Env E;
    for (const auto &[Name, Ty] : Vars)
      E[Name] = Ty == Type::Int ? Value::ofInt(Corner)
                                : Value::ofBool(Corner % 2 != 0);
    Envs.push_back(std::move(E));
  }
  while (Envs.size() < Count) {
    Env E;
    for (const auto &[Name, Ty] : Vars) {
      if (Ty == Type::Bool) {
        E[Name] = Value::ofBool(R.flip());
        continue;
      }
      // Mostly small magnitudes (where algebraic corner cases live), with an
      // occasional large draw to expose scale-dependent coincidences.
      int64_t V = R.chance(1, 8) ? R.intIn(-1000000, 1000000)
                                 : R.intIn(-4, 4);
      E[Name] = Value::ofInt(V);
    }
    Envs.push_back(std::move(E));
  }
  return Envs;
}

bool parsynt::agreeOn(const ExprRef &A, const ExprRef &B,
                      const std::vector<Env> &Envs) {
  for (const Env &E : Envs)
    if (evalExpr(A, E) != evalExpr(B, E))
      return false;
  return true;
}

bool parsynt::probablyEquivalent(const ExprRef &A, const ExprRef &B, Rng &R,
                                 size_t Samples) {
  if (A->type() != B->type())
    return false;
  auto VarsA = collectTypedVars(A);
  auto VarsB = collectTypedVars(B);
  std::vector<std::pair<std::string, Type>> Vars;
  std::merge(VarsA.begin(), VarsA.end(), VarsB.begin(), VarsB.end(),
             std::back_inserter(Vars));
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return agreeOn(A, B, sampleEnvs(Vars, Samples, R));
}
