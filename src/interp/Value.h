//===- interp/Value.h - Runtime scalar values -------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime scalar values for the interpreter. Integers are 64-bit; the
/// paper's scalars are mathematical integers and the synthesis oracles keep
/// magnitudes small enough that 64-bit wrap-around never triggers for the
/// benchmark suite (asserted in debug builds where cheap).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_INTERP_VALUE_H
#define PARSYNT_INTERP_VALUE_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace parsynt {

/// A scalar runtime value: an int64 or a bool, tagged by Type.
class Value {
public:
  Value() : Ty(Type::Int), Int(0) {}
  static Value ofInt(int64_t V) {
    Value Result;
    Result.Ty = Type::Int;
    Result.Int = V;
    return Result;
  }
  static Value ofBool(bool V) {
    Value Result;
    Result.Ty = Type::Bool;
    Result.Int = V ? 1 : 0;
    return Result;
  }

  Type type() const { return Ty; }
  int64_t asInt() const {
    assert(Ty == Type::Int && "not an int");
    return Int;
  }
  bool asBool() const {
    assert(Ty == Type::Bool && "not a bool");
    return Int != 0;
  }
  /// Raw payload regardless of tag (bools as 0/1); used by hashing and by
  /// vector-compare fast paths.
  int64_t raw() const { return Int; }

  friend bool operator==(const Value &A, const Value &B) {
    return A.Ty == B.Ty && A.Int == B.Int;
  }
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

  std::string str() const {
    if (Ty == Type::Bool)
      return Int ? "true" : "false";
    return std::to_string(Int);
  }

private:
  Type Ty;
  int64_t Int;
};

} // namespace parsynt

#endif // PARSYNT_INTERP_VALUE_H
