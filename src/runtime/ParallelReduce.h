//===- runtime/ParallelReduce.h - Divide-and-conquer skeleton ---*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The divide-and-conquer parallel skeleton of Figure 1: a range is split
/// recursively down to a grain size, leaves run the (lifted) sequential
/// loop, and partial results are combined by the synthesized join at every
/// interior node. The divide operator is concatenation's inverse (split at
/// the midpoint), so the join tree mirrors the paper's diagram exactly and
/// the result is deterministic regardless of scheduling.
///
/// This is the one scheduling skeleton shared by every consumer: the
/// interpreted runtime (`InterpReduce`), the native Figure-8 kernels, and
/// the standalone programs emitted by `codegen/EmitCpp` (which #include
/// this header rather than re-deriving a thread-spawning driver).
///
/// When the pool has timing enabled (`TaskPool::setTimingEnabled`), leaf
/// and join wall-times are accumulated into the pool's ReduceTimings and
/// show up in its stats snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_PARALLELREDUCE_H
#define PARSYNT_RUNTIME_PARALLELREDUCE_H

#include "observe/Tracer.h"
#include "runtime/TaskPool.h"

#include <chrono>
#include <cstddef>

namespace parsynt {

/// A half-open index range with a grain size controlling leaf granularity
/// (TBB's blocked_range).
struct BlockedRange {
  size_t Begin = 0;
  size_t End = 0;
  size_t Grain = 1;

  size_t size() const { return End - Begin; }
  bool divisible() const { return size() > Grain; }
};

namespace detail {

inline uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

template <typename T, typename LeafFn>
T timedLeaf(TaskPool &Pool, LeafFn &Leaf, size_t Begin, size_t End) {
  // The span and the pool-timing accumulator are independently gated: the
  // span costs one relaxed load when tracing is off, and the timing branch
  // keeps its historical behaviour when tracing is on but timing is not.
  Span LeafSpan("leaf", trace::Runtime);
  LeafSpan.attr("begin", uint64_t(Begin));
  LeafSpan.attr("end", uint64_t(End));
  if (!Pool.timingEnabled())
    return Leaf(Begin, End);
  auto Start = std::chrono::steady_clock::now();
  T Result = Leaf(Begin, End);
  Pool.timings().noteLeaf(nanosSince(Start));
  return Result;
}

template <typename T, typename JoinFn>
T timedJoin(TaskPool &Pool, JoinFn &Join, const T &Left, const T &Right) {
  Span JoinSpan("join", trace::Runtime);
  if (!Pool.timingEnabled())
    return Join(Left, Right);
  auto Start = std::chrono::steady_clock::now();
  T Result = Join(Left, Right);
  Pool.timings().noteJoin(nanosSince(Start));
  return Result;
}

} // namespace detail

/// Recursive divide-and-conquer reduction.
///
/// \param Leaf  T(size_t begin, size_t end) — the sequential computation on
///              a chunk, started from the loop's own initial state.
/// \param Join  T(const T&, const T&) — the synthesized join.
///
/// The recursion spawns the right half onto the current thread's own deque
/// and descends into the left half; the join then drains that deque first
/// (help-first), so a joining thread works on its own subtree before
/// stealing and never busy-waits. The join tree is fixed by Range and
/// Grain alone — a 1-thread pool executes the identical tree in place
/// (TBB behaves the same way) — so results are bitwise deterministic for
/// any thread count.
template <typename T, typename LeafFn, typename JoinFn>
T parallelReduce(const BlockedRange &Range, TaskPool &Pool, LeafFn &&Leaf,
                 JoinFn &&Join) {
  if (!Range.divisible())
    return detail::timedLeaf<T>(Pool, Leaf, Range.Begin, Range.End);

  size_t Mid = Range.Begin + Range.size() / 2;
  BlockedRange LeftRange{Range.Begin, Mid, Range.Grain};
  BlockedRange RightRange{Mid, Range.End, Range.Grain};

  T RightResult{};
  TaskGroup Group;
  const bool Spawned = Pool.threadCount() > 1;
  if (Spawned)
    Pool.spawn(Group, [&] {
      RightResult = parallelReduce<T>(RightRange, Pool, Leaf, Join);
    });
  T LeftResult = parallelReduce<T>(LeftRange, Pool, Leaf, Join);
  if (Spawned)
    Pool.wait(Group);
  else
    RightResult = parallelReduce<T>(RightRange, Pool, Leaf, Join);
  return detail::timedJoin<T>(Pool, Join, LeftResult, RightResult);
}

/// Sequential reference with the identical join tree (used by tests to pin
/// down determinism and by the single-core overhead measurement).
template <typename T, typename LeafFn, typename JoinFn>
T sequentialReduce(const BlockedRange &Range, LeafFn &&Leaf, JoinFn &&Join) {
  if (!Range.divisible())
    return Leaf(Range.Begin, Range.End);
  size_t Mid = Range.Begin + Range.size() / 2;
  T Left = sequentialReduce<T>(BlockedRange{Range.Begin, Mid, Range.Grain},
                               Leaf, Join);
  T Right = sequentialReduce<T>(BlockedRange{Mid, Range.End, Range.Grain},
                                Leaf, Join);
  return Join(Left, Right);
}

} // namespace parsynt

#endif // PARSYNT_RUNTIME_PARALLELREDUCE_H
