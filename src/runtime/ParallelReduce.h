//===- runtime/ParallelReduce.h - Divide-and-conquer skeleton ---*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The divide-and-conquer parallel skeleton of Figure 1: a range is split
/// recursively down to a grain size, leaves run the (lifted) sequential
/// loop, and partial results are combined by the synthesized join at every
/// interior node. The divide operator is concatenation's inverse (split at
/// the midpoint), so the join tree mirrors the paper's diagram exactly and
/// the result is deterministic regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_PARALLELREDUCE_H
#define PARSYNT_RUNTIME_PARALLELREDUCE_H

#include "runtime/TaskPool.h"

#include <cstddef>

namespace parsynt {

/// A half-open index range with a grain size controlling leaf granularity
/// (TBB's blocked_range).
struct BlockedRange {
  size_t Begin = 0;
  size_t End = 0;
  size_t Grain = 1;

  size_t size() const { return End - Begin; }
  bool divisible() const { return size() > Grain; }
};

/// Recursive divide-and-conquer reduction.
///
/// \param Leaf  T(size_t begin, size_t end) — the sequential computation on
///              a chunk, started from the loop's own initial state.
/// \param Join  T(const T&, const T&) — the synthesized join.
///
/// The recursion spawns the right half into the pool and descends into the
/// left half on the current thread (help-first). Join order is fixed by the
/// recursion structure, so results are bitwise deterministic.
template <typename T, typename LeafFn, typename JoinFn>
T parallelReduce(const BlockedRange &Range, TaskPool &Pool, LeafFn &&Leaf,
                 JoinFn &&Join) {
  if (!Range.divisible() || Pool.threadCount() == 1)
    return Leaf(Range.Begin, Range.End);

  size_t Mid = Range.Begin + Range.size() / 2;
  BlockedRange LeftRange{Range.Begin, Mid, Range.Grain};
  BlockedRange RightRange{Mid, Range.End, Range.Grain};

  T RightResult{};
  TaskGroup Group;
  Pool.spawn(Group, [&] {
    RightResult = parallelReduce<T>(RightRange, Pool, Leaf, Join);
  });
  T LeftResult = parallelReduce<T>(LeftRange, Pool, Leaf, Join);
  Pool.wait(Group);
  return Join(LeftResult, RightResult);
}

/// Sequential reference with the identical join tree (used by tests to pin
/// down determinism and by the single-core overhead measurement).
template <typename T, typename LeafFn, typename JoinFn>
T sequentialReduce(const BlockedRange &Range, LeafFn &&Leaf, JoinFn &&Join) {
  if (!Range.divisible())
    return Leaf(Range.Begin, Range.End);
  size_t Mid = Range.Begin + Range.size() / 2;
  T Left = sequentialReduce<T>(BlockedRange{Range.Begin, Mid, Range.Grain},
                               Leaf, Join);
  T Right = sequentialReduce<T>(BlockedRange{Mid, Range.End, Range.Grain},
                                Leaf, Join);
  return Join(Left, Right);
}

} // namespace parsynt

#endif // PARSYNT_RUNTIME_PARALLELREDUCE_H
