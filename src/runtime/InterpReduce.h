//===- runtime/InterpReduce.h - Run synthesized joins on data ---*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end execution of a parallelized loop: leaves interpret the
/// (lifted) loop body over chunks of real data, interior nodes evaluate the
/// synthesized join components. This is the direct analog of running the
/// paper's generated TBB program, with the interpreter standing in for the
/// generated C++ (the native kernels in suite/Kernels.h are the compiled
/// counterpart used for the Figure-8 performance runs).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_INTERPREDUCE_H
#define PARSYNT_RUNTIME_INTERPREDUCE_H

#include "interp/Interp.h"
#include "ir/Loop.h"
#include "runtime/ParallelReduce.h"

#include <vector>

namespace parsynt {

/// Evaluates join components over left/right state tuples. The parameter
/// bindings and the `<var>_l` / `<var>_r` environment keys are built once
/// at construction; each application copies the prepared environment and
/// only assigns the 2k state values, keeping string concatenation and
/// parameter insertion out of the per-node hot path. Applications are
/// const and thread-safe (interior joins run concurrently on the pool).
class JoinApplier {
public:
  JoinApplier(const Loop &L, const std::vector<ExprRef> &Join,
              const Env &Params);

  StateTuple operator()(const StateTuple &Left,
                        const StateTuple &Right) const;

private:
  std::vector<ExprRef> Components;
  Env Template;                       ///< params + placeholder _l/_r slots
  std::vector<std::string> LeftKeys;  ///< prebuilt "<var>_l" keys
  std::vector<std::string> RightKeys; ///< prebuilt "<var>_r" keys
};

/// Applies the join components to two state tuples. Convenience wrapper
/// constructing a one-shot JoinApplier; loops over many join nodes should
/// build the applier once instead.
StateTuple applyJoinComponents(const Loop &L,
                               const std::vector<ExprRef> &Join,
                               const StateTuple &Left,
                               const StateTuple &Right, const Env &Params);

/// Runs \p L over \p Seqs divide-and-conquer-style on \p Pool: leaves
/// execute the loop body sequentially from the initial state; interior
/// nodes apply \p Join. With grain >= |s| this degenerates to the
/// sequential run. An empty \p Join (the pipeline's sequential-fallback
/// signal) runs the loop single-threaded without touching the pool.
StateTuple parallelRunLoop(const Loop &L, const std::vector<ExprRef> &Join,
                           const SeqEnv &Seqs, TaskPool &Pool, size_t Grain,
                           const Env &Params = {});

} // namespace parsynt

#endif // PARSYNT_RUNTIME_INTERPREDUCE_H
