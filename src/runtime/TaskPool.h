//===- runtime/TaskPool.h - Work-stealing fork-join pool --------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing fork-join scheduler standing in for Intel TBB's task
/// scheduler (the paper's execution substrate). Each worker owns a
/// Chase-Lev deque: the owner pushes and pops LIFO at the bottom (so a
/// joining thread drains its own subtree depth-first, help-first), thieves
/// steal FIFO from the top (so they take the oldest — largest — subtree).
/// Victim selection is randomized. Idle workers and joining threads park on
/// a condition variable and are woken when work arrives or their group
/// completes; nothing in the pool spin-waits.
///
/// Tasks are fixed-size nodes with inline (small-buffer) storage for the
/// callable — no `std::function`, no global lock on the spawn path — and
/// freed nodes are recycled through a per-worker freelist.
///
/// Thread roles: `TaskPool(N)` starts N-1 dedicated workers; the slot-0
/// deque is claimed by the first external thread that touches the pool
/// (normally the caller driving parallelReduce), so its spawns are
/// lock-free too. Additional external threads fall back to a small
/// mutex-protected injection queue, which workers also poll.
///
/// Header-only (C++17) so emitted standalone programs share the exact
/// scheduler used by `InterpReduce` and the benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_TASKPOOL_H
#define PARSYNT_RUNTIME_TASKPOOL_H

#include "runtime/Stats.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace parsynt {

class TaskPool;

/// The number of threads a pool should use by default: the hardware
/// concurrency, clamped to at least 1 (the standard permits
/// hardware_concurrency() == 0 when it cannot be determined).
inline unsigned defaultThreadCount() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

/// A handle used to wait for spawned tasks. Completion is an atomic
/// counter; the pool wakes parked joiners when it reaches zero.
class TaskGroup {
public:
  void incr() { Pending.fetch_add(1, std::memory_order_relaxed); }

  /// Decrements the pending count; returns true when this call completed
  /// the group. seq_cst so the waker/sleeper handshake in TaskPool::wait
  /// cannot miss the final decrement.
  bool done() { return Pending.fetch_sub(1, std::memory_order_seq_cst) == 1; }

  bool finished() const {
    return Pending.load(std::memory_order_seq_cst) == 0;
  }

private:
  std::atomic<int> Pending{0};
};

namespace detail {

/// A spawned task: fixed-size node, callable stored inline when it fits
/// (the common case — parallelReduce's closures are a few references),
/// boxed on the heap otherwise. Nodes are recycled via per-worker
/// freelists, so steady-state spawning allocates nothing.
class TaskNode {
public:
  static constexpr size_t InlineBytes = 48;

  TaskGroup *Group = nullptr;
  TaskNode *NextFree = nullptr; // freelist link (only while free)

  template <typename Fn> void bind(TaskGroup &G, Fn &&F) {
    using Decayed = std::decay_t<Fn>;
    Group = &G;
    if constexpr (sizeof(Decayed) <= InlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t)) {
      ::new (static_cast<void *>(Storage)) Decayed(std::forward<Fn>(F));
      Invoke = [](TaskNode *T) {
        Decayed *Callable =
            std::launder(reinterpret_cast<Decayed *>(T->Storage));
        (*Callable)();
        Callable->~Decayed();
      };
    } else {
      auto *Boxed = new Decayed(std::forward<Fn>(F));
      ::new (static_cast<void *>(Storage)) Decayed *(Boxed);
      Invoke = [](TaskNode *T) {
        Decayed *Callable =
            *std::launder(reinterpret_cast<Decayed **>(T->Storage));
        (*Callable)();
        delete Callable;
      };
    }
  }

  void run() { Invoke(this); }

private:
  void (*Invoke)(TaskNode *) = nullptr;
  alignas(std::max_align_t) unsigned char Storage[InlineBytes];
};

/// Chase-Lev work-stealing deque of TaskNode pointers. Single owner calls
/// push/pop at the bottom; any thread may steal at the top. The portable
/// variant with seq_cst on the top/bottom handshake (no standalone fences,
/// which ThreadSanitizer cannot model); slots are relaxed atomics, so a
/// racy slot read whose CAS subsequently fails reads a stale value, never
/// tears. Retired rings are kept until destruction so a slow thief can
/// still read through an old buffer pointer.
class WorkDeque {
  struct Ring {
    explicit Ring(size_t Capacity)
        : Mask(Capacity - 1),
          Slots(std::make_unique<std::atomic<TaskNode *>[]>(Capacity)) {
      assert((Capacity & Mask) == 0 && "capacity must be a power of two");
    }
    size_t capacity() const { return Mask + 1; }
    TaskNode *get(uint64_t I) const {
      return Slots[I & Mask].load(std::memory_order_relaxed);
    }
    void put(uint64_t I, TaskNode *T) {
      Slots[I & Mask].store(T, std::memory_order_relaxed);
    }
    const size_t Mask;
    std::unique_ptr<std::atomic<TaskNode *>[]> Slots;
  };

public:
  WorkDeque() : Buf(new Ring(64)) {}

  ~WorkDeque() { delete Buf.load(std::memory_order_relaxed); }

  WorkDeque(const WorkDeque &) = delete;
  WorkDeque &operator=(const WorkDeque &) = delete;

  /// Owner only. The seq_cst bottom store doubles as the publication of
  /// the slot and as the waker side of the sleep handshake.
  void push(TaskNode *T) {
    uint64_t B = Bottom.load(std::memory_order_relaxed);
    uint64_t Tp = Top.load(std::memory_order_acquire);
    Ring *R = Buf.load(std::memory_order_relaxed);
    if (B - Tp > R->Mask)
      R = grow(R, Tp, B);
    R->put(B, T);
    Bottom.store(B + 1, std::memory_order_seq_cst);
  }

  /// Owner only; LIFO (most recently pushed — the deepest subtree).
  TaskNode *pop() {
    uint64_t B = Bottom.load(std::memory_order_relaxed);
    uint64_t Tp = Top.load(std::memory_order_relaxed);
    if (Tp >= B)
      return nullptr; // empty (only the owner moves Bottom up)
    B = B - 1;
    Bottom.store(B, std::memory_order_seq_cst);
    Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) { // a thief emptied it under us
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Ring *R = Buf.load(std::memory_order_relaxed);
    TaskNode *T = R->get(B);
    if (Tp == B) {
      // Last element: race the thieves for it via CAS on Top.
      if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed))
        T = nullptr;
      Bottom.store(B + 1, std::memory_order_relaxed);
    }
    return T;
  }

  /// Any thread; FIFO (oldest — the largest subtree).
  TaskNode *steal() {
    uint64_t Tp = Top.load(std::memory_order_seq_cst);
    uint64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return nullptr;
    Ring *R = Buf.load(std::memory_order_acquire);
    TaskNode *T = R->get(Tp);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return nullptr;
    return T;
  }

  /// Approximate (exact for the sleep handshake's purposes: the seq_cst
  /// loads pair with push's seq_cst bottom store).
  bool maybeNonEmpty() const {
    uint64_t Tp = Top.load(std::memory_order_seq_cst);
    uint64_t B = Bottom.load(std::memory_order_seq_cst);
    return Tp < B;
  }

private:
  Ring *grow(Ring *Old, uint64_t Tp, uint64_t B) {
    Ring *Fresh = new Ring(Old->capacity() * 2);
    for (uint64_t I = Tp; I != B; ++I)
      Fresh->put(I, Old->get(I));
    Buf.store(Fresh, std::memory_order_release);
    Retired.emplace_back(Old); // owner-only; freed with the deque
    return Fresh;
  }

  std::atomic<uint64_t> Top{0};
  std::atomic<uint64_t> Bottom{0};
  std::atomic<Ring *> Buf;
  std::vector<std::unique_ptr<Ring>> Retired;
};

} // namespace detail

/// Work-stealing fork-join pool. `Threads` counts the total workers
/// including the calling thread's participation via wait(); pass 1 for a
/// sequential pool (used by the Figure-8 single-core overhead
/// measurement).
class TaskPool {
  struct Slot; // per-worker state, below

public:
  explicit TaskPool(unsigned Threads)
      : NumThreads(Threads == 0 ? 1 : Threads),
        Slots(std::make_unique<Slot[]>(NumThreads)),
        ExternalCounters(std::make_unique<WorkerCounters>()) {
    for (unsigned I = 1; I < NumThreads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ~TaskPool() {
    {
      std::lock_guard<std::mutex> Lock(IdleMutex);
      ShuttingDown = true;
    }
    IdleCv.notify_all();
    for (std::thread &W : Workers)
      W.join();
    assert(!anyDequeWork() && Injection.empty() &&
           "pool destroyed with pending tasks");
    for (unsigned I = 0; I != NumThreads; ++I)
      for (detail::TaskNode *T = Slots[I].FreeList; T;) {
        detail::TaskNode *Next = T->NextFree;
        delete T;
        T = Next;
      }
  }

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  unsigned threadCount() const { return NumThreads; }

  /// Enqueues \p Fn under \p Group. The group must outlive the task. From
  /// a pool thread (or the claimed caller) this pushes onto the spawner's
  /// own deque with no lock taken.
  template <typename Fn> void spawn(TaskGroup &Group, Fn &&F) {
    Group.incr();
    int S = mySlot();
    detail::TaskNode *T = allocTask(S);
    if (!T) {
      // Allocation failed (injected via "pool.alloc", or genuine
      // std::nothrow exhaustion): degrade to an inline call. Fork-join
      // semantics permit eager execution of a spawned task; only the
      // available parallelism shrinks.
      counters(S).bump(&WorkerCounters::Spawned);
      counters(S).bump(&WorkerCounters::Inlined);
      F();
      if (Group.done())
        wakeAll();
      return;
    }
    T->bind(Group, std::forward<Fn>(F));
    counters(S).bump(&WorkerCounters::Spawned);
    if (S >= 0) {
      Slots[S].Deque.push(T);
    } else {
      std::lock_guard<std::mutex> Lock(IdleMutex);
      Injection.push_back(T);
      HaveInjected.store(true, std::memory_order_seq_cst);
    }
    wakeOne();
  }

  /// Runs tasks until \p Group completes: drains the caller's own deque
  /// (help-first — its own subtree, deepest task first), then steals from
  /// random victims; parks when no work exists anywhere, woken by new
  /// spawns or by the group's completion.
  void wait(TaskGroup &Group) {
    int S = mySlot();
    uint64_t &Rng = stealRng();
    while (!Group.finished()) {
      detail::TaskNode *T = S >= 0 ? Slots[S].Deque.pop() : nullptr;
      if (!T)
        T = trySteal(S, Rng);
      if (T) {
        runTask(T, S);
        continue;
      }
      parkUnless([&] { return Group.finished(); }, S);
    }
  }

  /// Pops or steals one task and runs it. Returns false if no work was
  /// found anywhere.
  bool tryRunOne() {
    int S = mySlot();
    detail::TaskNode *T = S >= 0 ? Slots[S].Deque.pop() : nullptr;
    if (!T)
      T = trySteal(S, stealRng());
    if (!T)
      return false;
    runTask(T, S);
    return true;
  }

  /// \name Observability
  /// @{

  /// Enables leaf/join timing in parallelReduce (event counters are always
  /// on; they are uncontended relaxed increments).
  void setTimingEnabled(bool On) { TimingOn = On; }
  bool timingEnabled() const { return TimingOn; }
  ReduceTimings &timings() { return Timings; }

  StatsSnapshot statsSnapshot() const {
    StatsSnapshot Snap;
    Snap.TimingEnabled = TimingOn;
    auto Row = [](const WorkerCounters &C) {
      WorkerStatsRow R;
      R.Spawned = C.Spawned.load(std::memory_order_relaxed);
      R.Executed = C.Executed.load(std::memory_order_relaxed);
      R.Stolen = C.Stolen.load(std::memory_order_relaxed);
      R.StealFails = C.StealFails.load(std::memory_order_relaxed);
      R.Parks = C.Parks.load(std::memory_order_relaxed);
      R.Inlined = C.Inlined.load(std::memory_order_relaxed);
      return R;
    };
    for (unsigned I = 0; I != NumThreads; ++I)
      Snap.Workers.push_back(Row(Slots[I].Counters));
    WorkerStatsRow Ext = Row(*ExternalCounters);
    if (Ext.Spawned || Ext.Executed || Ext.Stolen || Ext.StealFails ||
        Ext.Parks || Ext.Inlined) {
      Snap.Workers.push_back(Ext);
      Snap.ExternalRow = true;
    }
    for (const WorkerStatsRow &W : Snap.Workers)
      Snap.Total += W;
    Snap.LeafCount = Timings.LeafCount.load(std::memory_order_relaxed);
    Snap.LeafNanos = Timings.LeafNanos.load(std::memory_order_relaxed);
    Snap.JoinCount = Timings.JoinCount.load(std::memory_order_relaxed);
    Snap.JoinNanos = Timings.JoinNanos.load(std::memory_order_relaxed);
    return Snap;
  }

  void resetStats() {
    for (unsigned I = 0; I != NumThreads; ++I)
      resetCounters(Slots[I].Counters);
    resetCounters(*ExternalCounters);
    Timings.LeafCount.store(0, std::memory_order_relaxed);
    Timings.LeafNanos.store(0, std::memory_order_relaxed);
    Timings.JoinCount.store(0, std::memory_order_relaxed);
    Timings.JoinNanos.store(0, std::memory_order_relaxed);
  }

  /// @}

private:
  struct alignas(64) Slot {
    detail::WorkDeque Deque;
    WorkerCounters Counters;
    detail::TaskNode *FreeList = nullptr; ///< owner-thread only
    unsigned FreeCount = 0;
  };

  /// Identity of the current thread within this pool: the slot index of a
  /// dedicated worker, 0 for the (first) external caller, or -1 for an
  /// unregistered external thread. Dedicated workers record themselves in
  /// a thread_local; external callers are recognized by thread id.
  struct TlsBinding {
    const TaskPool *Pool = nullptr;
    unsigned Index = 0;
  };
  static TlsBinding &tlsBinding() {
    static thread_local TlsBinding B;
    return B;
  }
  static uint64_t &stealRng() {
    static thread_local uint64_t State = 0;
    if (State == 0)
      State = 0x9E3779B97F4A7C15ull ^
              std::hash<std::thread::id>()(std::this_thread::get_id());
    return State;
  }

  int mySlot() {
    // Dedicated workers are identified by a thread_local set at thread
    // start (those threads die with the pool, so it cannot go stale).
    TlsBinding &B = tlsBinding();
    if (B.Pool == this)
      return static_cast<int>(B.Index);
    // External thread: recognize or claim slot 0 by thread id. Later
    // external threads fall back to the injection queue (-1).
    std::thread::id Self = std::this_thread::get_id();
    std::thread::id Owner = CallerId.load(std::memory_order_acquire);
    if (Owner == Self)
      return 0;
    std::thread::id None{};
    if (Owner == None &&
        CallerId.compare_exchange_strong(None, Self,
                                         std::memory_order_acq_rel))
      return 0;
    return -1;
  }

  WorkerCounters &counters(int S) {
    return S >= 0 ? Slots[S].Counters : *ExternalCounters;
  }

  /// May return null: under the "pool.alloc" fault point (or genuine
  /// memory exhaustion) the caller degrades the spawn to an inline call.
  detail::TaskNode *allocTask(int S) {
    if (FaultInjector::fires("pool.alloc"))
      return nullptr;
    if (S >= 0 && Slots[S].FreeList) {
      detail::TaskNode *T = Slots[S].FreeList;
      Slots[S].FreeList = T->NextFree;
      --Slots[S].FreeCount;
      return T;
    }
    return new (std::nothrow) detail::TaskNode();
  }

  void freeTask(detail::TaskNode *T, int S) {
    if (S >= 0 && Slots[S].FreeCount < 1024) {
      T->NextFree = Slots[S].FreeList;
      Slots[S].FreeList = T;
      ++Slots[S].FreeCount;
      return;
    }
    delete T;
  }

  void runTask(detail::TaskNode *T, int S) {
    counters(S).bump(&WorkerCounters::Executed);
    TaskGroup *G = T->Group;
    T->run();
    freeTask(T, S);
    if (G->done())
      wakeAll(); // group completed: wake any parked joiners
  }

  /// One randomized sweep over the other workers' deques plus the
  /// injection queue. Returns null when everything looked empty.
  detail::TaskNode *trySteal(int S, uint64_t &Rng) {
    // Injected steal failure ("pool.steal"): report empty-handed without
    // probing any victim. Live-safe — a thwarted thief that parks rechecks
    // anyDequeWork() under the lock, so pending work still gets claimed
    // (though specs without a limit/every>1 clause can spin a thief).
    if (FaultInjector::fires("pool.steal")) {
      counters(S).bump(&WorkerCounters::StealFails);
      return nullptr;
    }
    // xorshift64*
    auto Next = [&Rng] {
      Rng ^= Rng >> 12;
      Rng ^= Rng << 25;
      Rng ^= Rng >> 27;
      return Rng * 0x2545F4914F6CDD1Dull;
    };
    if (NumThreads > 1) {
      unsigned Start = static_cast<unsigned>(Next() % NumThreads);
      for (unsigned K = 0; K != NumThreads; ++K) {
        unsigned V = Start + K >= NumThreads ? Start + K - NumThreads
                                             : Start + K;
        if (static_cast<int>(V) == S)
          continue;
        if (detail::TaskNode *T = Slots[V].Deque.steal()) {
          counters(S).bump(&WorkerCounters::Stolen);
          return T;
        }
      }
    }
    if (HaveInjected.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Lock(IdleMutex);
      if (!Injection.empty()) {
        detail::TaskNode *T = Injection.front();
        Injection.pop_front();
        if (Injection.empty())
          HaveInjected.store(false, std::memory_order_seq_cst);
        counters(S).bump(&WorkerCounters::Stolen);
        return T;
      }
    }
    counters(S).bump(&WorkerCounters::StealFails);
    return nullptr;
  }

  bool anyDequeWork() const {
    for (unsigned I = 0; I != NumThreads; ++I)
      if (Slots[I].Deque.maybeNonEmpty())
        return true;
    return HaveInjected.load(std::memory_order_seq_cst);
  }

  /// Blocks until woken, unless \p Done already holds or work is visible.
  /// The seq_cst Sleepers increment followed by the work re-scan pairs
  /// with the waker's work-publish followed by the seq_cst Sleepers load
  /// (Dekker-style: at least one side sees the other), so no wakeup is
  /// lost without taking a lock on the spawn fast path.
  template <typename DoneFn> void parkUnless(DoneFn &&Done, int S) {
    std::unique_lock<std::mutex> Lock(IdleMutex);
    Sleepers.fetch_add(1, std::memory_order_seq_cst);
    if (!Done() && !anyDequeWork() && !ShuttingDown) {
      counters(S).bump(&WorkerCounters::Parks);
      if (FaultInjector::fires("pool.wakeup"))
        IdleCv.wait_for(Lock, std::chrono::microseconds(100));
      else
        IdleCv.wait(Lock);
    }
    Sleepers.fetch_sub(1, std::memory_order_relaxed);
  }

  void wakeOne() {
    if (Sleepers.load(std::memory_order_seq_cst) == 0)
      return;
    // Lock so the notify cannot slip between a sleeper's re-scan and its
    // wait(); the critical section is empty on purpose.
    std::lock_guard<std::mutex> Lock(IdleMutex);
    IdleCv.notify_one();
  }

  void wakeAll() {
    if (Sleepers.load(std::memory_order_seq_cst) == 0)
      return;
    std::lock_guard<std::mutex> Lock(IdleMutex);
    IdleCv.notify_all();
  }

  void workerLoop(unsigned Index) {
    tlsBinding() = {this, Index};
    uint64_t &Rng = stealRng();
    int S = static_cast<int>(Index);
    while (true) {
      detail::TaskNode *T = Slots[Index].Deque.pop();
      if (!T)
        T = trySteal(S, Rng);
      if (T) {
        runTask(T, S);
        continue;
      }
      {
        std::unique_lock<std::mutex> Lock(IdleMutex);
        Sleepers.fetch_add(1, std::memory_order_seq_cst);
        if (!anyDequeWork() && !ShuttingDown) {
          Slots[Index].Counters.bump(&WorkerCounters::Parks);
          // "pool.wakeup" simulates a spurious wakeup: the wait returns
          // without a notification and the loop re-scans for work.
          if (FaultInjector::fires("pool.wakeup"))
            IdleCv.wait_for(Lock, std::chrono::microseconds(100));
          else
            IdleCv.wait(Lock);
        }
        Sleepers.fetch_sub(1, std::memory_order_relaxed);
        if (ShuttingDown && !anyDequeWork())
          return;
      }
    }
  }

  static void resetCounters(WorkerCounters &C) {
    C.Spawned.store(0, std::memory_order_relaxed);
    C.Executed.store(0, std::memory_order_relaxed);
    C.Stolen.store(0, std::memory_order_relaxed);
    C.StealFails.store(0, std::memory_order_relaxed);
    C.Parks.store(0, std::memory_order_relaxed);
    C.Inlined.store(0, std::memory_order_relaxed);
  }

  unsigned NumThreads;
  std::unique_ptr<Slot[]> Slots;
  std::vector<std::thread> Workers;
  std::atomic<std::thread::id> CallerId{};

  // Injection queue for unregistered external threads (rare: only when a
  // second external thread shares the pool). Guarded by IdleMutex.
  std::deque<detail::TaskNode *> Injection;
  std::atomic<bool> HaveInjected{false};

  std::mutex IdleMutex;
  std::condition_variable IdleCv;
  std::atomic<int> Sleepers{0};
  bool ShuttingDown = false; // guarded by IdleMutex

  // Observability (counters live in the slots; timing is pool-wide).
  std::unique_ptr<WorkerCounters> ExternalCounters;
  ReduceTimings Timings;
  bool TimingOn = false;
};

} // namespace parsynt

#endif // PARSYNT_RUNTIME_TASKPOOL_H
