//===- runtime/TaskPool.h - Fork-join worker pool ---------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fork-join worker pool standing in for Intel TBB's task
/// scheduler (the paper's execution substrate). Tasks are type-erased
/// thunks; a thread blocked on a child's completion *helps* by draining the
/// queue, so recursive divide-and-conquer never deadlocks regardless of
/// pool size. The pool is deliberately simple — a global mutex-protected
/// deque — because the divide-and-conquer skeleton's leaves are
/// grain-sized (tens of thousands of elements), making scheduler overhead
/// negligible, which is the regime the paper evaluates.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_TASKPOOL_H
#define PARSYNT_RUNTIME_TASKPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parsynt {

/// A handle used to wait for a spawned task. Completion is signalled by an
/// atomic counter so waiting threads can spin-help on the pool.
class TaskGroup {
public:
  void incr() { Pending.fetch_add(1, std::memory_order_relaxed); }
  void done() { Pending.fetch_sub(1, std::memory_order_acq_rel); }
  bool finished() const {
    return Pending.load(std::memory_order_acquire) == 0;
  }

private:
  std::atomic<int> Pending{0};
};

/// Fork-join worker pool. `Threads` counts the total workers including the
/// calling thread's participation via wait(); pass 1 for a sequential pool
/// (used by the Figure-8 single-core overhead measurement).
class TaskPool {
public:
  explicit TaskPool(unsigned Threads);
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  unsigned threadCount() const { return NumThreads; }

  /// Enqueues \p Fn under \p Group. The group must outlive the task.
  void spawn(TaskGroup &Group, std::function<void()> Fn);

  /// Runs queued tasks until \p Group completes (work-helping join).
  void wait(TaskGroup &Group);

  /// Pops and runs one task if available. Returns false when the queue was
  /// empty.
  bool tryRunOne();

private:
  void workerLoop();

  unsigned NumThreads;
  std::vector<std::thread> Workers;
  std::deque<std::pair<TaskGroup *, std::function<void()>>> Queue;
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  bool ShuttingDown = false;
};

} // namespace parsynt

#endif // PARSYNT_RUNTIME_TASKPOOL_H
