//===- runtime/Stats.h - Scheduler observability counters -------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight observability for the work-stealing runtime: per-worker
/// spawn/execute/steal/park counters and (optionally, when timing is
/// enabled on the pool) leaf/join wall-time accumulated by the reduce
/// skeleton. Counters are relaxed atomics on cache-line-padded per-worker
/// slots, so the hot path pays one uncontended increment per event; a
/// snapshot aggregates them into a printable table. Dumped by
/// `bench/fig8 --stats` and `parsynt --runtime-stats`.
///
/// Header-only (C++17) so the emitted standalone programs can share it.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_STATS_H
#define PARSYNT_RUNTIME_STATS_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace parsynt {

/// Per-worker event counters. Each slot is written only by the thread
/// currently bound to it (relaxed increments); readers snapshot with
/// relaxed loads, so totals are exact once the pool is quiescent and
/// monotone approximations while it runs.
struct alignas(64) WorkerCounters {
  std::atomic<uint64_t> Spawned{0};   ///< tasks pushed by this worker
  std::atomic<uint64_t> Executed{0};  ///< tasks run by this worker
  std::atomic<uint64_t> Stolen{0};    ///< successful steals from a victim
  std::atomic<uint64_t> StealFails{0};///< empty-handed victim probes
  std::atomic<uint64_t> Parks{0};     ///< times this worker blocked idle
  std::atomic<uint64_t> Inlined{0};   ///< spawns degraded to inline calls
                                      ///< (task-node allocation failed)

  void bump(std::atomic<uint64_t> WorkerCounters::*Field) {
    (this->*Field).fetch_add(1, std::memory_order_relaxed);
  }
};

/// Leaf/join wall-time accumulated by parallelReduce when the pool has
/// timing enabled (off by default: two clock reads per leaf/join are not
/// free at fine grain).
struct ReduceTimings {
  std::atomic<uint64_t> LeafCount{0};
  std::atomic<uint64_t> LeafNanos{0};
  std::atomic<uint64_t> JoinCount{0};
  std::atomic<uint64_t> JoinNanos{0};

  void noteLeaf(uint64_t Nanos) {
    LeafCount.fetch_add(1, std::memory_order_relaxed);
    LeafNanos.fetch_add(Nanos, std::memory_order_relaxed);
  }
  void noteJoin(uint64_t Nanos) {
    JoinCount.fetch_add(1, std::memory_order_relaxed);
    JoinNanos.fetch_add(Nanos, std::memory_order_relaxed);
  }
};

/// A plain-value copy of one worker's counters.
struct WorkerStatsRow {
  uint64_t Spawned = 0, Executed = 0, Stolen = 0, StealFails = 0, Parks = 0;
  uint64_t Inlined = 0;

  WorkerStatsRow &operator+=(const WorkerStatsRow &O) {
    Spawned += O.Spawned;
    Executed += O.Executed;
    Stolen += O.Stolen;
    StealFails += O.StealFails;
    Parks += O.Parks;
    Inlined += O.Inlined;
    return *this;
  }
};

/// Aggregated snapshot of a pool's counters. Row 0 is the calling thread's
/// slot, rows 1..N-1 the dedicated workers, and the final row (when
/// present) pools every unregistered external thread.
struct StatsSnapshot {
  std::vector<WorkerStatsRow> Workers;
  WorkerStatsRow Total;
  uint64_t LeafCount = 0, LeafNanos = 0, JoinCount = 0, JoinNanos = 0;
  bool TimingEnabled = false;

  /// One compact summary line: totals only.
  std::string summary() const {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "spawns=%llu steals=%llu steal-fails=%llu parks=%llu",
                  (unsigned long long)Total.Spawned,
                  (unsigned long long)Total.Stolen,
                  (unsigned long long)Total.StealFails,
                  (unsigned long long)Total.Parks);
    std::string S = Buf;
    if (Total.Inlined) { // only under injected allocation failure
      std::snprintf(Buf, sizeof(Buf), " inlined=%llu",
                    (unsigned long long)Total.Inlined);
      S += Buf;
    }
    if (TimingEnabled && (LeafCount || JoinCount)) {
      std::snprintf(Buf, sizeof(Buf),
                    " leaves=%llu (%.2f ms) joins=%llu (%.3f ms)",
                    (unsigned long long)LeafCount, LeafNanos / 1e6,
                    (unsigned long long)JoinCount, JoinNanos / 1e6);
      S += Buf;
    }
    return S;
  }

  /// Full per-worker table.
  std::string table() const {
    std::string S;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "%-8s %10s %10s %10s %12s %8s %8s\n",
                  "worker", "spawned", "executed", "stolen", "steal-fails",
                  "parks", "inlined");
    S += Buf;
    for (size_t I = 0; I != Workers.size(); ++I) {
      const WorkerStatsRow &W = Workers[I];
      std::string Label = I == 0                 ? "caller"
                          : I + 1 == Workers.size() ? "external"
                                                    : "w" + std::to_string(I);
      // The trailing "external" row only exists for unregistered threads;
      // in the common single-caller case Workers.size() == pool size and
      // the last dedicated worker keeps its wN label.
      if (I != 0 && I + 1 == Workers.size() && !ExternalRow)
        Label = "w" + std::to_string(I);
      std::snprintf(Buf, sizeof(Buf),
                    "%-8s %10llu %10llu %10llu %12llu %8llu %8llu\n",
                    Label.c_str(), (unsigned long long)W.Spawned,
                    (unsigned long long)W.Executed,
                    (unsigned long long)W.Stolen,
                    (unsigned long long)W.StealFails,
                    (unsigned long long)W.Parks,
                    (unsigned long long)W.Inlined);
      S += Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "%-8s %10llu %10llu %10llu %12llu %8llu %8llu\n", "total",
                  (unsigned long long)Total.Spawned,
                  (unsigned long long)Total.Executed,
                  (unsigned long long)Total.Stolen,
                  (unsigned long long)Total.StealFails,
                  (unsigned long long)Total.Parks,
                  (unsigned long long)Total.Inlined);
    S += Buf;
    if (TimingEnabled) {
      std::snprintf(Buf, sizeof(Buf),
                    "leaves: %llu in %.3f ms; joins: %llu in %.3f ms\n",
                    (unsigned long long)LeafCount, LeafNanos / 1e6,
                    (unsigned long long)JoinCount, JoinNanos / 1e6);
      S += Buf;
    }
    return S;
  }

  bool ExternalRow = false;
};

} // namespace parsynt

#endif // PARSYNT_RUNTIME_STATS_H
