//===- runtime/Stats.h - Scheduler observability counters -------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight observability for the work-stealing runtime: per-worker
/// spawn/execute/steal/park counters and (optionally, when timing is
/// enabled on the pool) leaf/join wall-time accumulated by the reduce
/// skeleton. Counters are relaxed atomics on cache-line-padded per-worker
/// slots, so the hot path pays one uncontended increment per event; a
/// snapshot aggregates them into plain values. Formatting lives in
/// observe/PoolMetrics.h (poolSummary/poolTable), which routes these
/// counters through the metric registry so `bench/fig8 --stats`,
/// `parsynt --runtime-stats`, and the JSON run report share one code path.
///
/// Header-only (C++17) so the emitted standalone programs can share it.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_RUNTIME_STATS_H
#define PARSYNT_RUNTIME_STATS_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace parsynt {

/// Per-worker event counters. Each slot is written only by the thread
/// currently bound to it (relaxed increments); readers snapshot with
/// relaxed loads, so totals are exact once the pool is quiescent and
/// monotone approximations while it runs.
struct alignas(64) WorkerCounters {
  std::atomic<uint64_t> Spawned{0};   ///< tasks pushed by this worker
  std::atomic<uint64_t> Executed{0};  ///< tasks run by this worker
  std::atomic<uint64_t> Stolen{0};    ///< successful steals from a victim
  std::atomic<uint64_t> StealFails{0};///< empty-handed victim probes
  std::atomic<uint64_t> Parks{0};     ///< times this worker blocked idle
  std::atomic<uint64_t> Inlined{0};   ///< spawns degraded to inline calls
                                      ///< (task-node allocation failed)

  void bump(std::atomic<uint64_t> WorkerCounters::*Field) {
    (this->*Field).fetch_add(1, std::memory_order_relaxed);
  }
};

/// Leaf/join wall-time accumulated by parallelReduce when the pool has
/// timing enabled (off by default: two clock reads per leaf/join are not
/// free at fine grain).
struct ReduceTimings {
  std::atomic<uint64_t> LeafCount{0};
  std::atomic<uint64_t> LeafNanos{0};
  std::atomic<uint64_t> JoinCount{0};
  std::atomic<uint64_t> JoinNanos{0};

  void noteLeaf(uint64_t Nanos) {
    LeafCount.fetch_add(1, std::memory_order_relaxed);
    LeafNanos.fetch_add(Nanos, std::memory_order_relaxed);
  }
  void noteJoin(uint64_t Nanos) {
    JoinCount.fetch_add(1, std::memory_order_relaxed);
    JoinNanos.fetch_add(Nanos, std::memory_order_relaxed);
  }
};

/// A plain-value copy of one worker's counters.
struct WorkerStatsRow {
  uint64_t Spawned = 0, Executed = 0, Stolen = 0, StealFails = 0, Parks = 0;
  uint64_t Inlined = 0;

  WorkerStatsRow &operator+=(const WorkerStatsRow &O) {
    Spawned += O.Spawned;
    Executed += O.Executed;
    Stolen += O.Stolen;
    StealFails += O.StealFails;
    Parks += O.Parks;
    Inlined += O.Inlined;
    return *this;
  }
};

/// Aggregated snapshot of a pool's counters. Row 0 is the calling thread's
/// slot, rows 1..N-1 the dedicated workers, and the final row (when
/// present) pools every unregistered external thread.
struct StatsSnapshot {
  std::vector<WorkerStatsRow> Workers;
  WorkerStatsRow Total;
  uint64_t LeafCount = 0, LeafNanos = 0, JoinCount = 0, JoinNanos = 0;
  bool TimingEnabled = false;
  bool ExternalRow = false;
};

} // namespace parsynt

#endif // PARSYNT_RUNTIME_STATS_H
