//===- runtime/TaskPool.cpp - Fork-join worker pool -----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/TaskPool.h"

#include <cassert>

using namespace parsynt;

TaskPool::TaskPool(unsigned Threads) : NumThreads(Threads == 0 ? 1 : Threads) {
  // The calling thread participates through wait(), so spawn one fewer
  // dedicated worker.
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  assert(Queue.empty() && "pool destroyed with pending tasks");
}

void TaskPool::spawn(TaskGroup &Group, std::function<void()> Fn) {
  Group.incr();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.emplace_back(&Group, std::move(Fn));
  }
  QueueCv.notify_one();
}

bool TaskPool::tryRunOne() {
  std::pair<TaskGroup *, std::function<void()>> Task;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Queue.empty())
      return false;
    Task = std::move(Queue.back()); // LIFO for the caller: depth-first,
    Queue.pop_back();               // cache-friendly recursion
  }
  Task.second();
  Task.first->done();
  return true;
}

void TaskPool::wait(TaskGroup &Group) {
  while (!Group.finished()) {
    if (!tryRunOne())
      std::this_thread::yield();
  }
}

void TaskPool::workerLoop() {
  while (true) {
    std::pair<TaskGroup *, std::function<void()>> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down
      Task = std::move(Queue.front()); // FIFO for workers: breadth-first,
      Queue.pop_front();               // exposes parallelism early
    }
    Task.second();
    Task.first->done();
  }
}
