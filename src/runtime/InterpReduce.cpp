//===- runtime/InterpReduce.cpp - Run synthesized joins on data -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/InterpReduce.h"

using namespace parsynt;

StateTuple parsynt::applyJoinComponents(const Loop &L,
                                        const std::vector<ExprRef> &Join,
                                        const StateTuple &Left,
                                        const StateTuple &Right,
                                        const Env &Params) {
  Env E = Params;
  for (size_t I = 0; I != L.Equations.size(); ++I) {
    E[L.Equations[I].Name + "_l"] = Left[I];
    E[L.Equations[I].Name + "_r"] = Right[I];
  }
  StateTuple Result;
  Result.reserve(Join.size());
  for (const ExprRef &Component : Join)
    Result.push_back(evalExpr(Component, E));
  return Result;
}

StateTuple parsynt::parallelRunLoop(const Loop &L,
                                    const std::vector<ExprRef> &Join,
                                    const SeqEnv &Seqs, TaskPool &Pool,
                                    size_t Grain, const Env &Params) {
  assert(!L.Sequences.empty() && "loop must read a sequence");
  size_t Length = Seqs.at(L.Sequences.front().Name).size();
  if (Length == 0)
    return initialState(L, Params);

  BlockedRange Range{0, Length, std::max<size_t>(Grain, 1)};
  return parallelReduce<StateTuple>(
      Range, Pool,
      [&](size_t Begin, size_t End) {
        return runLoopRange(L, initialState(L, Params), Seqs,
                            static_cast<int64_t>(Begin),
                            static_cast<int64_t>(End), Params);
      },
      [&](const StateTuple &Left, const StateTuple &Right) {
        return applyJoinComponents(L, Join, Left, Right, Params);
      });
}
