//===- runtime/InterpReduce.cpp - Run synthesized joins on data -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "runtime/InterpReduce.h"

using namespace parsynt;

JoinApplier::JoinApplier(const Loop &L, const std::vector<ExprRef> &Join,
                         const Env &Params)
    : Components(Join), Template(Params) {
  LeftKeys.reserve(L.Equations.size());
  RightKeys.reserve(L.Equations.size());
  for (const Equation &Eq : L.Equations) {
    LeftKeys.push_back(Eq.Name + "_l");
    RightKeys.push_back(Eq.Name + "_r");
    Template[LeftKeys.back()] = Value();
    Template[RightKeys.back()] = Value();
  }
}

StateTuple JoinApplier::operator()(const StateTuple &Left,
                                   const StateTuple &Right) const {
  Env E = Template; // structural copy; no insertions below
  for (size_t I = 0; I != LeftKeys.size(); ++I) {
    E.find(LeftKeys[I])->second = Left[I];
    E.find(RightKeys[I])->second = Right[I];
  }
  StateTuple Result;
  Result.reserve(Components.size());
  for (const ExprRef &Component : Components)
    Result.push_back(evalExpr(Component, E));
  return Result;
}

StateTuple parsynt::applyJoinComponents(const Loop &L,
                                        const std::vector<ExprRef> &Join,
                                        const StateTuple &Left,
                                        const StateTuple &Right,
                                        const Env &Params) {
  return JoinApplier(L, Join, Params)(Left, Right);
}

StateTuple parsynt::parallelRunLoop(const Loop &L,
                                    const std::vector<ExprRef> &Join,
                                    const SeqEnv &Seqs, TaskPool &Pool,
                                    size_t Grain, const Env &Params) {
  assert(!L.Sequences.empty() && "loop must read a sequence");
  // An empty join is the pipeline's sequential-fallback signal (synthesis
  // failed or timed out): run the loop single-threaded rather than crash
  // on a join-arity mismatch.
  if (Join.empty())
    return runLoop(L, Seqs, Params);
  size_t Length = Seqs.at(L.Sequences.front().Name).size();
  if (Length == 0)
    return initialState(L, Params);

  // Hoisted out of the per-node hot path: one applier for the whole tree.
  JoinApplier Join2(L, Join, Params);
  StateTuple Init = initialState(L, Params);

  BlockedRange Range{0, Length, std::max<size_t>(Grain, 1)};
  return parallelReduce<StateTuple>(
      Range, Pool,
      [&](size_t Begin, size_t End) {
        return runLoopRange(L, Init, Seqs, static_cast<int64_t>(Begin),
                            static_cast<int64_t>(End), Params);
      },
      [&](const StateTuple &Left, const StateTuple &Right) {
        return Join2(Left, Right);
      });
}
