//===- synth/Enumerator.cpp - Bottom-up expression enumeration ------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Performance note: combined candidates compute their value vectors
// elementwise from their operands' cached vectors, so cost per candidate is
// O(#tests) regardless of term size; only leaves walk the interpreter.
// Per-size buckets make each term constructible exactly once.
//
//===----------------------------------------------------------------------===//

#include "synth/Enumerator.h"

using namespace parsynt;

namespace {

int64_t wrap(uint64_t V) { return static_cast<int64_t>(V); }

Value applyBinary(BinaryOp Op, const Value &A, const Value &B) {
  switch (Op) {
  case BinaryOp::Add:
    return Value::ofInt(wrap(static_cast<uint64_t>(A.asInt()) +
                             static_cast<uint64_t>(B.asInt())));
  case BinaryOp::Sub:
    return Value::ofInt(wrap(static_cast<uint64_t>(A.asInt()) -
                             static_cast<uint64_t>(B.asInt())));
  case BinaryOp::Mul:
    return Value::ofInt(wrap(static_cast<uint64_t>(A.asInt()) *
                             static_cast<uint64_t>(B.asInt())));
  case BinaryOp::Div:
    if (B.asInt() == 0)
      return Value::ofInt(0);
    if (A.asInt() == INT64_MIN && B.asInt() == -1)
      return Value::ofInt(INT64_MIN);
    return Value::ofInt(A.asInt() / B.asInt());
  case BinaryOp::Min:
    return Value::ofInt(std::min(A.asInt(), B.asInt()));
  case BinaryOp::Max:
    return Value::ofInt(std::max(A.asInt(), B.asInt()));
  case BinaryOp::Lt:
    return Value::ofBool(A.asInt() < B.asInt());
  case BinaryOp::Le:
    return Value::ofBool(A.asInt() <= B.asInt());
  case BinaryOp::Gt:
    return Value::ofBool(A.asInt() > B.asInt());
  case BinaryOp::Ge:
    return Value::ofBool(A.asInt() >= B.asInt());
  case BinaryOp::Eq:
    return Value::ofBool(A == B);
  case BinaryOp::Ne:
    return Value::ofBool(A != B);
  case BinaryOp::And:
    return Value::ofBool(A.asBool() && B.asBool());
  case BinaryOp::Or:
    return Value::ofBool(A.asBool() || B.asBool());
  }
  return Value();
}

} // namespace

Enumerator::Enumerator(std::vector<Env> TestEnvs, EnumeratorOptions Options)
    : Envs(std::move(TestEnvs)), Options(Options) {
  assert(!Envs.empty() && "enumeration needs at least one test environment");
}

uint64_t Enumerator::signatureOf(const std::vector<Value> &Values) const {
  uint64_t H = 0x9e3779b97f4a7c15ull;
  for (const Value &V : Values) {
    H ^= static_cast<uint64_t>(V.raw()) + 0x9e3779b97f4a7c15ull + (H << 6) +
         (H >> 2);
  }
  return H;
}

bool Enumerator::insertWithValues(const ExprRef &E,
                                  std::vector<Value> Values) {
  std::vector<Candidate> &Pool = E->type() == Type::Int ? Ints : Bools;
  auto &Sigs = E->type() == Type::Int ? IntSigs : BoolSigs;
  if (Pool.size() >= Options.MaxPerType)
    return false;

  uint64_t Sig = signatureOf(Values);
  auto It = Sigs.find(Sig);
  if (It != Sigs.end()) {
    for (size_t Index : It->second)
      if (Pool[Index].Values == Values)
        return false; // observational twin; the earlier (smaller) one wins
  }
  Sigs[Sig].push_back(Pool.size());
  auto &Buckets = E->type() == Type::Int ? IntBySize : BoolBySize;
  if (Buckets.size() <= E->size())
    Buckets.resize(E->size() + 1);
  Buckets[E->size()].push_back(Pool.size());
  Pool.push_back({E, std::move(Values)});
  return true;
}

bool Enumerator::insert(const ExprRef &E) {
  std::vector<Value> Values;
  Values.reserve(Envs.size());
  for (const Env &TestEnv : Envs)
    Values.push_back(evalExpr(E, TestEnv));
  return insertWithValues(E, std::move(Values));
}

void Enumerator::addLeaf(const ExprRef &E) { insert(E); }

void Enumerator::run() {
  const size_t NumTests = Envs.size();

  auto bucket = [](const std::vector<std::vector<size_t>> &Buckets,
                   unsigned Size) -> const std::vector<size_t> * {
    return Size < Buckets.size() ? &Buckets[Size] : nullptr;
  };

  // Note: insertions may reallocate the pools, so operands are re-indexed on
  // every call rather than held by reference across inserts.
  auto combineInts = [&](BinaryOp Op, size_t I, size_t J) {
    std::vector<Value> Values(NumTests);
    for (size_t T = 0; T != NumTests; ++T)
      Values[T] = applyBinary(Op, Ints[I].Values[T], Ints[J].Values[T]);
    insertWithValues(binary(Op, Ints[I].E, Ints[J].E), std::move(Values));
  };
  auto combineBools = [&](BinaryOp Op, size_t I, size_t J) {
    std::vector<Value> Values(NumTests);
    for (size_t T = 0; T != NumTests; ++T)
      Values[T] = applyBinary(Op, Bools[I].Values[T], Bools[J].Values[T]);
    insertWithValues(binary(Op, Bools[I].E, Bools[J].E), std::move(Values));
  };

  // Cooperative cancellation: an early return leaves BuiltSize at the last
  // fully-built size, so the pool stays usable (and resumable) with every
  // size completed so far.
  const Deadline &DL = Options.Timeout;

  for (unsigned Size = std::max(2u, BuiltSize + 1); Size <= Options.MaxSize;
       ++Size) {
    if (DL.expired())
      return;
    // Unary: operand of size Size-1.
    if (const auto *Ops = bucket(IntBySize, Size - 1)) {
      // Copy: insertions extend the pool (into this size's bucket, which we
      // must not iterate while growing).
      std::vector<size_t> Fixed = *Ops;
      for (size_t I : Fixed) {
        std::vector<Value> Values(NumTests);
        for (size_t T = 0; T != NumTests; ++T)
          Values[T] = Value::ofInt(
              wrap(0 - static_cast<uint64_t>(Ints[I].Values[T].asInt())));
        insertWithValues(neg(Ints[I].E), std::move(Values));
      }
    }
    if (const auto *Ops = bucket(BoolBySize, Size - 1)) {
      std::vector<size_t> Fixed = *Ops;
      for (size_t I : Fixed) {
        std::vector<Value> Values(NumTests);
        for (size_t T = 0; T != NumTests; ++T)
          Values[T] = Value::ofBool(!Bools[I].Values[T].asBool());
        insertWithValues(notE(Bools[I].E), std::move(Values));
      }
    }

    // Binary: |lhs| + |rhs| + 1 == Size.
    for (unsigned SizeA = 1; SizeA + 2 <= Size; ++SizeA) {
      unsigned SizeB = Size - 1 - SizeA;
      const auto *IntsA = bucket(IntBySize, SizeA);
      const auto *IntsB = bucket(IntBySize, SizeB);
      if (IntsA && IntsB) {
        std::vector<size_t> FixedA = *IntsA, FixedB = *IntsB;
        for (size_t I : FixedA) {
          if (DL.expired())
            return;
          for (size_t J : FixedB) {
            combineInts(BinaryOp::Add, I, J);
            combineInts(BinaryOp::Sub, I, J);
            combineInts(BinaryOp::Min, I, J);
            combineInts(BinaryOp::Max, I, J);
            if (Options.EnableMulDiv) {
              combineInts(BinaryOp::Mul, I, J);
              combineInts(BinaryOp::Div, I, J);
            }
            combineInts(BinaryOp::Lt, I, J);
            combineInts(BinaryOp::Le, I, J);
            combineInts(BinaryOp::Eq, I, J);
            // Gt/Ge/Ne are the swapped/negated forms; the deduplication
            // would drop them anyway, so skip the evaluation work.
          }
        }
      }
      const auto *BoolsA = bucket(BoolBySize, SizeA);
      const auto *BoolsB = bucket(BoolBySize, SizeB);
      if (BoolsA && BoolsB) {
        std::vector<size_t> FixedA = *BoolsA, FixedB = *BoolsB;
        for (size_t I : FixedA) {
          for (size_t J : FixedB) {
            combineBools(BinaryOp::And, I, J);
            combineBools(BinaryOp::Or, I, J);
          }
        }
      }
    }

    // Conditionals: |cond| + |then| + |else| + 1 == Size, int- and
    // bool-typed branches.
    if (Options.EnableIte) {
      for (unsigned SizeC = 1; SizeC + 3 <= Size; ++SizeC) {
        const auto *Conds = bucket(BoolBySize, SizeC);
        if (!Conds)
          continue;
        std::vector<size_t> FixedC = *Conds;
        for (unsigned SizeT = 1; SizeC + SizeT + 2 <= Size; ++SizeT) {
          unsigned SizeE = Size - 1 - SizeC - SizeT;
          const auto *Thens = bucket(IntBySize, SizeT);
          const auto *Elses = bucket(IntBySize, SizeE);
          if (Thens && Elses) {
            std::vector<size_t> FixedT = *Thens, FixedE = *Elses;
            for (size_t C : FixedC) {
              if (DL.expired())
                return;
              for (size_t I : FixedT) {
                for (size_t J : FixedE) {
                  std::vector<Value> Values(NumTests);
                  for (size_t T = 0; T != NumTests; ++T)
                    Values[T] = Bools[C].Values[T].asBool()
                                    ? Ints[I].Values[T]
                                    : Ints[J].Values[T];
                  insertWithValues(ite(Bools[C].E, Ints[I].E, Ints[J].E),
                                   std::move(Values));
                }
              }
            }
          }
          const auto *BThens = bucket(BoolBySize, SizeT);
          const auto *BElses = bucket(BoolBySize, SizeE);
          if (BThens && BElses) {
            std::vector<size_t> FixedT = *BThens, FixedE = *BElses;
            for (size_t C : FixedC) {
              if (DL.expired())
                return;
              for (size_t I : FixedT) {
                for (size_t J : FixedE) {
                  std::vector<Value> Values(NumTests);
                  for (size_t T = 0; T != NumTests; ++T)
                    Values[T] = Bools[C].Values[T].asBool()
                                    ? Bools[I].Values[T]
                                    : Bools[J].Values[T];
                  insertWithValues(ite(Bools[C].E, Bools[I].E, Bools[J].E),
                                   std::move(Values));
                }
              }
            }
          }
        }
      }
    }
  }
  BuiltSize = std::max(BuiltSize, Options.MaxSize);
}

std::vector<const Candidate *>
Enumerator::candidatesUpTo(Type Ty, unsigned MaxSize) const {
  std::vector<const Candidate *> Result;
  const auto &Buckets = Ty == Type::Int ? IntBySize : BoolBySize;
  const auto &Pool = candidates(Ty);
  for (unsigned Size = 1; Size <= MaxSize && Size < Buckets.size(); ++Size)
    for (size_t Index : Buckets[Size])
      Result.push_back(&Pool[Index]);
  return Result;
}

const Candidate *
Enumerator::findMatching(Type Ty, const std::vector<Value> &Target) const {
  const auto &Sigs = Ty == Type::Int ? IntSigs : BoolSigs;
  const auto &Pool = Ty == Type::Int ? Ints : Bools;
  auto It = Sigs.find(signatureOf(Target));
  if (It == Sigs.end())
    return nullptr;
  for (size_t Index : It->second)
    if (Pool[Index].Values == Target)
      return &Pool[Index];
  return nullptr;
}
