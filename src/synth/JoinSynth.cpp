//===- synth/JoinSynth.cpp - Join operator synthesis ----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "synth/JoinSynth.h"
#include "ir/ExprOps.h"
#include "normalize/Simplify.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"
#include "support/FaultInjector.h"
#include "synth/Enumerator.h"
#include "synth/Sketch.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <sstream>

using namespace parsynt;

namespace {

/// Collects the small integer constants appearing in the loop (candidates
/// for ??R fills), plus the universal 0 / 1 / -1.
std::vector<int64_t> joinConstants(const Loop &L) {
  std::set<int64_t> Result = {0, 1, -1};
  for (const Equation &Eq : L.Equations) {
    auto Collect = [&](const ExprRef &Root) {
      forEachNode(Root, [&](const ExprRef &Node) {
        if (const auto *C = dyn_cast<IntConstExpr>(Node))
          Result.insert(C->value());
      });
    };
    Collect(Eq.Update);
    Collect(Eq.Init);
  }
  return {Result.begin(), Result.end()};
}

/// Per-hole candidate pools grouped by term size for exact-weight search.
struct HolePool {
  std::vector<std::vector<const Candidate *>> BySize; // index = size
  unsigned MinSize = 0;
};

HolePool makePool(const Enumerator &E, Type Ty, unsigned MaxSize) {
  HolePool Pool;
  Pool.BySize.resize(MaxSize + 1);
  for (const Candidate *C : E.candidatesUpTo(Ty, MaxSize))
    Pool.BySize[C->E->size()].push_back(C);
  for (unsigned S = 1; S <= MaxSize; ++S) {
    if (!Pool.BySize[S].empty()) {
      Pool.MinSize = S;
      break;
    }
  }
  return Pool;
}

/// Exact-total-weight product search over the sketch's holes with early-exit
/// evaluation against the expected outputs.
class SketchSearch {
public:
  SketchSearch(const Sketch &S, std::vector<HolePool> Pools,
               const HomOracle &Oracle, size_t EquationIndex,
               uint64_t Budget, uint64_t &TotalTried, Deadline DL)
      : S(S), Pools(std::move(Pools)), Oracle(Oracle),
        EquationIndex(EquationIndex), Budget(Budget),
        TotalTried(TotalTried), DL(DL) {
    // Pre-build one mutable environment per test with hole slots installed;
    // assignments overwrite the slots in place.
    for (const JoinExample &Example : Oracle.tests()) {
      Envs.push_back(Oracle.combinedEnv(Example));
      Env &E = Envs.back();
      for (const Hole &H : S.Holes)
        E[H.Name] = H.Ty == Type::Int ? Value::ofInt(0) : Value::ofBool(false);
    }
    Slots.resize(Envs.size());
    for (size_t T = 0; T != Envs.size(); ++T)
      for (const Hole &H : S.Holes)
        Slots[T].push_back(&Envs[T].at(H.Name));
    Assignment.resize(S.Holes.size(), nullptr);
  }

  /// Runs the search; returns the filled-in join component, or null.
  ExprRef run(unsigned MaxHoleSize) {
    size_t NumHoles = S.Holes.size();
    if (NumHoles == 0) {
      // Constant sketch (degenerate); just check the body.
      return checkCurrent() ? S.Body : nullptr;
    }
    unsigned MinTotal = 0;
    for (const HolePool &P : Pools) {
      if (P.MinSize == 0)
        return nullptr; // some hole has an empty pool
      MinTotal += P.MinSize;
    }
    unsigned MaxTotal = static_cast<unsigned>(NumHoles) * MaxHoleSize;
    ExprRef Found;
    for (unsigned W = MinTotal; W <= MaxTotal && !Found && Tried < Budget;
         ++W)
      Found = assign(0, W);
    TotalTried += Tried;
    return Found;
  }

private:
  ExprRef assign(size_t HoleIdx, unsigned Remaining) {
    if (Tried >= Budget)
      return nullptr;
    // Deadline poll amortized over ~256 assignments; an expired search
    // reads as "not found" and the caller classifies via expired().
    if ((Tried & 255u) == 255u && DL.expired())
      return nullptr;
    const HolePool &Pool = Pools[HoleIdx];
    bool Last = HoleIdx + 1 == Pools.size();
    unsigned MinRest = 0;
    for (size_t I = HoleIdx + 1; I < Pools.size(); ++I)
      MinRest += Pools[I].MinSize;
    unsigned MaxSizeHere =
        Last ? Remaining : (Remaining > MinRest ? Remaining - MinRest : 0);
    for (unsigned Size = Pool.MinSize;
         Size <= MaxSizeHere && Size < Pool.BySize.size(); ++Size) {
      if (Last && Size != Remaining)
        continue;
      for (const Candidate *C : Pool.BySize[Size]) {
        Assignment[HoleIdx] = C;
        if (Last) {
          ++Tried;
          if (checkCurrent())
            return materialize();
          if (Tried >= Budget)
            return nullptr;
        } else {
          if (ExprRef Found = assign(HoleIdx + 1, Remaining - Size))
            return Found;
        }
      }
    }
    return nullptr;
  }

  bool checkCurrent() {
    const auto &Tests = Oracle.tests();
    for (size_t T = 0; T != Tests.size(); ++T) {
      for (size_t H = 0; H != Assignment.size(); ++H)
        *Slots[T][H] = Assignment[H]->Values[T];
      if (evalExpr(S.Body, Envs[T]) != Tests[T].Expected[EquationIndex])
        return false;
    }
    // Fault point: force rejection of an otherwise-accepted candidate to
    // exercise the search's failure tail (PARSYNT_FAULT=synth.reject).
    return !FaultInjector::fires("synth.reject");
  }

  ExprRef materialize() const {
    Substitution Subst;
    for (size_t H = 0; H != S.Holes.size(); ++H)
      Subst[S.Holes[H].Name] = Assignment[H]->E;
    return simplify(substitute(S.Body, Subst));
  }

  const Sketch &S;
  std::vector<HolePool> Pools;
  const HomOracle &Oracle;
  size_t EquationIndex;
  uint64_t Budget;
  uint64_t &TotalTried;
  Deadline DL;
  /// Per-search counter; Budget bounds each search independently, while
  /// TotalTried accumulates across searches for the statistics.
  uint64_t Tried = 0;
  std::vector<Env> Envs;
  std::vector<std::vector<Value *>> Slots;
  std::vector<const Candidate *> Assignment;
};

} // namespace

JoinResult parsynt::synthesizeJoin(const Loop &L,
                                   const JoinSynthOptions &Options) {
  auto StartTime = std::chrono::steady_clock::now();
  JoinResult Result;
  Result.Components.resize(L.Equations.size());
  Result.FromFallback.assign(L.Equations.size(), false);

  Span Root("synthesizeJoin", trace::Synth);
  Root.attr("loop", L.Name.empty() ? "<loop>" : L.Name);
  Root.attr("equations", uint64_t(L.Equations.size()));

  // One combined deadline governs the oracle, the enumerators, and every
  // search below; unarmed inputs reproduce the un-deadlined search exactly.
  const Deadline DL = Deadline::sooner(Options.Timeout, Options.Oracle.Timeout);
  OracleOptions OracleOpts = Options.Oracle;
  OracleOpts.Timeout = DL;

  HomOracle Oracle(L, OracleOpts);
  std::vector<int64_t> Constants = joinConstants(L);

  for (unsigned Round = 0; Round <= Options.CegisRounds; ++Round) {
    Result.Stats.CegisIterations = Round;
    Result.Stats.TestsUsed = static_cast<unsigned>(Oracle.tests().size());

    // One span per CEGIS round; assignment/candidate attributes are deltas
    // for this round, the counterexample attribute is stamped after
    // validation.
    Span RoundSpan("cegisRound", trace::Synth);
    RoundSpan.attr("round", uint64_t(Round));
    RoundSpan.attr("tests", uint64_t(Oracle.tests().size()));
    uint64_t RoundAssignmentsBase = Result.Stats.SketchAssignmentsTried;
    uint64_t RoundCandidatesBase = Result.Stats.EnumeratedCandidates;
    auto stampRound = [&](bool Solved) {
      RoundSpan.attr("solved", Solved);
      RoundSpan.attr("assignments", Result.Stats.SketchAssignmentsTried -
                                        RoundAssignmentsBase);
      RoundSpan.attr("candidates", Result.Stats.EnumeratedCandidates -
                                       RoundCandidatesBase);
    };

    // Test environments for enumeration: the combined envs of all tests.
    std::vector<Env> CombEnvs;
    CombEnvs.reserve(Oracle.tests().size());
    for (const JoinExample &Example : Oracle.tests())
      CombEnvs.push_back(Oracle.combinedEnv(Example));

    // Left-right and right-only candidate pools. Equations restricted by
    // the dependence guidance draw from a pool over only their closure's
    // split values; unrestricted equations share the full pool. Pools are
    // initially sized for the sketch tiers and grown lazily to FreeMaxSize
    // only if some equation needs the free-grammar fallback.
    unsigned MaxLR = 1;
    unsigned MaxR = 1;
    for (const auto &[SizeLR, SizeR] : Options.SketchTiers) {
      MaxLR = std::max(MaxLR, SizeLR);
      MaxR = std::max(MaxR, SizeR);
    }
    if (!Options.UseSketch)
      MaxLR = std::max(MaxLR, Options.FreeMaxSize);
    MetricsRegistry::global().gauge("synth.sketch.max_lr").set(MaxLR);
    MetricsRegistry::global().gauge("synth.sketch.max_r").set(MaxR);

    struct PoolGroup {
      Enumerator ELR;
      Enumerator ER;
      PoolGroup(const std::vector<Env> &Envs, unsigned MaxLR, unsigned MaxR,
                const Deadline &DL)
          : ELR(Envs, [&] {
              EnumeratorOptions O;
              O.MaxSize = MaxLR;
              O.Timeout = DL;
              return O;
            }()),
            ER(Envs, [&] {
              EnumeratorOptions O;
              O.MaxSize = MaxR;
              O.Timeout = DL;
              return O;
            }()) {}
    };
    // Allowed-set signature -> pool pair; "*" is the unrestricted group.
    std::map<std::string, std::unique_ptr<PoolGroup>> Groups;
    auto getGroup = [&](const std::set<std::string> *Allowed) -> PoolGroup & {
      std::string Key = "*";
      if (Allowed) {
        Key.clear();
        for (const std::string &Name : *Allowed)
          Key += Name + ",";
      }
      auto It = Groups.find(Key);
      if (It != Groups.end())
        return *It->second;
      auto G = std::make_unique<PoolGroup>(CombEnvs, MaxLR, MaxR, DL);
      for (const Equation &Eq : L.Equations) {
        if (Allowed && !Allowed->count(Eq.Name))
          continue;
        G->ELR.addLeaf(inputVar(Eq.Name + "_l", Eq.Ty));
        G->ELR.addLeaf(inputVar(Eq.Name + "_r", Eq.Ty));
        G->ER.addLeaf(inputVar(Eq.Name + "_r", Eq.Ty));
      }
      for (const ParamDecl &P : L.Params) {
        G->ELR.addLeaf(inputVar(P.Name, P.Ty));
        G->ER.addLeaf(inputVar(P.Name, P.Ty));
      }
      for (int64_t C : Constants) {
        G->ELR.addLeaf(intConst(C));
        G->ER.addLeaf(intConst(C));
      }
      G->ELR.addLeaf(boolConst(true));
      G->ELR.addLeaf(boolConst(false));
      G->ER.addLeaf(boolConst(true));
      G->ER.addLeaf(boolConst(false));
      G->ELR.run();
      G->ER.run();
      Result.Stats.EnumeratedCandidates +=
          G->ELR.totalCandidates() + G->ER.totalCandidates();
      return *Groups.emplace(Key, std::move(G)).first->second;
    };

    // Solve each equation modularly, SCC-by-SCC in dependence order when
    // guidance provides one.
    bool AllSolved = true;
    for (size_t Pos = 0; Pos != L.Equations.size(); ++Pos) {
      size_t I = Pos < Options.Guidance.Order.size()
                     ? Options.Guidance.Order[Pos]
                     : Pos;
      const Equation &Eq = L.Equations[I];
      ExprRef Component;
      bool Fallback = false;

      Span EqSpan("equation", trace::Synth);
      EqSpan.attr("name", Eq.Name);

      if (DL.expired()) {
        AllSolved = false;
        Result.Failure = {FailureKind::Timeout,
                          "join synthesis deadline expired before solving "
                          "state variable '" +
                              Eq.Name + "'"};
        break;
      }

      // Trivially-homomorphic variables: accept the dependence-analysis
      // seed without searching if it matches every current test. (CEGIS
      // still validates the assembled join on fresh inputs, so a wrong
      // seed costs one round and then falls back to the search.)
      auto SeedIt = Options.Guidance.Seeds.find(Eq.Name);
      if (SeedIt != Options.Guidance.Seeds.end() && SeedIt->second) {
        bool Matches = true;
        const auto &Tests = Oracle.tests();
        for (size_t T = 0; T != Tests.size() && Matches; ++T)
          Matches = evalExpr(SeedIt->second, CombEnvs[T]) ==
                    Tests[T].Expected[I];
        // Fault point: refuse a matching seed so the equation exercises the
        // full search path (PARSYNT_FAULT=synth.reject).
        if (Matches && !FaultInjector::fires("synth.reject")) {
          Component = SeedIt->second;
          ++Result.Stats.SeedsAccepted;
          Result.Components[I] = Component;
          Result.FromFallback[I] = false;
          EqSpan.attr("seeded", true);
          continue;
        }
      }

      // Only pre-search a restricted pool when the restriction genuinely
      // shrinks the space (at most half the variables): a near-full
      // "restriction" costs almost a full failed search before the
      // unrestricted retry, which is pure waste on the hard equations.
      const std::set<std::string> *Allowed = nullptr;
      auto AllowIt = Options.Guidance.AllowedVars.find(Eq.Name);
      if (AllowIt != Options.Guidance.AllowedVars.end() &&
          AllowIt->second.size() * 2 <= L.Equations.size())
        Allowed = &AllowIt->second;

      auto solveWith = [&](PoolGroup &G, bool Restricted) -> ExprRef {
        Fallback = false;
        Enumerator &ELR = G.ELR;
        Enumerator &ER = G.ER;
        ExprRef Found;

        auto searchSketch = [&](const Sketch &S) -> ExprRef {
          for (const auto &[SizeLR, SizeR] : Options.SketchTiers) {
            std::vector<HolePool> Pools;
            Pools.reserve(S.Holes.size());
            for (const Hole &H : S.Holes)
              Pools.push_back(H.RightOnly ? makePool(ER, H.Ty, SizeR)
                                          : makePool(ELR, H.Ty, SizeLR));
            SketchSearch Search(S, std::move(Pools), Oracle, I,
                                Options.ProductBudget,
                                Result.Stats.SketchAssignmentsTried, DL);
            if (ExprRef F = Search.run(std::max(SizeLR, SizeR)))
              return F;
            if (DL.expired())
              return nullptr;
          }
          return nullptr;
        };

        if (Options.UseSketch)
          Found = searchSketch(compileSketch(Eq));

        if (!Found && Options.UseSketch && Eq.Ty == Type::Int) {
          // Additive-correction sketch: v_l + v_r + ite(??LR, ??R, ??R).
          // Counters over concatenations are almost-additive with a
          // boundary correction (count-1's block merge at the seam); this
          // variant reaches those joins with a three-hole search.
          Sketch Corr;
          Corr.Holes.push_back({"?c0", Type::Bool, /*RightOnly=*/false});
          Corr.Holes.push_back({"?c1", Type::Int, /*RightOnly=*/true});
          Corr.Holes.push_back({"?c2", Type::Int, /*RightOnly=*/true});
          Corr.Body = add(add(inputVar(Eq.Name + "_l", Type::Int),
                              inputVar(Eq.Name + "_r", Type::Int)),
                          ite(inputVar("?c0", Type::Bool),
                              inputVar("?c1", Type::Int),
                              inputVar("?c2", Type::Int)));
          Found = searchSketch(Corr);
        }

        // The free-grammar fallback only runs unrestricted: growing and
        // sweeping a pool to FreeMaxSize is the expensive tail of a failed
        // search, and paying it twice (restricted, then again on the
        // unrestricted retry) would double the cost of exactly the hard
        // cases. The dependence restriction pays off in the sketch phase,
        // where smaller hole pools shrink the assignment product.
        if (!Found && Options.AllowFallback && !Restricted) {
          // Free-grammar search: the expected output vector indexes
          // straight into the enumerator's observational classes. Grow the
          // pool to the fallback bound on first use.
          if (ELR.options().MaxSize < Options.FreeMaxSize) {
            size_t Before = ELR.totalCandidates();
            ELR.options().MaxSize = Options.FreeMaxSize;
            ELR.run();
            Result.Stats.EnumeratedCandidates +=
                ELR.totalCandidates() - Before;
          }
          std::vector<Value> Target;
          Target.reserve(Oracle.tests().size());
          for (const JoinExample &Example : Oracle.tests())
            Target.push_back(Example.Expected[I]);
          if (const Candidate *C = ELR.findMatching(Eq.Ty, Target)) {
            // Fault point: reject the free-grammar match
            // (PARSYNT_FAULT=synth.reject).
            if (!FaultInjector::fires("synth.reject")) {
              Found = C->E;
              Fallback = true;
            }
          }
        }
        return Found;
      };

      if (Allowed)
        Component = solveWith(getGroup(Allowed), /*Restricted=*/true);
      if (!Component) {
        // The dependence restriction is a heuristic; never let it change
        // what is synthesizable. Retry over the full variable set.
        if (Allowed) {
          ++Result.Stats.RestrictionRetries;
          EqSpan.attr("restriction_retry", true);
        }
        Component = solveWith(getGroup(nullptr), /*Restricted=*/false);
      }

      if (!Component && Options.UseSketch && Options.AllowEmptyGuard) {
        Enumerator &ELR = getGroup(nullptr).ELR;
        Enumerator &ER = getGroup(nullptr).ER;
        // Last resort: C(E) wrapped in an "empty right chunk" guard —
        // ite(<right state at init>, v_l, C(E)) — the homomorphism base
        // case fE(x • []) = fE(x) made syntactic. Joins that must
        // special-case an empty divide (e.g. line-sight's visibility flag,
        // is-sorted's boundary test) live here. The guard hole draws from a
        // dedicated tiny pool: "w_r == <literal init>" for every state
        // variable with a literal initial value.
        std::vector<Candidate> GuardPool;
        for (const Equation &W : L.Equations) {
          if (!isa<IntConstExpr>(W.Init) && !isa<BoolConstExpr>(W.Init))
            continue;
          ExprRef Guard = eq(inputVar(W.Name + "_r", W.Ty), W.Init);
          Candidate C;
          C.E = Guard;
          C.Values.reserve(CombEnvs.size());
          for (const Env &TestEnv : CombEnvs)
            C.Values.push_back(evalExpr(Guard, TestEnv));
          GuardPool.push_back(std::move(C));
        }
        if (!GuardPool.empty()) {
          Sketch Guarded = compileSketch(Eq);
          std::string GuardName =
              "?g" + std::to_string(Guarded.Holes.size());
          size_t GuardIndex = Guarded.Holes.size();
          Guarded.Holes.push_back({GuardName, Type::Bool,
                                   /*RightOnly=*/true});
          Guarded.Body = ite(inputVar(GuardName, Type::Bool),
                             inputVar(Eq.Name + "_l", Eq.Ty), Guarded.Body);
          for (const auto &[SizeLR, SizeR] : Options.SketchTiers) {
            std::vector<HolePool> Pools;
            Pools.reserve(Guarded.Holes.size());
            for (size_t H = 0; H != Guarded.Holes.size(); ++H) {
              if (H == GuardIndex) {
                HolePool Pool;
                Pool.BySize.resize(4);
                Pool.MinSize = 3; // eq(var, const) has term size 3
                for (const Candidate &C : GuardPool)
                  Pool.BySize[3].push_back(&C);
                Pools.push_back(std::move(Pool));
                continue;
              }
              const Hole &Ho = Guarded.Holes[H];
              Pools.push_back(Ho.RightOnly ? makePool(ER, Ho.Ty, SizeR)
                                           : makePool(ELR, Ho.Ty, SizeLR));
            }
            SketchSearch Search(Guarded, std::move(Pools), Oracle, I,
                                Options.ProductBudget,
                                Result.Stats.SketchAssignmentsTried, DL);
            Component = Search.run(std::max({SizeLR, SizeR, 3u}));
            if (Component || DL.expired())
              break;
          }
        }
      }

      if (!Component) {
        EqSpan.attr("solved", false);
        AllSolved = false;
        if (DL.expired()) {
          // FailedEquation stays empty: a timed-out equation is not
          // evidence of an unjoinable auxiliary, so the pipeline must not
          // drop it.
          Result.Failure = {FailureKind::Timeout,
                            "join synthesis deadline expired while solving "
                            "state variable '" +
                                Eq.Name + "'"};
        } else {
          Result.Failure = {FailureKind::NotHomomorphic,
                            "no join component found for state variable '" +
                                Eq.Name + "'"};
          Result.FailedEquation = Eq.Name;
        }
        break;
      }
      Result.Components[I] = Component;
      Result.FromFallback[I] = Fallback;
      EqSpan.attr("fallback", Fallback);
    }

    if (!AllSolved) {
      stampRound(false);
      Result.Success = false;
      break;
    }

    // CEGIS validation on fresh inputs.
    auto Cex = Oracle.findCounterexample(Result.Components,
                                         Options.VerifyRounds);
    stampRound(true);
    RoundSpan.attr("counterexample", Cex.has_value());
    if (!Cex) {
      // Soundness: a timed-out validation also reports "no counterexample
      // found" — never promote that to Success.
      if (DL.expired()) {
        Result.Success = false;
        Result.Failure = {FailureKind::Timeout,
                          "join synthesis deadline expired during CEGIS "
                          "validation of the assembled join"};
        break;
      }
      Result.Success = true;
      Result.Failure.clear();
      break;
    }
    if (Round == Options.CegisRounds) {
      Result.Success = false;
      // Name the still-disagreeing equation: evaluate each component on the
      // final counterexample, like the per-variable failure path does.
      std::string Culprit;
      Env CexEnv = Oracle.combinedEnv(*Cex);
      for (size_t I = 0; I != Result.Components.size(); ++I) {
        if (Result.Components[I] &&
            evalExpr(Result.Components[I], CexEnv) != Cex->Expected[I]) {
          Culprit = L.Equations[I].Name;
          break;
        }
      }
      std::ostringstream OS;
      OS << "CEGIS budget exhausted after " << Options.CegisRounds
         << " rounds";
      if (!Culprit.empty())
        OS << ": the join component for state variable '" << Culprit
           << "' still disagrees with a fresh counterexample";
      OS << " (" << Result.Stats.SketchAssignmentsTried
         << " sketch assignments tried, budget " << Options.ProductBudget
         << " per search, " << Oracle.tests().size() << " tests)";
      Result.Failure = {FailureKind::BudgetExhausted, OS.str()};
      break;
    }
    Oracle.addTest(std::move(*Cex));
  }

  Result.Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();

  Root.attr("success", Result.Success);
  Root.attr("rounds", uint64_t(Result.Stats.CegisIterations));
  Root.attr("assignments", Result.Stats.SketchAssignmentsTried);
  Root.attr("seeds_accepted", uint64_t(Result.Stats.SeedsAccepted));

  // Metrics are flushed once per call (accumulated in Stats during the
  // search), keeping the hot search loops free of shared-counter traffic.
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("synth.calls").inc();
  // CegisIterations is zero-based (0 = solved on the first round); the
  // counter records rounds actually executed.
  M.counter("synth.cegis.rounds").add(Result.Stats.CegisIterations + 1);
  M.counter("synth.sketch.assignments")
      .add(Result.Stats.SketchAssignmentsTried);
  M.counter("synth.candidates.enumerated")
      .add(Result.Stats.EnumeratedCandidates);
  M.counter("synth.seeds.accepted").add(Result.Stats.SeedsAccepted);
  M.counter("synth.restriction.retries")
      .add(Result.Stats.RestrictionRetries);
  M.histogram("synth.join.millis")
      .observe(static_cast<uint64_t>(Result.Stats.Seconds * 1e3));
  return Result;
}

std::string parsynt::joinToString(const Loop &L,
                                  const std::vector<ExprRef> &Components) {
  std::ostringstream OS;
  for (size_t I = 0; I != Components.size(); ++I) {
    OS << L.Equations[I].Name << " = "
       << (Components[I] ? exprToString(Components[I]) : "<unsolved>")
       << "\n";
  }
  return OS.str();
}
