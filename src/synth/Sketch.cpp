//===- synth/Sketch.cpp - Sketch compilation C(E) -------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "synth/Sketch.h"
#include "ir/ExprOps.h"

using namespace parsynt;

namespace {

class SketchBuilder {
public:
  explicit SketchBuilder(std::vector<Hole> &Holes) : Holes(Holes) {}

  ExprRef compile(const ExprRef &E) {
    switch (E->kind()) {
    case ExprKind::IntConst:
    case ExprKind::BoolConst:
      return makeHole(E->type(), /*RightOnly=*/true);
    case ExprKind::Var: {
      const auto *V = cast<VarExpr>(E);
      return makeHole(V->type(),
                      /*RightOnly=*/V->varClass() != VarClass::State);
    }
    case ExprKind::SeqAccess:
      return makeHole(E->type(), /*RightOnly=*/true);
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      return UnaryExpr::get(U->op(), compile(U->operand()));
    }
    case ExprKind::Binary: {
      // Explicit sequencing: holes are numbered left to right regardless of
      // the compiler's argument evaluation order.
      const auto *B = cast<BinaryExpr>(E);
      ExprRef Lhs = compile(B->lhs());
      ExprRef Rhs = compile(B->rhs());
      return BinaryExpr::get(B->op(), std::move(Lhs), std::move(Rhs));
    }
    case ExprKind::Ite: {
      const auto *I = cast<IteExpr>(E);
      ExprRef Cond = compile(I->cond());
      ExprRef Then = compile(I->thenExpr());
      ExprRef Else = compile(I->elseExpr());
      return IteExpr::get(std::move(Cond), std::move(Then), std::move(Else));
    }
    }
    return E;
  }

private:
  ExprRef makeHole(Type Ty, bool RightOnly) {
    std::string Name = "?h" + std::to_string(Holes.size());
    Holes.push_back({Name, Ty, RightOnly});
    return inputVar(Name, Ty);
  }

  std::vector<Hole> &Holes;
};

} // namespace

Sketch parsynt::compileSketch(const Equation &Eq) {
  Sketch Result;
  SketchBuilder Builder(Result.Holes);
  Result.Body = Builder.compile(Eq.Update);
  return Result;
}

std::string parsynt::sketchToString(const Sketch &S) {
  Substitution Subst;
  for (const Hole &H : S.Holes)
    Subst[H.Name] = inputVar(H.RightOnly ? "??R" : "??LR", H.Ty);
  return exprToString(substitute(S.Body, Subst));
}
