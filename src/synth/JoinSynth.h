//===- synth/JoinSynth.h - Join operator synthesis --------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntax-guided synthesis of join operators (paper Section 4): per state
/// variable, the sketch C(E) is searched by filling its typed ??LR / ??R
/// holes with enumerated grammar expressions in increasing total weight;
/// when the sketch space is exhausted the search is relaxed to the free
/// Figure-4 grammar (the "un-constrain the compiled sketch" fallback of
/// Sections 4.3/6.3). An outer CEGIS loop re-validates assembled joins on
/// fresh random inputs and folds counterexamples back into the test set.
///
/// Joins are synthesized per state variable (modularly), mirroring the
/// modular per-variable proof decomposition of Section 7.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SYNTH_JOINSYNTH_H
#define PARSYNT_SYNTH_JOINSYNTH_H

#include "synth/HomOracle.h"
#include "support/Failure.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace parsynt {

/// Dependence-derived guidance computed by the pipeline (see
/// analysis/DependenceGraph.h). All fields are optional; an empty guidance
/// reproduces the unguided search exactly.
struct JoinGuidance {
  /// Equation indices in synthesis order — SCC-by-SCC, dependencies first.
  /// Empty: natural equation order.
  std::vector<size_t> Order;
  /// Per equation: a ready-made join component (trivially-homomorphic
  /// folds). A seed passing the oracle's tests is accepted without any
  /// search; a failing seed falls back to the normal search.
  std::map<std::string, ExprRef> Seeds;
  /// Per equation: the state variables whose split values its search may
  /// reference (the variable's dependence closure plus auxiliaries).
  /// Equations without an entry search over all variables. If a restricted
  /// search fails, it is retried unrestricted, so guidance never changes
  /// what is synthesizable — only how fast.
  std::map<std::string, std::set<std::string>> AllowedVars;
};

/// Tuning for the synthesis search.
struct JoinSynthOptions {
  /// Successive (LR-hole size, R-hole size) tiers; realizes the paper's
  /// gradually-increased expression depth d.
  std::vector<std::pair<unsigned, unsigned>> SketchTiers = {
      {1, 1}, {3, 2}, {3, 3}, {5, 3}};
  /// Term-size bound for the free-grammar fallback.
  unsigned FreeMaxSize = 7;
  /// Cap on sketch hole assignments evaluated per equation per tier.
  uint64_t ProductBudget = 2000000;
  /// Maximum CEGIS iterations (counterexample rounds).
  unsigned CegisRounds = 10;
  /// Random rounds of final validation.
  unsigned VerifyRounds = 400;
  bool UseSketch = true;     ///< ablation: disable the C(E) sketch
  bool AllowFallback = true; ///< ablation: disable the free fallback
  /// Enable the "empty right chunk" guarded sketch variant (an extension
  /// beyond the paper's C(E); the pipeline enables it only for lifted
  /// loops so the Table-1 "parallelizable in original form" judgement
  /// matches the paper's sketch space).
  bool AllowEmptyGuard = true;
  /// Dependence-derived ordering, seeds, and variable restrictions.
  JoinGuidance Guidance;
  OracleOptions Oracle;
  /// Cooperative cancellation for the whole synthesis call (also handed to
  /// the oracle). On expiry the search unwinds with a Timeout failure.
  Deadline Timeout;
};

/// Statistics for Table 1 and the ablation benches.
struct JoinStats {
  uint64_t SketchAssignmentsTried = 0;
  uint64_t EnumeratedCandidates = 0;
  unsigned CegisIterations = 0;
  unsigned TestsUsed = 0;
  /// Equations whose join was accepted from a dependence-analysis seed
  /// without running any search.
  unsigned SeedsAccepted = 0;
  /// Equations whose dependence-restricted search failed and was retried
  /// over the full variable set.
  unsigned RestrictionRetries = 0;
  double Seconds = 0.0;
};

/// The synthesized join: one expression per equation over the variables
/// v_l / v_r (plus loop parameters).
struct JoinResult {
  bool Success = false;
  std::vector<ExprRef> Components;
  std::vector<bool> FromFallback; ///< per equation: free grammar used
  JoinStats Stats;
  /// Structured failure (NotHomomorphic / BudgetExhausted / Timeout).
  FailureInfo Failure;
  /// Name of the first state variable no component was found for (empty on
  /// success, CEGIS exhaustion, or timeout). The pipeline uses this to drop
  /// unjoinable junk auxiliaries.
  std::string FailedEquation;
};

/// Synthesizes a join for \p L. On failure (no join found at any tier —
/// evidence the loop needs lifting), Success is false and Failure explains.
JoinResult synthesizeJoin(const Loop &L, const JoinSynthOptions &Options = {});

/// Renders the join as per-variable update lines.
std::string joinToString(const Loop &L, const std::vector<ExprRef> &Components);

} // namespace parsynt

#endif // PARSYNT_SYNTH_JOINSYNTH_H
