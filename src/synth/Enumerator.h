//===- synth/Enumerator.h - Bottom-up expression enumeration ----*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed bottom-up enumeration of the Figure-4 expression grammar with
/// observational-equivalence pruning: two candidate expressions that agree
/// on every test environment are interchangeable for the bounded synthesis
/// oracle, so only the smaller is kept. Candidates are produced in order of
/// term size, which realizes the paper's "expression depth d is gradually
/// increased until a solution is found" as iterative deepening on size.
///
/// The enumerator fills three roles: the per-hole candidate pools of the
/// sketch search, the free-grammar fallback of Section 6.3, and the
/// accumulator-update search of the lifting algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SYNTH_ENUMERATOR_H
#define PARSYNT_SYNTH_ENUMERATOR_H

#include "interp/Interp.h"
#include "ir/Expr.h"
#include "support/Deadline.h"

#include <unordered_map>
#include <vector>

namespace parsynt {

/// An enumerated expression with its evaluation on every test environment.
struct Candidate {
  ExprRef E;
  std::vector<Value> Values;
};

/// Knobs bounding the enumeration.
struct EnumeratorOptions {
  /// Largest term size to build.
  unsigned MaxSize = 7;
  /// Cap on retained candidates per type (observational classes).
  size_t MaxPerType = 20000;
  /// Whether to build ite terms (they cube the combination count).
  bool EnableIte = true;
  /// Whether to build * and / terms (rarely useful, often noisy).
  bool EnableMulDiv = true;
  /// Cooperative cancellation: run() stops early (keeping what was built)
  /// once this expires. Unarmed by default.
  Deadline Timeout;
};

/// Bottom-up enumerator over a fixed set of test environments.
class Enumerator {
public:
  Enumerator(std::vector<Env> TestEnvs, EnumeratorOptions Options = {});

  /// Registers a leaf (variable or constant; any expression works). Leaves
  /// count with their real term size.
  void addLeaf(const ExprRef &E);

  /// Builds all candidates of size <= Options.MaxSize. Safe to call again
  /// after raising MaxSize via options(); already-built sizes are kept.
  /// Stops early when Options.Timeout expires: the pool stays usable with
  /// whatever sizes were completed.
  void run();

  const std::vector<Candidate> &candidates(Type Ty) const {
    return Ty == Type::Int ? Ints : Bools;
  }

  /// Candidates of the given type with term size <= MaxSize, in size order.
  std::vector<const Candidate *> candidatesUpTo(Type Ty,
                                                unsigned MaxSize) const;

  /// Finds a candidate observationally equal to \p Target values (type
  /// \p Ty), or null.
  const Candidate *findMatching(Type Ty,
                                const std::vector<Value> &Target) const;

  EnumeratorOptions &options() { return Options; }
  const std::vector<Env> &testEnvs() const { return Envs; }
  size_t totalCandidates() const { return Ints.size() + Bools.size(); }

private:
  /// Evaluates and inserts \p E unless an observational twin exists.
  bool insert(const ExprRef &E);
  /// Inserts \p E with a precomputed value vector (combination fast path).
  bool insertWithValues(const ExprRef &E, std::vector<Value> Values);
  uint64_t signatureOf(const std::vector<Value> &Values) const;

  std::vector<Env> Envs;
  EnumeratorOptions Options;
  std::vector<Candidate> Ints, Bools;
  /// Value-vector signature -> candidate indices (per type) for dedup.
  std::unordered_map<uint64_t, std::vector<size_t>> IntSigs, BoolSigs;
  /// Candidate indices bucketed by term size (per type).
  std::vector<std::vector<size_t>> IntBySize, BoolBySize;
  /// Largest size already built.
  unsigned BuiltSize = 0;
};

} // namespace parsynt

#endif // PARSYNT_SYNTH_ENUMERATOR_H
