//===- synth/HomOracle.h - Bounded homomorphism oracle ----------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded correctness specification of paper Section 4.2: a join ⊙ is
/// accepted when fE(x • y) == fE(x) ⊙ fE(y) on all test sequences x, y of
/// bounded length. Where the paper discharges this with a solver over
/// symbolic bounded inputs, we evaluate it over an exhaustive small-domain
/// enumeration plus randomized wide draws, and re-check synthesized joins on
/// fresh inputs (the CEGIS counterexample loop). General correctness is then
/// established by the Section-7 proof machinery, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SYNTH_HOMORACLE_H
#define PARSYNT_SYNTH_HOMORACLE_H

#include "interp/Interp.h"
#include "ir/Loop.h"
#include "support/Deadline.h"
#include "support/Random.h"

#include <optional>
#include <vector>

namespace parsynt {

/// One point of the bounded homomorphism specification.
struct JoinExample {
  StateTuple Left;     ///< fE(x)
  StateTuple Right;    ///< fE(y)
  StateTuple Expected; ///< fE(x • y)
  Env Params;          ///< shared parameter bindings
  /// The witnessing sequences, kept for diagnostics and counterexample
  /// reporting (name -> contents; x and y per sequence).
  SeqEnv LeftSeqs, RightSeqs;
};

/// Options bounding the specification.
struct OracleOptions {
  /// Max chunk length in the exhaustive phase.
  unsigned ExhaustiveLen = 2;
  /// Element values used in the exhaustive phase (beyond loop constants).
  std::vector<int64_t> ExhaustiveValues = {-1, 0, 1};
  /// Number of random tests in the initial set.
  unsigned RandomTests = 64;
  /// Max chunk length for random tests.
  unsigned RandomLen = 5;
  /// Cap on the initial test count.
  size_t MaxTests = 300;
  uint64_t Seed = 0x5eed;
  /// Cooperative cancellation: test-set construction and counterexample
  /// search stop early when this expires (fewer tests is sound — the
  /// bounded spec just gets weaker and the proof gate still decides).
  Deadline Timeout;
};

/// Builds and extends the test set, and verifies candidate joins.
class HomOracle {
public:
  HomOracle(const Loop &L, OracleOptions Options = {});

  const Loop &loop() const { return L; }
  const std::vector<JoinExample> &tests() const { return Tests; }

  /// The element values sequences are drawn from: small integers plus every
  /// constant appearing in the loop (and off-by-one neighbours), so that
  /// character-comparison benchmarks exercise both branches.
  const std::vector<int64_t> &elementPool() const { return Pool; }

  /// Builds the combined environment a join expression is evaluated in:
  /// v_l / v_r for every state variable, plus parameters.
  Env combinedEnv(const JoinExample &Example) const;

  /// Evaluates component \p EquationIndex of candidate \p Join on every
  /// test; returns the index of the first failing test, or nullopt.
  std::optional<size_t> firstFailure(const ExprRef &JoinComponent,
                                     size_t EquationIndex) const;

  /// Random search for a counterexample to the whole join on fresh inputs
  /// (longer sequences and wider values than the synthesis tests). Returns
  /// the failing example, or nullopt if all \p Rounds pass.
  std::optional<JoinExample>
  findCounterexample(const std::vector<ExprRef> &Join, unsigned Rounds = 400);

  /// Appends a (counter)example to the test set.
  void addTest(JoinExample Example);

  /// Creates one random example with the given chunk-length bound and
  /// element pool.
  JoinExample randomExample(unsigned MaxLen, const std::vector<int64_t> &From,
                            Rng &R) const;

private:
  void buildInitialTests();
  JoinExample makeExample(const SeqEnv &LeftSeqs, const SeqEnv &RightSeqs,
                          const Env &Params) const;

  const Loop &L;
  OracleOptions Options;
  std::vector<int64_t> Pool;
  /// Loop-comparison constants only (see the constructor): used for the
  /// dense-pattern half of the random tests.
  std::vector<int64_t> Focused;
  std::vector<JoinExample> Tests;
  Rng R;
};

} // namespace parsynt

#endif // PARSYNT_SYNTH_HOMORACLE_H
