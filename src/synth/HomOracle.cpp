//===- synth/HomOracle.cpp - Bounded homomorphism oracle ------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "synth/HomOracle.h"
#include "ir/ExprOps.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"

#include <algorithm>
#include <set>

using namespace parsynt;

namespace {

/// Concatenates the per-sequence contents of two chunks.
SeqEnv concatSeqs(const SeqEnv &A, const SeqEnv &B) {
  SeqEnv Result = A;
  for (const auto &[Name, Values] : B) {
    auto &Out = Result[Name];
    Out.insert(Out.end(), Values.begin(), Values.end());
  }
  return Result;
}

} // namespace

HomOracle::HomOracle(const Loop &L, OracleOptions Options)
    : L(L), Options(Options), R(Options.Seed) {
  // Element pool: the option values plus every integer constant appearing in
  // an update (and its neighbours), so equality tests against characters or
  // thresholds are exercised on both sides.
  std::set<int64_t> PoolSet(Options.ExhaustiveValues.begin(),
                            Options.ExhaustiveValues.end());
  for (const Equation &Eq : L.Equations) {
    forEachNode(Eq.Update, [&](const ExprRef &Node) {
      if (const auto *C = dyn_cast<IntConstExpr>(Node)) {
        // Sentinels and huge constants are not plausible element values.
        if (std::abs(C->value()) > 1000)
          return;
        PoolSet.insert(C->value());
        PoolSet.insert(C->value() + 1);
        PoolSet.insert(C->value() - 1);
      }
    });
  }
  Pool.assign(PoolSet.begin(), PoolSet.end());
  // The focused pool: exactly the constants the loop compares against
  // (plus 0/1). Bit- and character-structured benchmarks need dense
  // patterns (adjacent blocks of 1's, nested parentheses) that a diffuse
  // pool produces too rarely to refute near-miss joins.
  std::set<int64_t> FocusedSet = {0, 1};
  for (const Equation &Eq : L.Equations) {
    forEachNode(Eq.Update, [&](const ExprRef &Node) {
      if (const auto *C = dyn_cast<IntConstExpr>(Node))
        if (std::abs(C->value()) <= 1000)
          FocusedSet.insert(C->value());
    });
  }
  Focused.assign(FocusedSet.begin(), FocusedSet.end());
  buildInitialTests();
}

JoinExample HomOracle::makeExample(const SeqEnv &LeftSeqs,
                                   const SeqEnv &RightSeqs,
                                   const Env &Params) const {
  JoinExample Example;
  Example.LeftSeqs = LeftSeqs;
  Example.RightSeqs = RightSeqs;
  Example.Params = Params;
  Example.Left = runLoop(L, LeftSeqs, Params);
  Example.Right = runLoop(L, RightSeqs, Params);
  Example.Expected = runLoop(L, concatSeqs(LeftSeqs, RightSeqs), Params);
  return Example;
}

void HomOracle::buildInitialTests() {
  Span TestSpan("buildInitialTests", trace::Oracle);
  struct TestFinisher {
    Span &S;
    const std::vector<JoinExample> &Tests;
    ~TestFinisher() { S.attr("tests", uint64_t(Tests.size())); }
  } Finish{TestSpan, Tests};
  // Parameter bindings: a few fixed draws reused across the exhaustive part
  // so parameterized loops (poly) see more than one evaluation point.
  std::vector<Env> ParamDraws;
  for (int Draw = 0; Draw != 3; ++Draw) {
    Env P;
    for (const ParamDecl &Param : L.Params)
      P[Param.Name] = Param.Ty == Type::Int
                          ? Value::ofInt(Draw == 0 ? 2 : R.intIn(-3, 3))
                          : Value::ofBool(R.flip());
    ParamDraws.push_back(std::move(P));
    if (L.Params.empty())
      break;
  }

  // Exhaustive phase: every pair of chunks with length <= ExhaustiveLen over
  // a reduced pool (at most 3 values to keep the product bounded).
  std::vector<int64_t> Reduced = Pool;
  if (Reduced.size() > 3) {
    // Keep the extremes and a middle value; loop constants live at the
    // extremes for character benchmarks.
    std::vector<int64_t> Picked = {Reduced.front(),
                                   Reduced[Reduced.size() / 2],
                                   Reduced.back()};
    Reduced = Picked;
  }

  // All chunks over Reduced with length <= ExhaustiveLen.
  std::vector<std::vector<int64_t>> Chunks;
  Chunks.push_back({});
  size_t TierBegin = 0;
  for (unsigned Len = 1; Len <= Options.ExhaustiveLen; ++Len) {
    size_t TierEnd = Chunks.size();
    for (size_t I = TierBegin; I != TierEnd; ++I) {
      for (int64_t V : Reduced) {
        std::vector<int64_t> Next = Chunks[I];
        Next.push_back(V);
        Chunks.push_back(std::move(Next));
      }
    }
    TierBegin = TierEnd;
  }

  auto chunkToSeqs = [&](const std::vector<int64_t> &Chunk) {
    SeqEnv Seqs;
    for (const SeqDecl &S : L.Sequences) {
      std::vector<Value> Values;
      Values.reserve(Chunk.size());
      for (int64_t V : Chunk)
        Values.push_back(Value::ofInt(V));
      Seqs[S.Name] = std::move(Values);
    }
    return Seqs;
  };

  Env P0 = ParamDraws.empty() ? Env() : ParamDraws.front();
  // Stopping the test-set build early on deadline expiry is sound: the
  // bounded specification just gets weaker, and accepted joins still face
  // the CEGIS re-validation and the proof gate.
  for (const auto &LeftChunk : Chunks) {
    if (Options.Timeout.expired())
      break;
    for (const auto &RightChunk : Chunks) {
      if (Tests.size() >= Options.MaxTests)
        break;
      Tests.push_back(
          makeExample(chunkToSeqs(LeftChunk), chunkToSeqs(RightChunk), P0));
    }
  }

  if (Options.Timeout.expired())
    return;

  // Random phase: longer chunks, full pool, varied parameters, and (for
  // multi-sequence loops) per-sequence independent contents.
  for (unsigned T = 0; T != Options.RandomTests && Tests.size() <
                                                       Options.MaxTests;
       ++T) {
    if (Options.Timeout.expired())
      return;
    Env P = ParamDraws.empty() ? Env()
                               : ParamDraws[R.index(ParamDraws.size())];
    // Alternate the diffuse and the focused pool; focused draws use longer
    // chunks so multi-block patterns appear.
    bool UseFocused = T % 2 == 1;
    JoinExample Example =
        randomExample(UseFocused ? Options.RandomLen + 3 : Options.RandomLen,
                      UseFocused ? Focused : Pool, R);
    Example.Params = P;
    // Recompute with the chosen parameters.
    Tests.push_back(makeExample(Example.LeftSeqs, Example.RightSeqs, P));
  }
}

JoinExample HomOracle::randomExample(unsigned MaxLen,
                                     const std::vector<int64_t> &From,
                                     Rng &Random) const {
  auto randomSeqs = [&](size_t Len) {
    SeqEnv Seqs;
    for (const SeqDecl &S : L.Sequences) {
      std::vector<Value> Values;
      Values.reserve(Len);
      for (size_t I = 0; I != Len; ++I)
        Values.push_back(Value::ofInt(From[Random.index(From.size())]));
      Seqs[S.Name] = std::move(Values);
    }
    return Seqs;
  };
  size_t LeftLen = static_cast<size_t>(Random.intIn(0, MaxLen));
  size_t RightLen = static_cast<size_t>(Random.intIn(0, MaxLen));
  Env Params;
  for (const ParamDecl &Param : L.Params)
    Params[Param.Name] = Param.Ty == Type::Int ? Value::ofInt(Random.intIn(-3, 3))
                                               : Value::ofBool(Random.flip());
  return makeExample(randomSeqs(LeftLen), randomSeqs(RightLen), Params);
}

Env HomOracle::combinedEnv(const JoinExample &Example) const {
  Env Result = Example.Params;
  for (size_t I = 0; I != L.Equations.size(); ++I) {
    Result[L.Equations[I].Name + "_l"] = Example.Left[I];
    Result[L.Equations[I].Name + "_r"] = Example.Right[I];
  }
  return Result;
}

std::optional<size_t>
HomOracle::firstFailure(const ExprRef &JoinComponent,
                        size_t EquationIndex) const {
  for (size_t T = 0; T != Tests.size(); ++T) {
    Env E = combinedEnv(Tests[T]);
    if (evalExpr(JoinComponent, E) != Tests[T].Expected[EquationIndex])
      return T;
  }
  return std::nullopt;
}

std::optional<JoinExample>
HomOracle::findCounterexample(const std::vector<ExprRef> &Join,
                              unsigned Rounds) {
  assert(Join.size() == L.Equations.size() && "join arity mismatch");
  Span CexSpan("findCounterexample", trace::Oracle);
  CexSpan.attr("rounds", uint64_t(Rounds));
  // Widen the value pool beyond the synthesis pool to catch coincidences.
  std::vector<int64_t> Wide = Pool;
  Wide.push_back(17);
  Wide.push_back(-23);
  Wide.push_back(100);
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    // Deadline expiry returns "no counterexample found"; callers that care
    // about the distinction re-check expired() — a timed-out validation
    // must never be read as a passed one.
    if (Options.Timeout.expired())
      return std::nullopt;
    unsigned MaxLen = 1 + Round % 12;
    JoinExample Example =
        randomExample(MaxLen, Round % 2 ? Focused : Wide, R);
    Env E = combinedEnv(Example);
    for (size_t I = 0; I != Join.size(); ++I) {
      if (evalExpr(Join[I], E) != Example.Expected[I]) {
        CexSpan.attr("found", true);
        CexSpan.attr("at_round", uint64_t(Round));
        MetricsRegistry::global().counter("oracle.counterexamples").inc();
        return Example;
      }
    }
  }
  CexSpan.attr("found", false);
  return std::nullopt;
}

void HomOracle::addTest(JoinExample Example) {
  Tests.push_back(std::move(Example));
}
