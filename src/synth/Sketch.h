//===- synth/Sketch.h - Sketch compilation C(E) -----------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation function C of paper Section 4.2, producing per-equation
/// join sketches:
///   C(c)        = ??R            (constants)
///   C(x)        = ??R  if x is an input variable
///   C(x)        = ??LR if x is a state variable
///   C(x[e])     = ??R            (sequence reads)
///   C(op(e...)) = op(C(e)...)    (operators preserved)
/// Left-right holes (??LR) range over expressions in variables of both
/// worker threads; right holes (??R) over the right thread's variables only.
/// Holes carry the type of the subexpression they replace, which prunes the
/// candidate pools substantially (an implementation refinement the paper
/// mentions in Section 8.1).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SYNTH_SKETCH_H
#define PARSYNT_SYNTH_SKETCH_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace parsynt {

/// A hole in a sketch, realized as a reserved-named variable in the body.
struct Hole {
  std::string Name; ///< reserved name, "?h<k>"
  Type Ty;
  bool RightOnly; ///< true for ??R, false for ??LR
};

/// A compiled per-equation sketch.
struct Sketch {
  ExprRef Body; ///< update expression with holes as variables
  std::vector<Hole> Holes;
};

/// Compiles the sketch for one equation of \p L (paper's C function).
Sketch compileSketch(const Equation &Eq);

/// Renders the sketch with ??LR / ??R markers for display.
std::string sketchToString(const Sketch &S);

} // namespace parsynt

#endif // PARSYNT_SYNTH_SKETCH_H
