//===- frontend/Parser.h - Surface AST and parser ---------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Figure-3 input language. The parser
/// produces an *untyped* surface AST; name resolution, type inference and
/// the imperative -> recurrence-equation conversion (paper Appendix A) are
/// performed by the converter (frontend/Convert.h).
///
/// Accepted shape:
/// \code
///   param x;                     // optional free scalar parameters
///   sum = 0;                     // state-variable initialization
///   for (i = 0; i < |s|; i++) {  // single non-nested loop
///     sum = sum + s[i];          // assignments and if/else statements
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_FRONTEND_PARSER_H
#define PARSYNT_FRONTEND_PARSER_H

#include "frontend/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace parsynt {
namespace surface {

enum class SExprKind {
  IntLit,
  BoolLit,
  Name,
  Subscript, // base[index]
  Unary,     // -x, !x
  Binary,    // infix operator, spelling in OpText
  Ternary,   // c ? a : b
  Call,      // min(a,b), max(a,b), abs(a)
};

/// An untyped surface expression. Children live in Args:
/// Unary: [operand]; Binary: [lhs, rhs]; Ternary: [cond, then, else];
/// Subscript: [index]; Call: arguments.
struct SExpr {
  SExprKind Kind;
  int64_t IntValue = 0;
  bool BoolValue = false;
  std::string Name;   // Name/Subscript base/Call callee
  std::string OpText; // operator spelling for Unary/Binary
  std::vector<std::shared_ptr<SExpr>> Args;
  unsigned Line = 0;
  unsigned Column = 0;
};
using SExprPtr = std::shared_ptr<SExpr>;

enum class SStmtKind { Assign, If };

/// An assignment or a two-armed conditional statement.
struct SStmt {
  SStmtKind Kind;
  // Assign:
  std::string Target;
  /// Non-null for a sequence-element assignment `target[index] = value`.
  /// The fragment forbids sequence writes; the parser still represents them
  /// so the linter can reject them with a precise diagnostic.
  SExprPtr TargetIndex;
  SExprPtr Value;
  // If:
  SExprPtr Cond;
  std::vector<SStmt> Then;
  std::vector<SStmt> Else;
  unsigned Line = 0;
  unsigned Column = 0;
};

/// A parsed program: parameter declarations, initialization assignments,
/// and one for loop over a sequence.
struct SProgram {
  std::vector<std::string> Params;
  std::vector<SStmt> Inits;
  std::string IndexName;
  std::string BoundSeqName; // the sequence in the `i < |s|` bound
  std::vector<SStmt> Body;
};

} // namespace surface

/// Parses \p Source. Returns nullptr (with diagnostics in \p Diags) on
/// failure.
std::unique_ptr<surface::SProgram> parseProgram(const std::string &Source,
                                                DiagnosticEngine &Diags);

} // namespace parsynt

#endif // PARSYNT_FRONTEND_PARSER_H
