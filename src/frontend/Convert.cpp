//===- frontend/Convert.cpp - Imperative -> equations (Appendix A) --------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "analysis/Lint.h"
#include "analysis/Verifier.h"
#include "ir/ExprOps.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"

#include <map>
#include <set>

using namespace parsynt;
using namespace parsynt::surface;

namespace {

/// Carries the conversion state: symbol classes, inferred types, and the
/// current symbolic value of each state variable.
class Converter {
public:
  Converter(const SProgram &Program, std::string LoopName,
            DiagnosticEngine &Diags)
      : Program(Program), LoopName(std::move(LoopName)), Diags(Diags) {}

  std::optional<Loop> run();

private:
  void error(const std::string &Message, unsigned Line, unsigned Column) {
    Diags.error(Message, Line, Column);
    Ok = false;
  }

  /// Collects the names assigned anywhere in \p Stmts into StateNames, in
  /// first-assignment order.
  void collectAssigned(const std::vector<SStmt> &Stmts);

  /// Infers the type of \p E bottom-up. Registers unknown names as int
  /// parameters. Returns nullopt after reporting an error.
  std::optional<Type> inferType(const SExpr &E);

  /// Converts \p E to IR under the current-value map \p Cur (state-variable
  /// reads resolve through Cur).
  ExprRef convertExpr(const SExpr &E,
                      const std::map<std::string, ExprRef> &Cur);

  /// Processes a statement list per Appendix A, updating \p Cur in place.
  bool convertStmts(const std::vector<SStmt> &Stmts,
                    std::map<std::string, ExprRef> &Cur);

  const SProgram &Program;
  std::string LoopName;
  DiagnosticEngine &Diags;
  bool Ok = true;

  std::vector<std::string> StateNames; // first-assignment order (loop body)
  std::set<std::string> StateSet;
  std::set<std::string> ParamSet;
  std::set<std::string> SeqSet;
  std::map<std::string, Type> Types; // state vars and params
};

void Converter::collectAssigned(const std::vector<SStmt> &Stmts) {
  for (const SStmt &S : Stmts) {
    if (S.Kind == SStmtKind::Assign) {
      if (S.TargetIndex) {
        // Backstop for callers that skip the linter; lintProgram reports
        // sequence writes with a richer message before conversion runs.
        error("sequence '" + S.Target + "' is written", S.Line, S.Column);
        continue;
      }
      if (StateSet.insert(S.Target).second)
        StateNames.push_back(S.Target);
      continue;
    }
    collectAssigned(S.Then);
    collectAssigned(S.Else);
  }
}

std::optional<Type> Converter::inferType(const SExpr &E) {
  switch (E.Kind) {
  case SExprKind::IntLit:
    return Type::Int;
  case SExprKind::BoolLit:
    return Type::Bool;
  case SExprKind::Name: {
    if (E.Name == "MAX_INT" || E.Name == "MIN_INT")
      return Type::Int;
    if (E.Name == Program.IndexName)
      return Type::Int;
    auto It = Types.find(E.Name);
    if (It != Types.end())
      return It->second;
    if (StateSet.count(E.Name)) {
      error("state variable '" + E.Name + "' used before initialization",
            E.Line, E.Column);
      return std::nullopt;
    }
    // Unknown read-only name: an implicit int parameter.
    ParamSet.insert(E.Name);
    Types[E.Name] = Type::Int;
    return Type::Int;
  }
  case SExprKind::Subscript: {
    SeqSet.insert(E.Name);
    auto IndexTy = inferType(*E.Args[0]);
    if (!IndexTy)
      return std::nullopt;
    if (*IndexTy != Type::Int) {
      error("sequence index must be an integer", E.Line, E.Column);
      return std::nullopt;
    }
    return Type::Int;
  }
  case SExprKind::Unary: {
    auto OperandTy = inferType(*E.Args[0]);
    if (!OperandTy)
      return std::nullopt;
    Type Expected = E.OpText == "-" ? Type::Int : Type::Bool;
    if (*OperandTy != Expected) {
      error("operand of '" + E.OpText + "' has the wrong type", E.Line,
            E.Column);
      return std::nullopt;
    }
    return Expected;
  }
  case SExprKind::Binary: {
    auto LhsTy = inferType(*E.Args[0]);
    auto RhsTy = inferType(*E.Args[1]);
    if (!LhsTy || !RhsTy)
      return std::nullopt;
    const std::string &Op = E.OpText;
    if (Op == "+" || Op == "-" || Op == "*" || Op == "/") {
      if (*LhsTy != Type::Int || *RhsTy != Type::Int) {
        error("arithmetic on non-integer operands", E.Line, E.Column);
        return std::nullopt;
      }
      return Type::Int;
    }
    if (Op == "&&" || Op == "||") {
      if (*LhsTy != Type::Bool || *RhsTy != Type::Bool) {
        error("boolean operator on non-boolean operands", E.Line, E.Column);
        return std::nullopt;
      }
      return Type::Bool;
    }
    if (Op == "==" || Op == "!=") {
      if (*LhsTy != *RhsTy) {
        error("equality between values of different types", E.Line,
              E.Column);
        return std::nullopt;
      }
      return Type::Bool;
    }
    // <, <=, >, >=
    if (*LhsTy != Type::Int || *RhsTy != Type::Int) {
      error("comparison on non-integer operands", E.Line, E.Column);
      return std::nullopt;
    }
    return Type::Bool;
  }
  case SExprKind::Ternary: {
    auto CondTy = inferType(*E.Args[0]);
    auto ThenTy = inferType(*E.Args[1]);
    auto ElseTy = inferType(*E.Args[2]);
    if (!CondTy || !ThenTy || !ElseTy)
      return std::nullopt;
    if (*CondTy != Type::Bool || *ThenTy != *ElseTy) {
      error("ill-typed conditional expression", E.Line, E.Column);
      return std::nullopt;
    }
    return *ThenTy;
  }
  case SExprKind::Call: {
    if ((E.Name == "min" || E.Name == "max") && E.Args.size() == 2) {
      auto ATy = inferType(*E.Args[0]);
      auto BTy = inferType(*E.Args[1]);
      if (!ATy || !BTy)
        return std::nullopt;
      if (*ATy != Type::Int || *BTy != Type::Int) {
        error(E.Name + " expects integer arguments", E.Line, E.Column);
        return std::nullopt;
      }
      return Type::Int;
    }
    if (E.Name == "abs" && E.Args.size() == 1) {
      auto ATy = inferType(*E.Args[0]);
      if (!ATy)
        return std::nullopt;
      if (*ATy != Type::Int) {
        error("abs expects an integer argument", E.Line, E.Column);
        return std::nullopt;
      }
      return Type::Int;
    }
    error("unknown function '" + E.Name + "'", E.Line, E.Column);
    return std::nullopt;
  }
  }
  return std::nullopt;
}

ExprRef Converter::convertExpr(const SExpr &E,
                               const std::map<std::string, ExprRef> &Cur) {
  switch (E.Kind) {
  case SExprKind::IntLit:
    return intConst(E.IntValue);
  case SExprKind::BoolLit:
    return boolConst(E.BoolValue);
  case SExprKind::Name: {
    if (E.Name == "MAX_INT")
      return intConst(MaxIntSentinel);
    if (E.Name == "MIN_INT")
      return intConst(MinIntSentinel);
    if (E.Name == Program.IndexName)
      return inputVar(E.Name, Type::Int);
    auto It = Cur.find(E.Name);
    if (It != Cur.end())
      return It->second;
    assert(ParamSet.count(E.Name) && "name resolution out of sync");
    return inputVar(E.Name, Types.at(E.Name));
  }
  case SExprKind::Subscript:
    return seqAccess(E.Name, convertExpr(*E.Args[0], Cur), Type::Int);
  case SExprKind::Unary: {
    ExprRef Operand = convertExpr(*E.Args[0], Cur);
    return E.OpText == "-" ? neg(Operand) : notE(Operand);
  }
  case SExprKind::Binary: {
    ExprRef L = convertExpr(*E.Args[0], Cur);
    ExprRef R = convertExpr(*E.Args[1], Cur);
    const std::string &Op = E.OpText;
    if (Op == "+")
      return add(L, R);
    if (Op == "-")
      return sub(L, R);
    if (Op == "*")
      return mul(L, R);
    if (Op == "/")
      return binary(BinaryOp::Div, L, R);
    if (Op == "&&")
      return andE(L, R);
    if (Op == "||")
      return orE(L, R);
    if (Op == "==")
      return eq(L, R);
    if (Op == "!=")
      return ne(L, R);
    if (Op == "<")
      return lt(L, R);
    if (Op == "<=")
      return le(L, R);
    if (Op == ">")
      return gt(L, R);
    assert(Op == ">=" && "unknown binary operator");
    return ge(L, R);
  }
  case SExprKind::Ternary:
    return ite(convertExpr(*E.Args[0], Cur), convertExpr(*E.Args[1], Cur),
               convertExpr(*E.Args[2], Cur));
  case SExprKind::Call: {
    if (E.Name == "min")
      return minE(convertExpr(*E.Args[0], Cur), convertExpr(*E.Args[1], Cur));
    if (E.Name == "max")
      return maxE(convertExpr(*E.Args[0], Cur), convertExpr(*E.Args[1], Cur));
    assert(E.Name == "abs" && "unknown call survived type checking");
    ExprRef A = convertExpr(*E.Args[0], Cur);
    return maxE(A, neg(A));
  }
  }
  return nullptr;
}

bool Converter::convertStmts(const std::vector<SStmt> &Stmts,
                             std::map<std::string, ExprRef> &Cur) {
  for (const SStmt &S : Stmts) {
    if (S.Kind == SStmtKind::Assign) {
      if (S.TargetIndex)
        return false; // sequence write, diagnosed in collectAssigned
      auto ValueTy = inferType(*S.Value);
      if (!ValueTy)
        return false;
      auto TypeIt = Types.find(S.Target);
      assert(TypeIt != Types.end() && "state variable without a type");
      if (TypeIt->second != *ValueTy) {
        error("assignment changes the type of '" + S.Target + "'", S.Line,
              S.Column);
        return false;
      }
      Cur[S.Target] = convertExpr(*S.Value, Cur);
      continue;
    }
    // Conditional: evaluate the condition against the pre-branch state and
    // phi-merge the two arms (Appendix A).
    auto CondTy = inferType(*S.Cond);
    if (!CondTy)
      return false;
    if (*CondTy != Type::Bool) {
      error("if condition must be boolean", S.Line, S.Column);
      return false;
    }
    ExprRef Cond = convertExpr(*S.Cond, Cur);
    std::map<std::string, ExprRef> ThenCur = Cur;
    std::map<std::string, ExprRef> ElseCur = Cur;
    if (!convertStmts(S.Then, ThenCur) || !convertStmts(S.Else, ElseCur))
      return false;
    for (const std::string &Name : StateNames) {
      const ExprRef &ThenVal = ThenCur.at(Name);
      const ExprRef &ElseVal = ElseCur.at(Name);
      if (exprEquals(ThenVal, ElseVal))
        Cur[Name] = ThenVal;
      else
        Cur[Name] = ite(Cond, ThenVal, ElseVal);
    }
  }
  return true;
}

std::optional<Loop> Converter::run() {
  collectAssigned(Program.Body);
  if (StateNames.empty()) {
    Diags.error("loop body assigns no variables");
    return std::nullopt;
  }
  for (const std::string &P : Program.Params) {
    ParamSet.insert(P);
    Types[P] = Type::Int;
  }
  SeqSet.insert(Program.BoundSeqName);

  // Process the initialization statements in order; their targets must cover
  // all state variables. Initializations of non-state names define derived
  // parameters and are folded into subsequent expressions.
  std::map<std::string, ExprRef> InitValues;
  for (const SStmt &S : Program.Inits) {
    assert(S.Kind == SStmtKind::Assign && "checked by the parser");
    if (S.TargetIndex) {
      error("sequence '" + S.Target + "' is written before the loop", S.Line,
            S.Column);
      return std::nullopt;
    }
    auto ValueTy = inferType(*S.Value);
    if (!ValueTy)
      return std::nullopt;
    auto Existing = Types.find(S.Target);
    if (Existing != Types.end() && Existing->second != *ValueTy) {
      error("initialization changes the type of '" + S.Target + "'", S.Line,
            S.Column);
      return std::nullopt;
    }
    Types[S.Target] = *ValueTy;
    InitValues[S.Target] = convertExpr(*S.Value, InitValues);
  }
  for (const std::string &Name : StateNames) {
    if (!InitValues.count(Name)) {
      Diags.error("state variable '" + Name +
                  "' is not initialized before the loop");
      return std::nullopt;
    }
  }

  // Convert the body with the identity current-value map. Initialized names
  // that are never assigned in the body are derived constants; their init
  // expressions (over parameters only) are folded into the body directly.
  std::map<std::string, ExprRef> Cur;
  for (const auto &[Name, Init] : InitValues)
    if (!StateSet.count(Name))
      Cur[Name] = Init;
  for (const std::string &Name : StateNames)
    Cur[Name] = stateVar(Name, Types.at(Name));
  if (!convertStmts(Program.Body, Cur) || !Ok)
    return std::nullopt;

  Loop Result;
  Result.Name = LoopName;
  Result.IndexName = Program.IndexName;
  for (const std::string &Seq : SeqSet)
    Result.Sequences.push_back({Seq, Type::Int});
  for (const std::string &P : ParamSet)
    Result.Params.push_back({P, Types.at(P)});
  for (const std::string &Name : StateNames) {
    Equation Eq;
    Eq.Name = Name;
    Eq.Ty = Types.at(Name);
    Eq.Init = InitValues.at(Name);
    Eq.Update = Cur.at(Name);
    Result.Equations.push_back(std::move(Eq));
  }
  if (auto Problem = Result.validate()) {
    Diags.error("conversion produced an invalid loop: " + *Problem);
    return std::nullopt;
  }
  // Phase contract: the converter hands the pipeline a fully well-formed
  // equation system. The IR verifier re-derives that claim node by node.
  VerifierReport Verified = verifyLoop(Result, VerifyPhase::AfterFrontend);
  if (!Verified.ok()) {
    for (const std::string &V : Verified.Violations)
      Diags.error("conversion produced an invalid loop: " + V);
    return std::nullopt;
  }
  return Result;
}

} // namespace

std::optional<Loop> parsynt::convertProgram(const SProgram &Program,
                                            const std::string &Name,
                                            DiagnosticEngine &Diags) {
  Span ConvertSpan("convertProgram", trace::Frontend);
  ConvertSpan.attr("loop", Name.empty() ? "<loop>" : Name);
  Converter C(Program, Name, Diags);
  std::optional<Loop> Result = C.run();
  ConvertSpan.attr("ok", Result.has_value());
  if (Result) {
    ConvertSpan.attr("equations", uint64_t(Result->Equations.size()));
    ConvertSpan.attr("sequences", uint64_t(Result->Sequences.size()));
  }
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("frontend.converts").inc();
  if (!Result)
    M.counter("frontend.convert_errors").inc();
  return Result;
}

std::optional<Loop> parsynt::parseLoop(const std::string &Source,
                                       const std::string &Name,
                                       DiagnosticEngine &Diags) {
  Span ParseSpan("parseLoop", trace::Frontend);
  ParseSpan.attr("loop", Name.empty() ? "<loop>" : Name);
  ParseSpan.attr("source_bytes", uint64_t(Source.size()));
  auto Program = parseProgram(Source, Diags);
  MetricsRegistry::global().counter("frontend.parses").inc();
  if (!Program) {
    MetricsRegistry::global().counter("frontend.parse_errors").inc();
    ParseSpan.attr("ok", false);
    return std::nullopt;
  }
  // Fragment conformance first: the linter rejects out-of-fragment inputs
  // (sequence writes, non-affine subscripts, ...) with source locations the
  // converter cannot reconstruct. Warnings are kept but do not abort.
  {
    Span LintSpan("lintProgram", trace::Frontend);
    LintSummary Lint = lintProgram(*Program, Diags);
    LintSpan.attr("ok", Lint.ok());
    if (!Lint.ok()) {
      ParseSpan.attr("ok", false);
      return std::nullopt;
    }
  }
  return convertProgram(*Program, Name, Diags);
}
