//===- frontend/Lexer.cpp - Tokenizer for the input language --------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>

using namespace parsynt;

const char *parsynt::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwParam:
    return "'param'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semicolon:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  }
  return "unknown token";
}

namespace {

/// Cursor over the source text tracking line/column.
class Cursor {
public:
  Cursor(const std::string &Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd()) {
          Diags.error("unterminated block comment", Line, Column);
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  unsigned line() const { return Line; }
  unsigned column() const { return Column; }

private:
  const std::string &Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace

std::vector<Token> parsynt::lex(const std::string &Source,
                                DiagnosticEngine &Diags) {
  std::vector<Token> Tokens;
  Cursor C(Source, Diags);

  auto emit = [&](TokKind Kind, std::string Text, int64_t IntValue,
                  unsigned Line, unsigned Col) {
    Tokens.push_back({Kind, std::move(Text), IntValue, Line, Col});
  };

  while (true) {
    C.skipTrivia();
    unsigned Line = C.line(), Col = C.column();
    if (C.atEnd() || Diags.hasErrors())
      break;
    char Ch = C.advance();

    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      std::string Text(1, Ch);
      while (std::isalnum(static_cast<unsigned char>(C.peek())) ||
             C.peek() == '_')
        Text += C.advance();
      TokKind Kind = TokKind::Identifier;
      if (Text == "for")
        Kind = TokKind::KwFor;
      else if (Text == "if")
        Kind = TokKind::KwIf;
      else if (Text == "else")
        Kind = TokKind::KwElse;
      else if (Text == "true")
        Kind = TokKind::KwTrue;
      else if (Text == "false")
        Kind = TokKind::KwFalse;
      else if (Text == "param")
        Kind = TokKind::KwParam;
      emit(Kind, std::move(Text), 0, Line, Col);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      std::string Text(1, Ch);
      while (std::isdigit(static_cast<unsigned char>(C.peek())))
        Text += C.advance();
      // Overflow-checked accumulation: std::stoll would throw out of the
      // lexer on a literal past INT64_MAX.
      int64_t Value = 0;
      bool Overflow = false;
      for (char Digit : Text) {
        int64_t D = Digit - '0';
        if (Value > (INT64_MAX - D) / 10) {
          Overflow = true;
          break;
        }
        Value = Value * 10 + D;
      }
      if (Overflow) {
        Diags.error("integer literal '" + Text + "' out of range", Line, Col);
        continue;
      }
      emit(TokKind::IntLiteral, Text, Value, Line, Col);
      continue;
    }

    switch (Ch) {
    case '\'': {
      // Character literal, decoded to its code point.
      if (C.atEnd()) {
        Diags.error("unterminated character literal", Line, Col);
        break;
      }
      char Inner = C.advance();
      if (Inner == '\\' && !C.atEnd()) {
        char Esc = C.advance();
        switch (Esc) {
        case 'n':
          Inner = '\n';
          break;
        case 't':
          Inner = '\t';
          break;
        case '0':
          Inner = '\0';
          break;
        case '\\':
          Inner = '\\';
          break;
        case '\'':
          Inner = '\'';
          break;
        default:
          Diags.error("unknown escape in character literal", Line, Col);
          break;
        }
      }
      if (C.peek() != '\'') {
        Diags.error("unterminated character literal", Line, Col);
        break;
      }
      C.advance();
      emit(TokKind::IntLiteral, std::string(1, Inner),
           static_cast<int64_t>(static_cast<unsigned char>(Inner)), Line,
           Col);
      break;
    }
    case '(':
      emit(TokKind::LParen, "(", 0, Line, Col);
      break;
    case ')':
      emit(TokKind::RParen, ")", 0, Line, Col);
      break;
    case '{':
      emit(TokKind::LBrace, "{", 0, Line, Col);
      break;
    case '}':
      emit(TokKind::RBrace, "}", 0, Line, Col);
      break;
    case '[':
      emit(TokKind::LBracket, "[", 0, Line, Col);
      break;
    case ']':
      emit(TokKind::RBracket, "]", 0, Line, Col);
      break;
    case ';':
      emit(TokKind::Semicolon, ";", 0, Line, Col);
      break;
    case ',':
      emit(TokKind::Comma, ",", 0, Line, Col);
      break;
    case '?':
      emit(TokKind::Question, "?", 0, Line, Col);
      break;
    case ':':
      emit(TokKind::Colon, ":", 0, Line, Col);
      break;
    case '+':
      if (C.peek() == '+') {
        C.advance();
        emit(TokKind::PlusPlus, "++", 0, Line, Col);
      } else {
        emit(TokKind::Plus, "+", 0, Line, Col);
      }
      break;
    case '-':
      emit(TokKind::Minus, "-", 0, Line, Col);
      break;
    case '*':
      emit(TokKind::Star, "*", 0, Line, Col);
      break;
    case '/':
      emit(TokKind::Slash, "/", 0, Line, Col);
      break;
    case '!':
      if (C.peek() == '=') {
        C.advance();
        emit(TokKind::NotEq, "!=", 0, Line, Col);
      } else {
        emit(TokKind::Bang, "!", 0, Line, Col);
      }
      break;
    case '=':
      if (C.peek() == '=') {
        C.advance();
        emit(TokKind::EqEq, "==", 0, Line, Col);
      } else {
        emit(TokKind::Assign, "=", 0, Line, Col);
      }
      break;
    case '<':
      if (C.peek() == '=') {
        C.advance();
        emit(TokKind::Le, "<=", 0, Line, Col);
      } else {
        emit(TokKind::Lt, "<", 0, Line, Col);
      }
      break;
    case '>':
      if (C.peek() == '=') {
        C.advance();
        emit(TokKind::Ge, ">=", 0, Line, Col);
      } else {
        emit(TokKind::Gt, ">", 0, Line, Col);
      }
      break;
    case '&':
      if (C.peek() == '&') {
        C.advance();
        emit(TokKind::AndAnd, "&&", 0, Line, Col);
      } else {
        Diags.error("unexpected '&' (did you mean '&&'?)", Line, Col);
      }
      break;
    case '|':
      if (C.peek() == '|') {
        C.advance();
        emit(TokKind::OrOr, "||", 0, Line, Col);
      } else {
        emit(TokKind::Pipe, "|", 0, Line, Col);
      }
      break;
    default:
      Diags.error(std::string("unexpected character '") + Ch + "'", Line,
                  Col);
      break;
    }
  }

  Tokens.push_back({TokKind::Eof, "", 0, C.line(), C.column()});
  return Tokens;
}
