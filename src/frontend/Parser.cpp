//===- frontend/Parser.cpp - Surface AST and parser -----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

using namespace parsynt;
using namespace parsynt::surface;

namespace {

/// Recursive-descent parser over the token stream. On the first error it
/// reports a diagnostic and unwinds via null returns.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<SProgram> parse();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[Index];
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokKind Kind) const { return peek().Kind == Kind; }
  bool match(TokKind Kind) {
    if (!check(Kind))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind Kind, const char *Where) {
    if (match(Kind))
      return true;
    error(std::string("expected ") + tokKindName(Kind) + " " + Where +
          ", found " + tokKindName(peek().Kind));
    return false;
  }
  void error(std::string Message) {
    if (!Failed)
      Diags.error(std::move(Message), peek().Line, peek().Column);
    Failed = true;
  }

  SExprPtr makeExpr(SExprKind Kind) {
    auto E = std::make_shared<SExpr>();
    E->Kind = Kind;
    E->Line = peek().Line;
    E->Column = peek().Column;
    return E;
  }

  SExprPtr parseExpr();
  SExprPtr parseOr();
  SExprPtr parseAnd();
  SExprPtr parseComparison();
  SExprPtr parseAdditive();
  SExprPtr parseMultiplicative();
  SExprPtr parseUnary();
  SExprPtr parsePrimary();

  bool parseStmt(std::vector<SStmt> &Out);
  bool parseStmtList(std::vector<SStmt> &Out);
  bool parseForHeader(SProgram &Program);

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;

  /// Recursion ceiling for the expression grammar: adversarially nested
  /// input (deep ternaries, parentheses, unary chains) must produce a
  /// diagnostic, not a stack overflow.
  static constexpr unsigned MaxExprDepth = 200;
  unsigned Depth = 0;

  struct DepthGuard {
    Parser &P;
    bool Ok;
    explicit DepthGuard(Parser &P) : P(P), Ok(P.Depth < MaxExprDepth) {
      if (Ok)
        ++P.Depth;
      else
        P.error("expression nesting deeper than " +
                std::to_string(MaxExprDepth) + " levels");
    }
    ~DepthGuard() {
      if (Ok)
        --P.Depth;
    }
  };
};

SExprPtr Parser::parseExpr() {
  DepthGuard Guard(*this);
  if (!Guard.Ok)
    return nullptr;
  SExprPtr Cond = parseOr();
  if (!Cond || !check(TokKind::Question))
    return Cond;
  advance();
  SExprPtr Then = parseExpr();
  if (!Then || !expect(TokKind::Colon, "in conditional expression"))
    return nullptr;
  SExprPtr Else = parseExpr();
  if (!Else)
    return nullptr;
  SExprPtr E = makeExpr(SExprKind::Ternary);
  E->Args = {Cond, Then, Else};
  return E;
}

SExprPtr Parser::parseOr() {
  SExprPtr Lhs = parseAnd();
  while (Lhs && check(TokKind::OrOr)) {
    advance();
    SExprPtr Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    SExprPtr E = makeExpr(SExprKind::Binary);
    E->OpText = "||";
    E->Args = {Lhs, Rhs};
    Lhs = E;
  }
  return Lhs;
}

SExprPtr Parser::parseAnd() {
  SExprPtr Lhs = parseComparison();
  while (Lhs && check(TokKind::AndAnd)) {
    advance();
    SExprPtr Rhs = parseComparison();
    if (!Rhs)
      return nullptr;
    SExprPtr E = makeExpr(SExprKind::Binary);
    E->OpText = "&&";
    E->Args = {Lhs, Rhs};
    Lhs = E;
  }
  return Lhs;
}

SExprPtr Parser::parseComparison() {
  SExprPtr Lhs = parseAdditive();
  if (!Lhs)
    return nullptr;
  std::string Op;
  switch (peek().Kind) {
  case TokKind::Lt:
    Op = "<";
    break;
  case TokKind::Le:
    Op = "<=";
    break;
  case TokKind::Gt:
    Op = ">";
    break;
  case TokKind::Ge:
    Op = ">=";
    break;
  case TokKind::EqEq:
    Op = "==";
    break;
  case TokKind::NotEq:
    Op = "!=";
    break;
  default:
    return Lhs;
  }
  advance();
  SExprPtr Rhs = parseAdditive();
  if (!Rhs)
    return nullptr;
  SExprPtr E = makeExpr(SExprKind::Binary);
  E->OpText = Op;
  E->Args = {Lhs, Rhs};
  return E;
}

SExprPtr Parser::parseAdditive() {
  SExprPtr Lhs = parseMultiplicative();
  while (Lhs && (check(TokKind::Plus) || check(TokKind::Minus))) {
    std::string Op = check(TokKind::Plus) ? "+" : "-";
    advance();
    SExprPtr Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    SExprPtr E = makeExpr(SExprKind::Binary);
    E->OpText = Op;
    E->Args = {Lhs, Rhs};
    Lhs = E;
  }
  return Lhs;
}

SExprPtr Parser::parseMultiplicative() {
  SExprPtr Lhs = parseUnary();
  while (Lhs && (check(TokKind::Star) || check(TokKind::Slash))) {
    std::string Op = check(TokKind::Star) ? "*" : "/";
    advance();
    SExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    SExprPtr E = makeExpr(SExprKind::Binary);
    E->OpText = Op;
    E->Args = {Lhs, Rhs};
    Lhs = E;
  }
  return Lhs;
}

SExprPtr Parser::parseUnary() {
  if (check(TokKind::Minus) || check(TokKind::Bang)) {
    // Guarded separately from parseExpr: a `!!!...x` chain recurses here
    // without ever re-entering parseExpr.
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return nullptr;
    std::string Op = check(TokKind::Minus) ? "-" : "!";
    SExprPtr E = makeExpr(SExprKind::Unary);
    advance();
    SExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    E->OpText = Op;
    E->Args = {Operand};
    return E;
  }
  return parsePrimary();
}

SExprPtr Parser::parsePrimary() {
  if (check(TokKind::IntLiteral)) {
    SExprPtr E = makeExpr(SExprKind::IntLit);
    E->IntValue = advance().IntValue;
    return E;
  }
  if (check(TokKind::KwTrue) || check(TokKind::KwFalse)) {
    SExprPtr E = makeExpr(SExprKind::BoolLit);
    E->BoolValue = advance().Kind == TokKind::KwTrue;
    return E;
  }
  if (check(TokKind::LParen)) {
    advance();
    SExprPtr E = parseExpr();
    if (!E || !expect(TokKind::RParen, "after parenthesized expression"))
      return nullptr;
    return E;
  }
  if (check(TokKind::Identifier)) {
    Token Name = advance();
    if (match(TokKind::LBracket)) {
      SExprPtr Index = parseExpr();
      if (!Index || !expect(TokKind::RBracket, "after sequence index"))
        return nullptr;
      SExprPtr E = makeExpr(SExprKind::Subscript);
      E->Name = Name.Text;
      E->Args = {Index};
      E->Line = Name.Line;
      E->Column = Name.Column;
      return E;
    }
    if (match(TokKind::LParen)) {
      SExprPtr E = makeExpr(SExprKind::Call);
      E->Name = Name.Text;
      E->Line = Name.Line;
      E->Column = Name.Column;
      if (!check(TokKind::RParen)) {
        do {
          SExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          E->Args.push_back(Arg);
        } while (match(TokKind::Comma));
      }
      if (!expect(TokKind::RParen, "after call arguments"))
        return nullptr;
      return E;
    }
    SExprPtr E = makeExpr(SExprKind::Name);
    E->Name = Name.Text;
    E->Line = Name.Line;
    E->Column = Name.Column;
    return E;
  }
  error(std::string("expected an expression, found ") +
        tokKindName(peek().Kind));
  return nullptr;
}

bool Parser::parseStmt(std::vector<SStmt> &Out) {
  if (check(TokKind::KwIf)) {
    // Nested if-statements recurse through parseStmtList without touching
    // parseExpr, so they need their own ceiling.
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return false;
    SStmt Stmt;
    Stmt.Kind = SStmtKind::If;
    Stmt.Line = peek().Line;
    Stmt.Column = peek().Column;
    advance();
    if (!expect(TokKind::LParen, "after 'if'"))
      return false;
    Stmt.Cond = parseExpr();
    if (!Stmt.Cond || !expect(TokKind::RParen, "after if condition"))
      return false;
    if (!parseStmtList(Stmt.Then))
      return false;
    if (match(TokKind::KwElse))
      if (!parseStmtList(Stmt.Else))
        return false;
    Out.push_back(std::move(Stmt));
    return true;
  }
  if (check(TokKind::Identifier)) {
    SStmt Stmt;
    Stmt.Kind = SStmtKind::Assign;
    Stmt.Line = peek().Line;
    Stmt.Column = peek().Column;
    Stmt.Target = advance().Text;
    if (match(TokKind::LBracket)) {
      // Sequence-element assignment: parsed so the linter can reject it
      // with a source-located diagnostic (the fragment is read-only over
      // its sequences).
      Stmt.TargetIndex = parseExpr();
      if (!Stmt.TargetIndex ||
          !expect(TokKind::RBracket, "after assignment target index"))
        return false;
    }
    if (!expect(TokKind::Assign, "in assignment"))
      return false;
    Stmt.Value = parseExpr();
    if (!Stmt.Value || !expect(TokKind::Semicolon, "after assignment"))
      return false;
    Out.push_back(std::move(Stmt));
    return true;
  }
  error(std::string("expected a statement, found ") +
        tokKindName(peek().Kind));
  return false;
}

bool Parser::parseStmtList(std::vector<SStmt> &Out) {
  if (match(TokKind::LBrace)) {
    while (!check(TokKind::RBrace)) {
      if (check(TokKind::Eof)) {
        error("unterminated block");
        return false;
      }
      if (!parseStmt(Out))
        return false;
    }
    advance();
    return true;
  }
  return parseStmt(Out);
}

bool Parser::parseForHeader(SProgram &Program) {
  if (!expect(TokKind::KwFor, "to begin the loop") ||
      !expect(TokKind::LParen, "after 'for'"))
    return false;
  if (!check(TokKind::Identifier)) {
    error("expected the loop index variable");
    return false;
  }
  Program.IndexName = advance().Text;
  if (!expect(TokKind::Assign, "in loop initialization"))
    return false;
  if (!check(TokKind::IntLiteral) || peek().IntValue != 0) {
    error("loop must start at index 0");
    return false;
  }
  advance();
  if (!expect(TokKind::Semicolon, "after loop initialization"))
    return false;
  if (!check(TokKind::Identifier) || peek().Text != Program.IndexName) {
    error("loop condition must test the index variable");
    return false;
  }
  advance();
  if (!expect(TokKind::Lt, "in loop condition") ||
      !expect(TokKind::Pipe, "before sequence length"))
    return false;
  if (!check(TokKind::Identifier)) {
    error("expected a sequence name in |s|");
    return false;
  }
  Program.BoundSeqName = advance().Text;
  if (!expect(TokKind::Pipe, "after sequence length") ||
      !expect(TokKind::Semicolon, "after loop condition"))
    return false;
  if (!check(TokKind::Identifier) || peek().Text != Program.IndexName) {
    error("loop increment must update the index variable");
    return false;
  }
  advance();
  if (!expect(TokKind::PlusPlus, "in loop increment") ||
      !expect(TokKind::RParen, "after loop header"))
    return false;
  return true;
}

std::unique_ptr<SProgram> Parser::parse() {
  auto Program = std::make_unique<SProgram>();

  while (match(TokKind::KwParam)) {
    if (!check(TokKind::Identifier)) {
      error("expected a parameter name after 'param'");
      return nullptr;
    }
    Program->Params.push_back(advance().Text);
    if (!expect(TokKind::Semicolon, "after parameter declaration"))
      return nullptr;
  }

  while (check(TokKind::Identifier))
    if (!parseStmt(Program->Inits))
      return nullptr;

  if (!parseForHeader(*Program))
    return nullptr;
  if (!parseStmtList(Program->Body))
    return nullptr;
  for (const SStmt &S : Program->Inits) {
    if (S.Kind != SStmtKind::Assign) {
      Diags.error("only assignments may precede the loop", S.Line, S.Column);
      return nullptr;
    }
  }
  if (!check(TokKind::Eof)) {
    error("expected end of input after the loop");
    return nullptr;
  }
  return Program;
}

} // namespace

std::unique_ptr<SProgram> parsynt::parseProgram(const std::string &Source,
                                                DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lex(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  auto Program = P.parse();
  if (Diags.hasErrors())
    return nullptr;
  return Program;
}
