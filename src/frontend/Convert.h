//===- frontend/Convert.h - Imperative -> equations (Appendix A) -*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversion of a parsed loop into the recurrence-equation model of paper
/// Section 3.3, following the procedure of Appendix A: statements are
/// visited in order, assignments substitute the current symbolic value of
/// every state variable into their right-hand side, and the two arms of a
/// conditional are merged into conditional expressions (the phi-merge of the
/// appendix). The result is a Loop whose equations all read the
/// start-of-iteration state (simultaneous-assignment semantics).
///
/// Name resolution and type inference also happen here: a variable assigned
/// in the loop body is a state variable (it must be initialized before the
/// loop); a variable only read is an input parameter; `MAX_INT`/`MIN_INT`
/// resolve to the sentinel constants below.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_FRONTEND_CONVERT_H
#define PARSYNT_FRONTEND_CONVERT_H

#include "frontend/Parser.h"
#include "ir/Loop.h"

#include <memory>
#include <optional>

namespace parsynt {

/// Sentinel value `MAX_INT` resolves to. Chosen large enough to act as an
/// identity for min over any realistic data, yet small enough that sums and
/// differences of a few sentinels stay far from the int64 boundary.
inline constexpr int64_t MaxIntSentinel = int64_t(1) << 40;
/// Sentinel value `MIN_INT` resolves to.
inline constexpr int64_t MinIntSentinel = -(int64_t(1) << 40);

/// Converts a parsed program into the recurrence-equation loop model.
/// Returns nullopt (with diagnostics in \p Diags) on name-resolution or
/// type errors. \p Name is recorded as the loop's name.
std::optional<Loop> convertProgram(const surface::SProgram &Program,
                                   const std::string &Name,
                                   DiagnosticEngine &Diags);

/// Convenience: parse + convert in one step.
std::optional<Loop> parseLoop(const std::string &Source,
                              const std::string &Name,
                              DiagnosticEngine &Diags);

} // namespace parsynt

#endif // PARSYNT_FRONTEND_CONVERT_H
