//===- frontend/Lexer.h - Tokenizer for the input language ------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Figure-3 input language (C-like loops over sequences),
/// standing in for the paper's CIL front end. Supports `//` and `/* */`
/// comments, character literals (balanced-parentheses benchmarks), and the
/// `|s|` length form used in loop bounds.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_FRONTEND_LEXER_H
#define PARSYNT_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parsynt {

enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,  // includes character literals, already decoded
  KwFor,
  KwIf,
  KwElse,
  KwTrue,
  KwFalse,
  KwParam,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Assign,      // =
  Plus,
  Minus,
  Star,
  Slash,
  PlusPlus,
  Bang,        // !
  Question,    // ?
  Colon,       // :
  Pipe,        // |
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
};

/// A lexed token with source position (1-based).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

/// Human-readable spelling of a token kind, for diagnostics.
const char *tokKindName(TokKind Kind);

/// Tokenizes \p Source. On a lexical error, reports to \p Diags and returns
/// the tokens recognized so far (terminated with Eof).
std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags);

} // namespace parsynt

#endif // PARSYNT_FRONTEND_LEXER_H
