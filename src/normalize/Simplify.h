//===- normalize/Simplify.h - Algebraic simplifier --------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sound, terminating, bottom-up simplifier: constant folding plus
/// unconditional algebraic identities (x+0, b&&true, ite(c,x,x), x==x, ...).
/// The normalizer simplifies every search node with it, which both
/// canonicalizes the search space and keeps unfolded expressions small.
/// Unlike the Figure-6 rewrite rules, simplification is not cost-directed:
/// every identity here strictly shrinks the term.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_NORMALIZE_SIMPLIFY_H
#define PARSYNT_NORMALIZE_SIMPLIFY_H

#include "ir/Expr.h"

namespace parsynt {

/// Returns a simplified expression equivalent to \p E under the total
/// interpreter semantics (wrap-around arithmetic, x/0 == 0).
ExprRef simplify(const ExprRef &E);

} // namespace parsynt

#endif // PARSYNT_NORMALIZE_SIMPLIFY_H
