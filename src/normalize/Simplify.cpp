//===- normalize/Simplify.cpp - Algebraic simplifier ----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "normalize/Simplify.h"
#include "ir/ExprOps.h"

using namespace parsynt;

namespace {

bool isIntConst(const ExprRef &E, int64_t V) {
  const auto *C = dyn_cast<IntConstExpr>(E);
  return C && C->value() == V;
}

bool isBoolConst(const ExprRef &E, bool V) {
  const auto *C = dyn_cast<BoolConstExpr>(E);
  return C && C->value() == V;
}

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

ExprRef foldBinary(BinaryOp Op, const ExprRef &L, const ExprRef &R) {
  const auto *LC = dyn_cast<IntConstExpr>(L);
  const auto *RC = dyn_cast<IntConstExpr>(R);
  if (isArithOp(Op) && LC && RC) {
    int64_t A = LC->value(), B = RC->value();
    switch (Op) {
    case BinaryOp::Add:
      return intConst(wrapAdd(A, B));
    case BinaryOp::Sub:
      return intConst(wrapSub(A, B));
    case BinaryOp::Mul:
      return intConst(wrapMul(A, B));
    case BinaryOp::Div:
      if (B == 0)
        return intConst(0);
      if (A == INT64_MIN && B == -1)
        return intConst(INT64_MIN);
      return intConst(A / B);
    case BinaryOp::Min:
      return intConst(A < B ? A : B);
    case BinaryOp::Max:
      return intConst(A > B ? A : B);
    default:
      break;
    }
  }
  if (isCompareOp(Op) && LC && RC) {
    int64_t A = LC->value(), B = RC->value();
    switch (Op) {
    case BinaryOp::Lt:
      return boolConst(A < B);
    case BinaryOp::Le:
      return boolConst(A <= B);
    case BinaryOp::Gt:
      return boolConst(A > B);
    case BinaryOp::Ge:
      return boolConst(A >= B);
    case BinaryOp::Eq:
      return boolConst(A == B);
    case BinaryOp::Ne:
      return boolConst(A != B);
    default:
      break;
    }
  }
  const auto *LB = dyn_cast<BoolConstExpr>(L);
  const auto *RB = dyn_cast<BoolConstExpr>(R);
  if (LB && RB) {
    switch (Op) {
    case BinaryOp::And:
      return boolConst(LB->value() && RB->value());
    case BinaryOp::Or:
      return boolConst(LB->value() || RB->value());
    case BinaryOp::Eq:
      return boolConst(LB->value() == RB->value());
    case BinaryOp::Ne:
      return boolConst(LB->value() != RB->value());
    default:
      break;
    }
  }
  return nullptr;
}

/// Identity/absorption rules for a binary node whose children are already
/// simplified. Returns null if nothing applies.
ExprRef reduceBinary(BinaryOp Op, const ExprRef &L, const ExprRef &R) {
  switch (Op) {
  case BinaryOp::Add:
    if (isIntConst(L, 0))
      return R;
    if (isIntConst(R, 0))
      return L;
    // a + (-b) keeps the negation visible to the rewrite rules; no change.
    break;
  case BinaryOp::Sub:
    if (isIntConst(R, 0))
      return L;
    if (isIntConst(L, 0))
      return neg(R);
    if (exprEquals(L, R))
      return intConst(0);
    break;
  case BinaryOp::Mul:
    if (isIntConst(L, 1))
      return R;
    if (isIntConst(R, 1))
      return L;
    if (isIntConst(L, 0) || isIntConst(R, 0))
      return intConst(0);
    break;
  case BinaryOp::Div:
    if (isIntConst(R, 1))
      return L;
    if (isIntConst(L, 0))
      return intConst(0);
    break;
  case BinaryOp::Min:
  case BinaryOp::Max:
    if (exprEquals(L, R))
      return L;
    break;
  case BinaryOp::Lt:
  case BinaryOp::Ne:
    if (exprEquals(L, R))
      return boolConst(false);
    break;
  case BinaryOp::Gt:
    if (exprEquals(L, R))
      return boolConst(false);
    break;
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
    if (exprEquals(L, R))
      return boolConst(true);
    break;
  case BinaryOp::And:
    if (isBoolConst(L, true))
      return R;
    if (isBoolConst(R, true))
      return L;
    if (isBoolConst(L, false) || isBoolConst(R, false))
      return boolConst(false);
    if (exprEquals(L, R))
      return L;
    break;
  case BinaryOp::Or:
    if (isBoolConst(L, false))
      return R;
    if (isBoolConst(R, false))
      return L;
    if (isBoolConst(L, true) || isBoolConst(R, true))
      return boolConst(true);
    if (exprEquals(L, R))
      return L;
    break;
  }
  return nullptr;
}

} // namespace

ExprRef parsynt::simplify(const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
  case ExprKind::BoolConst:
  case ExprKind::Var:
    return E;
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    ExprRef Index = simplify(S->index());
    if (Index.get() == S->index().get())
      return E;
    return SeqAccessExpr::get(S->seqName(), S->type(), std::move(Index));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    ExprRef Operand = simplify(U->operand());
    if (U->op() == UnaryOp::Neg) {
      if (const auto *C = dyn_cast<IntConstExpr>(Operand))
        return intConst(wrapNeg(C->value()));
      if (const auto *Inner = dyn_cast<UnaryExpr>(Operand))
        if (Inner->op() == UnaryOp::Neg)
          return Inner->operand();
    } else {
      if (const auto *C = dyn_cast<BoolConstExpr>(Operand))
        return boolConst(!C->value());
      if (const auto *Inner = dyn_cast<UnaryExpr>(Operand))
        if (Inner->op() == UnaryOp::Not)
          return Inner->operand();
    }
    if (Operand.get() == U->operand().get())
      return E;
    return UnaryExpr::get(U->op(), std::move(Operand));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    ExprRef L = simplify(B->lhs());
    ExprRef R = simplify(B->rhs());
    if (ExprRef Folded = foldBinary(B->op(), L, R))
      return Folded;
    if (ExprRef Reduced = reduceBinary(B->op(), L, R))
      return Reduced;
    if (L.get() == B->lhs().get() && R.get() == B->rhs().get())
      return E;
    return BinaryExpr::get(B->op(), std::move(L), std::move(R));
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    ExprRef Cond = simplify(I->cond());
    if (const auto *C = dyn_cast<BoolConstExpr>(Cond))
      return C->value() ? simplify(I->thenExpr()) : simplify(I->elseExpr());
    ExprRef Then = simplify(I->thenExpr());
    ExprRef Else = simplify(I->elseExpr());
    if (exprEquals(Then, Else))
      return Then;
    // ite(!c, a, b) -> ite(c, b, a)
    if (const auto *NotCond = dyn_cast<UnaryExpr>(Cond))
      if (NotCond->op() == UnaryOp::Not)
        return IteExpr::get(NotCond->operand(), std::move(Else),
                            std::move(Then));
    // ite(c, true, false) -> c; ite(c, false, true) -> !c
    if (isBoolConst(Then, true) && isBoolConst(Else, false))
      return Cond;
    if (isBoolConst(Then, false) && isBoolConst(Else, true))
      return notE(Cond);
    if (Cond.get() == I->cond().get() && Then.get() == I->thenExpr().get() &&
        Else.get() == I->elseExpr().get())
      return E;
    return IteExpr::get(std::move(Cond), std::move(Then), std::move(Else));
  }
  }
  return E;
}
