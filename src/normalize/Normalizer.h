//===- normalize/Normalizer.h - Cost-directed normalization -----*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost-minimizing normalization procedure of paper Section 6.1: a
/// best-first search over single-step rewrites (Figure-6 rules) ordered by
/// the CostV function of Definition 6.1 — lexicographically (max depth of
/// the unknowns, number of unknown occurrences), tie-broken by term size.
/// A closed set and a node budget keep the search finitary, as the paper
/// prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_NORMALIZE_NORMALIZER_H
#define PARSYNT_NORMALIZE_NORMALIZER_H

#include "ir/Expr.h"
#include "ir/ExprOps.h"
#include "normalize/Rules.h"

#include <set>
#include <string>

namespace parsynt {

/// Tuning knobs for the search; the defaults handle every benchmark in the
/// paper's Table 1 comfortably.
struct NormalizeOptions {
  /// Maximum number of nodes popped from the frontier.
  unsigned MaxExpansions = 4000;
  /// Candidates larger than SizeFactor * |input| + SizeSlack are pruned.
  unsigned SizeFactor = 3;
  unsigned SizeSlack = 24;
};

/// Statistics reported by a normalization run (used by the ablation bench).
struct NormalizeStats {
  unsigned Expanded = 0;
  unsigned Generated = 0;
  ExprCost InitialCost;
  ExprCost FinalCost;
};

/// Returns the lowest-cost expression (w.r.t. \p Unknowns) reachable from
/// \p E within the budget, together with search statistics.
ExprRef normalizeExpr(const ExprRef &E, const std::set<std::string> &Unknowns,
                      const NormalizeOptions &Options = {},
                      NormalizeStats *Stats = nullptr);

} // namespace parsynt

#endif // PARSYNT_NORMALIZE_NORMALIZER_H
