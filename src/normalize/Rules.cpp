//===- normalize/Rules.cpp - Figure-6 rewrite rules -----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "normalize/Rules.h"
#include "ir/ExprOps.h"
#include "normalize/Simplify.h"

#include <unordered_set>

using namespace parsynt;

namespace {

const BinaryExpr *asBinary(const ExprRef &E, BinaryOp Op) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  return (B && B->op() == Op) ? B : nullptr;
}

bool isMinOrMax(BinaryOp Op) {
  return Op == BinaryOp::Min || Op == BinaryOp::Max;
}

/// min <-> max, and <-> or, < <-> >=, ... used by De Morgan-style rules.
BinaryOp dualOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Min:
    return BinaryOp::Max;
  case BinaryOp::Max:
    return BinaryOp::Min;
  case BinaryOp::And:
    return BinaryOp::Or;
  case BinaryOp::Or:
    return BinaryOp::And;
  default:
    return Op;
  }
}

/// !(a < b) == a >= b, etc.
BinaryOp negatedCompare(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return BinaryOp::Ge;
  case BinaryOp::Le:
    return BinaryOp::Gt;
  case BinaryOp::Gt:
    return BinaryOp::Le;
  case BinaryOp::Ge:
    return BinaryOp::Lt;
  case BinaryOp::Eq:
    return BinaryOp::Ne;
  case BinaryOp::Ne:
    return BinaryOp::Eq;
  default:
    return Op;
  }
}

/// a < b == b > a, etc.
BinaryOp swappedCompare(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return BinaryOp::Gt;
  case BinaryOp::Le:
    return BinaryOp::Ge;
  case BinaryOp::Gt:
    return BinaryOp::Lt;
  case BinaryOp::Ge:
    return BinaryOp::Le;
  default:
    return Op; // Eq/Ne are symmetric.
  }
}

/// True for the order comparisons <, <=, >, >= (not Eq/Ne).
bool isOrderCompare(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

/// True if \p Op is satisfied "upward" on its left operand (a >= c and a > c
/// grow more true as a grows).
bool isGeLike(BinaryOp Op) {
  return Op == BinaryOp::Ge || Op == BinaryOp::Gt;
}

//===----------------------------------------------------------------------===//
// Rule bodies. Each takes the root expression and appends rewrites.
//===----------------------------------------------------------------------===//

void ruleCommute(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return;
  if (isCommutative(B->op()))
    Out.push_back(binary(B->op(), B->rhs(), B->lhs()));
  else if (isOrderCompare(B->op()))
    Out.push_back(binary(swappedCompare(B->op()), B->rhs(), B->lhs()));
}

void ruleAssociate(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || !isAssociative(B->op()))
    return;
  BinaryOp Op = B->op();
  // (a . b) . c -> a . (b . c)
  if (const auto *L = asBinary(B->lhs(), Op))
    Out.push_back(binary(Op, L->lhs(), binary(Op, L->rhs(), B->rhs())));
  // a . (b . c) -> (a . b) . c
  if (const auto *R = asBinary(B->rhs(), Op))
    Out.push_back(binary(Op, binary(Op, B->lhs(), R->lhs()), R->rhs()));
}

void ruleDistributeAddOverMinMax(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return;
  if (B->op() == BinaryOp::Add || B->op() == BinaryOp::Sub) {
    // minmax(a,b) +- c -> minmax(a +- c, b +- c)
    if (const auto *L = dyn_cast<BinaryExpr>(B->lhs()))
      if (isMinOrMax(L->op()))
        Out.push_back(binary(L->op(), binary(B->op(), L->lhs(), B->rhs()),
                             binary(B->op(), L->rhs(), B->rhs())));
    if (const auto *R = dyn_cast<BinaryExpr>(B->rhs())) {
      if (isMinOrMax(R->op())) {
        if (B->op() == BinaryOp::Add) {
          // c + minmax(a,b) -> minmax(c + a, c + b)
          Out.push_back(binary(R->op(), add(B->lhs(), R->lhs()),
                               add(B->lhs(), R->rhs())));
        } else {
          // c - minmax(a,b) -> dual(c - a, c - b)
          Out.push_back(binary(dualOp(R->op()), sub(B->lhs(), R->lhs()),
                               sub(B->lhs(), R->rhs())));
        }
      }
    }
  }
}

void ruleFactorAddOutOfMinMax(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || !isMinOrMax(B->op()))
    return;
  const auto *L = dyn_cast<BinaryExpr>(B->lhs());
  const auto *R = dyn_cast<BinaryExpr>(B->rhs());
  if (!L || !R || L->op() != R->op())
    return;
  if (L->op() != BinaryOp::Add && L->op() != BinaryOp::Sub)
    return;
  // minmax(a + c, b + c) -> minmax(a, b) + c   (same for -)
  if (exprEquals(L->rhs(), R->rhs()))
    Out.push_back(binary(L->op(), binary(B->op(), L->lhs(), R->lhs()),
                         L->rhs()));
  // max(c + a, c + b) -> c + max(a, b)
  if (L->op() == BinaryOp::Add && exprEquals(L->lhs(), R->lhs()))
    Out.push_back(add(L->lhs(), binary(B->op(), L->rhs(), R->rhs())));
}

void ruleDistributeMul(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = asBinary(E, BinaryOp::Mul);
  if (B) {
    // (a +- b) * c -> a*c +- b*c ; c * (a +- b) -> c*a +- c*b
    if (const auto *L = dyn_cast<BinaryExpr>(B->lhs()))
      if (L->op() == BinaryOp::Add || L->op() == BinaryOp::Sub)
        Out.push_back(binary(L->op(), mul(L->lhs(), B->rhs()),
                             mul(L->rhs(), B->rhs())));
    if (const auto *R = dyn_cast<BinaryExpr>(B->rhs()))
      if (R->op() == BinaryOp::Add || R->op() == BinaryOp::Sub)
        Out.push_back(binary(R->op(), mul(B->lhs(), R->lhs()),
                             mul(B->lhs(), R->rhs())));
    return;
  }
  const auto *S = dyn_cast<BinaryExpr>(E);
  if (!S || (S->op() != BinaryOp::Add && S->op() != BinaryOp::Sub))
    return;
  const auto *L = asBinary(S->lhs(), BinaryOp::Mul);
  const auto *R = asBinary(S->rhs(), BinaryOp::Mul);
  if (!L || !R)
    return;
  // a*c +- b*c -> (a +- b) * c, and the three operand-order variants.
  if (exprEquals(L->rhs(), R->rhs()))
    Out.push_back(mul(binary(S->op(), L->lhs(), R->lhs()), L->rhs()));
  if (exprEquals(L->lhs(), R->lhs()))
    Out.push_back(mul(L->lhs(), binary(S->op(), L->rhs(), R->rhs())));
  if (exprEquals(L->lhs(), R->rhs()))
    Out.push_back(mul(L->lhs(), binary(S->op(), L->rhs(), R->lhs())));
  if (exprEquals(L->rhs(), R->lhs()))
    Out.push_back(mul(binary(S->op(), L->lhs(), R->rhs()), L->rhs()));
}

void ruleBoolDistribute(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || !isBoolOp(B->op()))
    return;
  BinaryOp Op = B->op(), Dual = dualOp(B->op());
  // (a dual b) op c -> (a op c) dual (b op c), both operand positions.
  if (const auto *L = asBinary(B->lhs(), Dual))
    Out.push_back(binary(Dual, binary(Op, L->lhs(), B->rhs()),
                         binary(Op, L->rhs(), B->rhs())));
  if (const auto *R = asBinary(B->rhs(), Dual))
    Out.push_back(binary(Dual, binary(Op, B->lhs(), R->lhs()),
                         binary(Op, B->lhs(), R->rhs())));
  // Factor: (a op c) dual... handled by the same rule with roles swapped on
  // the dual node, so also emit the factored form when both children share a
  // conjunct/disjunct.
  const auto *L = asBinary(B->lhs(), Dual);
  const auto *R2 = asBinary(B->rhs(), Dual);
  if (L && R2) {
    if (exprEquals(L->lhs(), R2->lhs()))
      Out.push_back(binary(Dual, L->lhs(),
                           binary(Op, L->rhs(), R2->rhs())));
    if (exprEquals(L->rhs(), R2->rhs()))
      Out.push_back(binary(Dual, binary(Op, L->lhs(), R2->lhs()),
                           L->rhs()));
  }
}

void ruleNeg(const ExprRef &E, std::vector<ExprRef> &Out) {
  // Expansion direction: -(...) pushed inward.
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() != UnaryOp::Neg)
      return;
    if (const auto *B = dyn_cast<BinaryExpr>(U->operand())) {
      switch (B->op()) {
      case BinaryOp::Add: // -(a + b) -> (-a) - b
        Out.push_back(sub(neg(B->lhs()), B->rhs()));
        break;
      case BinaryOp::Sub: // -(a - b) -> b - a
        Out.push_back(sub(B->rhs(), B->lhs()));
        break;
      case BinaryOp::Min: // -min(a,b) -> max(-a,-b)
      case BinaryOp::Max:
        Out.push_back(binary(dualOp(B->op()), neg(B->lhs()), neg(B->rhs())));
        break;
      default:
        break;
      }
    }
    return;
  }
  // Factoring direction: max(-a,-b) -> -min(a,b); (-a) - b -> -(a + b).
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (isMinOrMax(B->op())) {
      const auto *L = dyn_cast<UnaryExpr>(B->lhs());
      const auto *R = dyn_cast<UnaryExpr>(B->rhs());
      if (L && R && L->op() == UnaryOp::Neg && R->op() == UnaryOp::Neg)
        Out.push_back(neg(binary(dualOp(B->op()), L->operand(),
                                 R->operand())));
    }
    if (B->op() == BinaryOp::Sub) {
      if (const auto *L = dyn_cast<UnaryExpr>(B->lhs()))
        if (L->op() == UnaryOp::Neg)
          Out.push_back(neg(add(L->operand(), B->rhs())));
    }
  }
}

void ruleSubAddNeg(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return;
  if (B->op() == BinaryOp::Sub) {
    // a - b -> a + (-b)
    Out.push_back(add(B->lhs(), neg(B->rhs())));
    return;
  }
  if (B->op() == BinaryOp::Add) {
    // a + (-b) -> a - b ; (-a) + b -> b - a
    if (const auto *R = dyn_cast<UnaryExpr>(B->rhs()))
      if (R->op() == UnaryOp::Neg)
        Out.push_back(sub(B->lhs(), R->operand()));
    if (const auto *L = dyn_cast<UnaryExpr>(B->lhs()))
      if (L->op() == UnaryOp::Neg)
        Out.push_back(sub(B->rhs(), L->operand()));
  }
}

void ruleCompareShift(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || !isOrderCompare(B->op()))
    return;
  BinaryOp Cmp = B->op();
  // (a + b) cmp c -> a cmp (c - b) and b cmp (c - a)
  if (const auto *L = asBinary(B->lhs(), BinaryOp::Add)) {
    Out.push_back(binary(Cmp, L->lhs(), sub(B->rhs(), L->rhs())));
    Out.push_back(binary(Cmp, L->rhs(), sub(B->rhs(), L->lhs())));
  }
  // (a - b) cmp c -> a cmp (c + b)
  if (const auto *L = asBinary(B->lhs(), BinaryOp::Sub))
    Out.push_back(binary(Cmp, L->lhs(), add(B->rhs(), L->rhs())));
  // a cmp (b + c) -> (a - c) cmp b and (a - b) cmp c
  if (const auto *R = asBinary(B->rhs(), BinaryOp::Add)) {
    Out.push_back(binary(Cmp, sub(B->lhs(), R->rhs()), R->lhs()));
    Out.push_back(binary(Cmp, sub(B->lhs(), R->lhs()), R->rhs()));
  }
  // a cmp (b - c) -> (a + c) cmp b
  if (const auto *R = asBinary(B->rhs(), BinaryOp::Sub))
    Out.push_back(binary(Cmp, add(B->lhs(), R->rhs()), R->lhs()));
  // (-a) cmp c -> (-c) cmp a  (negating both sides flips the order)
  if (const auto *L = dyn_cast<UnaryExpr>(B->lhs()))
    if (L->op() == UnaryOp::Neg)
      Out.push_back(binary(Cmp, neg(B->rhs()), L->operand()));
  if (const auto *R = dyn_cast<UnaryExpr>(B->rhs()))
    if (R->op() == UnaryOp::Neg)
      Out.push_back(binary(Cmp, R->operand(), neg(B->lhs())));
}

void ruleCompareMinMaxExpand(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || !isOrderCompare(B->op()))
    return;
  BinaryOp Cmp = B->op();
  // minmax(a,b) cmp c
  if (const auto *L = dyn_cast<BinaryExpr>(B->lhs())) {
    if (isMinOrMax(L->op())) {
      // max(a,b) >= c  <->  a >= c || b >= c ; min: &&. Lt/Le flip.
      bool UseOr = (L->op() == BinaryOp::Max) == isGeLike(Cmp);
      Out.push_back(binary(UseOr ? BinaryOp::Or : BinaryOp::And,
                           binary(Cmp, L->lhs(), B->rhs()),
                           binary(Cmp, L->rhs(), B->rhs())));
    }
  }
  // c cmp minmax(a,b)
  if (const auto *R = dyn_cast<BinaryExpr>(B->rhs())) {
    if (isMinOrMax(R->op())) {
      // c >= max(a,b) <-> c >= a && c >= b ; c >= min(a,b) <-> ||. Lt/Le flip.
      bool UseAnd = (R->op() == BinaryOp::Max) == isGeLike(Cmp);
      Out.push_back(binary(UseAnd ? BinaryOp::And : BinaryOp::Or,
                           binary(Cmp, B->lhs(), R->lhs()),
                           binary(Cmp, B->lhs(), R->rhs())));
    }
  }
}

void ruleCompareMinMaxFactor(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || !isBoolOp(B->op()))
    return;
  const auto *L = dyn_cast<BinaryExpr>(B->lhs());
  const auto *R = dyn_cast<BinaryExpr>(B->rhs());
  if (!L || !R || L->op() != R->op() || !isOrderCompare(L->op()))
    return;
  BinaryOp Cmp = L->op();
  bool IsAnd = B->op() == BinaryOp::And;
  // x cmp a && x cmp b -> x cmp minmax(a,b): for >= under &&, x must clear
  // both bounds, so the combined bound is max; under ||, min. Lt/Le dual.
  if (exprEquals(L->lhs(), R->lhs())) {
    BinaryOp Combine = (isGeLike(Cmp) == IsAnd) ? BinaryOp::Max
                                                : BinaryOp::Min;
    Out.push_back(binary(Cmp, L->lhs(), binary(Combine, L->rhs(), R->rhs())));
  }
  // a cmp x && b cmp x -> minmax(a,b) cmp x: for >= under &&, both bounds
  // must clear x, so combine with min. Dual cases accordingly.
  if (exprEquals(L->rhs(), R->rhs())) {
    BinaryOp Combine = (isGeLike(Cmp) == IsAnd) ? BinaryOp::Min
                                                : BinaryOp::Max;
    Out.push_back(binary(Cmp, binary(Combine, L->lhs(), R->lhs()), L->rhs()));
  }
}

void ruleNotPush(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *U = dyn_cast<UnaryExpr>(E);
  if (U && U->op() == UnaryOp::Not) {
    if (const auto *B = dyn_cast<BinaryExpr>(U->operand())) {
      if (isBoolOp(B->op())) { // De Morgan
        Out.push_back(binary(dualOp(B->op()), notE(B->lhs()),
                             notE(B->rhs())));
      } else if (isCompareOp(B->op())) {
        Out.push_back(binary(negatedCompare(B->op()), B->lhs(), B->rhs()));
      }
    }
    return;
  }
  // Factoring direction of De Morgan: (!a) op (!b) -> !(a dual b).
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (!isBoolOp(B->op()))
      return;
    const auto *L = dyn_cast<UnaryExpr>(B->lhs());
    const auto *R = dyn_cast<UnaryExpr>(B->rhs());
    if (L && R && L->op() == UnaryOp::Not && R->op() == UnaryOp::Not)
      Out.push_back(notE(binary(dualOp(B->op()), L->operand(),
                                R->operand())));
  }
}

void ruleIteDistribute(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (B) {
    // (c ? x : y) op z -> c ? (x op z) : (y op z), and the mirrored side.
    if (const auto *L = dyn_cast<IteExpr>(B->lhs()))
      Out.push_back(ite(L->cond(), binary(B->op(), L->thenExpr(), B->rhs()),
                        binary(B->op(), L->elseExpr(), B->rhs())));
    if (const auto *R = dyn_cast<IteExpr>(B->rhs()))
      Out.push_back(ite(R->cond(), binary(B->op(), B->lhs(), R->thenExpr()),
                        binary(B->op(), B->lhs(), R->elseExpr())));
    return;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (const auto *I = dyn_cast<IteExpr>(U->operand()))
      Out.push_back(ite(I->cond(), UnaryExpr::get(U->op(), I->thenExpr()),
                        UnaryExpr::get(U->op(), I->elseExpr())));
  }
}

void ruleIteFactor(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *I = dyn_cast<IteExpr>(E);
  if (!I)
    return;
  const auto *TB = dyn_cast<BinaryExpr>(I->thenExpr());
  const auto *EB = dyn_cast<BinaryExpr>(I->elseExpr());
  if (TB && EB && TB->op() == EB->op()) {
    // c ? (x op z) : (y op z) -> (c ? x : y) op z
    if (exprEquals(TB->rhs(), EB->rhs()))
      Out.push_back(binary(TB->op(), ite(I->cond(), TB->lhs(), EB->lhs()),
                           TB->rhs()));
    // c ? (z op x) : (z op y) -> z op (c ? x : y)
    if (exprEquals(TB->lhs(), EB->lhs()))
      Out.push_back(binary(TB->op(), TB->lhs(),
                           ite(I->cond(), TB->rhs(), EB->rhs())));
  }
  const auto *TU = dyn_cast<UnaryExpr>(I->thenExpr());
  const auto *EU = dyn_cast<UnaryExpr>(I->elseExpr());
  if (TU && EU && TU->op() == EU->op())
    Out.push_back(UnaryExpr::get(
        TU->op(), ite(I->cond(), TU->operand(), EU->operand())));
}

void ruleIteNest(const ExprRef &E, std::vector<ExprRef> &Out) {
  const auto *I = dyn_cast<IteExpr>(E);
  if (!I)
    return;
  // c1 ? (c2 ? x : y) : z -> (c1 && c2) ? x : (c1 ? y : z)
  if (const auto *T = dyn_cast<IteExpr>(I->thenExpr())) {
    Out.push_back(ite(andE(I->cond(), T->cond()), T->thenExpr(),
                      ite(I->cond(), T->elseExpr(), I->elseExpr())));
  }
  // c1 ? x : (c2 ? y : z) -> (c1 || c2) ? (c1 ? x : y) : z
  if (const auto *F = dyn_cast<IteExpr>(I->elseExpr())) {
    Out.push_back(ite(orE(I->cond(), F->cond()),
                      ite(I->cond(), I->thenExpr(), F->thenExpr()),
                      F->elseExpr()));
  }
  // Boolean-typed conditional: c ? x : y -> (c && x) || (!c && y)
  if (I->type() == Type::Bool)
    Out.push_back(orE(andE(I->cond(), I->thenExpr()),
                      andE(notE(I->cond()), I->elseExpr())));
}

void ruleIteAddBare(const ExprRef &E, std::vector<ExprRef> &Out) {
  // ite(c, x + y, x) -> x + ite(c, y, 0): arithmetizes guarded increments
  // (count-1's, max-block-1) so the increment becomes a pure part.
  const auto *I = dyn_cast<IteExpr>(E);
  if (!I || I->type() != Type::Int)
    return;
  auto tryArm = [&](const ExprRef &AddSide, const ExprRef &BareSide,
                    bool AddIsThen) {
    const auto *A = asBinary(AddSide, BinaryOp::Add);
    if (!A)
      return;
    auto emit = [&](const ExprRef &Common, const ExprRef &Guarded) {
      ExprRef Inc = AddIsThen ? ite(I->cond(), Guarded, intConst(0))
                              : ite(I->cond(), intConst(0), Guarded);
      Out.push_back(add(Common, Inc));
    };
    if (exprEquals(A->lhs(), BareSide))
      emit(A->lhs(), A->rhs());
    if (exprEquals(A->rhs(), BareSide))
      emit(A->rhs(), A->lhs());
  };
  tryArm(I->thenExpr(), I->elseExpr(), /*AddIsThen=*/true);
  tryArm(I->elseExpr(), I->thenExpr(), /*AddIsThen=*/false);
}

void ruleCondSplit(const ExprRef &E, std::vector<ExprRef> &Out) {
  // ite(a && b, x, y) -> ite(a, ite(b, x, y), y)   (both operand orders)
  // ite(a || b, x, y) -> ite(a, x, ite(b, x, y))
  // Pulls an unknown-bearing conjunct to its own conditional level so the
  // remaining test becomes a pure part.
  const auto *I = dyn_cast<IteExpr>(E);
  if (!I)
    return;
  if (const auto *C = asBinary(I->cond(), BinaryOp::And)) {
    Out.push_back(ite(C->lhs(), ite(C->rhs(), I->thenExpr(), I->elseExpr()),
                      I->elseExpr()));
    Out.push_back(ite(C->rhs(), ite(C->lhs(), I->thenExpr(), I->elseExpr()),
                      I->elseExpr()));
  }
  if (const auto *C = asBinary(I->cond(), BinaryOp::Or)) {
    Out.push_back(ite(C->lhs(), I->thenExpr(),
                      ite(C->rhs(), I->thenExpr(), I->elseExpr())));
    Out.push_back(ite(C->rhs(), I->thenExpr(),
                      ite(C->lhs(), I->thenExpr(), I->elseExpr())));
  }
}

void ruleMinMaxOfIte(const ExprRef &E, std::vector<ExprRef> &Out) {
  // ite(a cmp b, a, b) <-> min/max(a, b): connects source-level conditional
  // idioms to the min/max algebra.
  if (const auto *I = dyn_cast<IteExpr>(E)) {
    const auto *C = dyn_cast<BinaryExpr>(I->cond());
    if (!C || !isOrderCompare(C->op()) || I->type() != Type::Int)
      return;
    bool CondSelectsGreater = isGeLike(C->op());
    if (exprEquals(C->lhs(), I->thenExpr()) &&
        exprEquals(C->rhs(), I->elseExpr()))
      Out.push_back(binary(CondSelectsGreater ? BinaryOp::Max : BinaryOp::Min,
                           I->thenExpr(), I->elseExpr()));
    if (exprEquals(C->lhs(), I->elseExpr()) &&
        exprEquals(C->rhs(), I->thenExpr()))
      Out.push_back(binary(CondSelectsGreater ? BinaryOp::Min : BinaryOp::Max,
                           I->thenExpr(), I->elseExpr()));
    return;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (B->op() == BinaryOp::Max)
      Out.push_back(ite(ge(B->lhs(), B->rhs()), B->lhs(), B->rhs()));
    else if (B->op() == BinaryOp::Min)
      Out.push_back(ite(le(B->lhs(), B->rhs()), B->lhs(), B->rhs()));
  }
}

//===----------------------------------------------------------------------===//
// Engine.
//===----------------------------------------------------------------------===//

/// Rebuilds \p E with child \p Index replaced by \p NewChild.
ExprRef replaceChild(const ExprRef &E, size_t Index, const ExprRef &NewChild) {
  switch (E->kind()) {
  case ExprKind::SeqAccess: {
    const auto *S = cast<SeqAccessExpr>(E);
    assert(Index == 0 && "sequence access has one child");
    return SeqAccessExpr::get(S->seqName(), S->type(), NewChild);
  }
  case ExprKind::Unary:
    assert(Index == 0 && "unary has one child");
    return UnaryExpr::get(cast<UnaryExpr>(E)->op(), NewChild);
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Index == 0 ? BinaryExpr::get(B->op(), NewChild, B->rhs())
                      : BinaryExpr::get(B->op(), B->lhs(), NewChild);
  }
  case ExprKind::Ite: {
    const auto *I = cast<IteExpr>(E);
    if (Index == 0)
      return IteExpr::get(NewChild, I->thenExpr(), I->elseExpr());
    if (Index == 1)
      return IteExpr::get(I->cond(), NewChild, I->elseExpr());
    return IteExpr::get(I->cond(), I->thenExpr(), NewChild);
  }
  default:
    assert(false && "leaf has no children");
    return E;
  }
}

void collectRewrites(const ExprRef &E, const std::vector<RewriteRule> &Rules,
                     std::vector<ExprRef> &Out,
                     std::vector<uint64_t> *RuleHits) {
  for (size_t R = 0; R != Rules.size(); ++R) {
    size_t Before = Out.size();
    Rules[R].Apply(E, Out);
    if (RuleHits)
      (*RuleHits)[R] += Out.size() - Before;
  }
  std::vector<ExprRef> Kids = children(E);
  for (size_t I = 0; I != Kids.size(); ++I) {
    std::vector<ExprRef> ChildRewrites;
    // Rule attribution happens at the child's own root; the parent wrap
    // below is not a fresh application.
    collectRewrites(Kids[I], Rules, ChildRewrites, RuleHits);
    for (const ExprRef &NewChild : ChildRewrites)
      Out.push_back(replaceChild(E, I, NewChild));
  }
}

} // namespace

const std::vector<RewriteRule> &parsynt::figure6Rules() {
  static const std::vector<RewriteRule> Rules = {
      {"commute", ruleCommute},
      {"associate", ruleAssociate},
      {"add-over-minmax", ruleDistributeAddOverMinMax},
      {"factor-add-minmax", ruleFactorAddOutOfMinMax},
      {"mul-distribute", ruleDistributeMul},
      {"bool-distribute", ruleBoolDistribute},
      {"neg-push", ruleNeg},
      {"sub-addneg", ruleSubAddNeg},
      {"compare-shift", ruleCompareShift},
      {"compare-minmax-expand", ruleCompareMinMaxExpand},
      {"compare-minmax-factor", ruleCompareMinMaxFactor},
      {"not-push", ruleNotPush},
      {"ite-distribute", ruleIteDistribute},
      {"ite-factor", ruleIteFactor},
      {"ite-nest", ruleIteNest},
      {"ite-add-bare", ruleIteAddBare},
      {"cond-split", ruleCondSplit},
      {"minmax-ite", ruleMinMaxOfIte},
  };
  return Rules;
}

std::vector<ExprRef>
parsynt::allRewrites(const ExprRef &E, const std::vector<RewriteRule> &Rules) {
  std::vector<ExprRef> Raw;
  collectRewrites(E, Rules, Raw, /*RuleHits=*/nullptr);
  std::vector<ExprRef> Result;
  std::unordered_set<std::string> Seen;
  Result.reserve(Raw.size());
  for (const ExprRef &Candidate : Raw) {
    ExprRef Simplified = simplify(Candidate);
    if (Seen.insert(exprToString(Simplified)).second)
      Result.push_back(std::move(Simplified));
  }
  return Result;
}

std::vector<ExprRef>
parsynt::allRewrites(const ExprRef &E, const std::vector<RewriteRule> &Rules,
                     std::vector<uint64_t> &RuleHits) {
  std::vector<ExprRef> Raw;
  collectRewrites(E, Rules, Raw, &RuleHits);
  std::vector<ExprRef> Result;
  std::unordered_set<std::string> Seen;
  Result.reserve(Raw.size());
  for (const ExprRef &Candidate : Raw) {
    ExprRef Simplified = simplify(Candidate);
    if (Seen.insert(exprToString(Simplified)).second)
      Result.push_back(std::move(Simplified));
  }
  return Result;
}
