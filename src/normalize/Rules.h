//===- normalize/Rules.h - Figure-6 rewrite rules ---------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algebraic rewrite-rule set R of paper Section 6.1 (Figure 6), with
/// both directions of each equality materialized where the paper's table
/// lists only one for brevity. Rules are semantics-preserving for every
/// environment; rules that hold only under invariants are deliberately
/// excluded, exactly as in the paper (this exclusion is what makes
/// max-block-1 lose one of its two auxiliaries — Table 1's footnote).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_NORMALIZE_RULES_H
#define PARSYNT_NORMALIZE_RULES_H

#include "ir/Expr.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace parsynt {

/// A rewrite rule: applied at the root of an expression, appends every
/// possible rewriting to \p Out (a rule may fire in several ways, e.g.
/// associativity on either operand).
struct RewriteRule {
  std::string Name;
  std::function<void(const ExprRef &E, std::vector<ExprRef> &Out)> Apply;
};

/// The full Figure-6 rule set.
const std::vector<RewriteRule> &figure6Rules();

/// All single-step rewrites of \p E: every rule at every position. Results
/// are simplified (normalize/Simplify.h) and deduplicated.
std::vector<ExprRef> allRewrites(const ExprRef &E,
                                 const std::vector<RewriteRule> &Rules);

/// As above, additionally attributing raw (pre-dedup) rewrite productions
/// to rules: RuleHits[i] is incremented once per rewriting produced by
/// Rules[i] at any position. \p RuleHits must be sized to Rules.size();
/// the normalizer aggregates these into per-rule metrics and span
/// attributes.
std::vector<ExprRef> allRewrites(const ExprRef &E,
                                 const std::vector<RewriteRule> &Rules,
                                 std::vector<uint64_t> &RuleHits);

} // namespace parsynt

#endif // PARSYNT_NORMALIZE_RULES_H
