//===- normalize/Normalizer.cpp - Cost-directed normalization -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "normalize/Normalizer.h"
#include "normalize/Simplify.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"

#include <queue>
#include <unordered_set>

using namespace parsynt;

namespace {

/// Search node ordering: cost first (Definition 6.1), then size, so that of
/// two expressions with the unknowns equally placed, the shorter is
/// preferred.
struct Node {
  ExprRef E;
  ExprCost Cost;
  unsigned Size;
};

struct NodeWorse {
  bool operator()(const Node &A, const Node &B) const {
    if (!(A.Cost == B.Cost))
      return B.Cost < A.Cost;
    return A.Size > B.Size;
  }
};

} // namespace

ExprRef parsynt::normalizeExpr(const ExprRef &E,
                               const std::set<std::string> &Unknowns,
                               const NormalizeOptions &Options,
                               NormalizeStats *Stats) {
  const std::vector<RewriteRule> &Rules = figure6Rules();
  ExprRef Start = simplify(E);
  unsigned SizeCap = Start->size() * Options.SizeFactor + Options.SizeSlack;

  Span BatchSpan("normalizeExpr", trace::Normalize);
  BatchSpan.attr("input_size", uint64_t(Start->size()));
  // Rule hits are accumulated locally across the whole search and flushed
  // to the registry once on exit — the best-first loop stays free of
  // shared-counter traffic.
  std::vector<uint64_t> RuleHits(Rules.size(), 0);

  std::priority_queue<Node, std::vector<Node>, NodeWorse> Frontier;
  std::unordered_set<std::string> Seen;
  Frontier.push({Start, exprCost(Start, Unknowns), Start->size()});
  Seen.insert(exprToString(Start));

  Node Best = Frontier.top();
  if (Stats) {
    Stats->InitialCost = Best.Cost;
    Stats->Expanded = 0;
    Stats->Generated = 1;
  }

  unsigned Expanded = 0;
  while (!Frontier.empty() && Expanded < Options.MaxExpansions) {
    Node Current = Frontier.top();
    Frontier.pop();
    ++Expanded;
    if (Current.Cost < Best.Cost ||
        (Current.Cost == Best.Cost && Current.Size < Best.Size))
      Best = Current;
    for (ExprRef &Neighbor : allRewrites(Current.E, Rules, RuleHits)) {
      if (Neighbor->size() > SizeCap)
        continue;
      std::string Key = exprToString(Neighbor);
      if (!Seen.insert(std::move(Key)).second)
        continue;
      ExprCost Cost = exprCost(Neighbor, Unknowns);
      unsigned Size = Neighbor->size();
      if (Stats)
        ++Stats->Generated;
      Frontier.push({std::move(Neighbor), Cost, Size});
    }
  }

  if (Stats) {
    Stats->Expanded = Expanded;
    Stats->FinalCost = Best.Cost;
  }

  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("normalize.calls").inc();
  M.counter("normalize.expanded").add(Expanded);
  uint64_t TotalHits = 0;
  for (size_t R = 0; R != Rules.size(); ++R) {
    TotalHits += RuleHits[R];
    if (RuleHits[R])
      M.counter("normalize.rule." + Rules[R].Name).add(RuleHits[R]);
  }
  M.counter("normalize.rule_hits").add(TotalHits);
  BatchSpan.attr("expanded", uint64_t(Expanded));
  BatchSpan.attr("rule_hits", TotalHits);
  BatchSpan.attr("output_size", uint64_t(Best.E->size()));
  return Best.E;
}
