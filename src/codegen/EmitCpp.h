//===- codegen/EmitCpp.h - Parallel C++ code emission -----------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the synthesized divide-and-conquer program as a standalone,
/// compilable C++17 source file — the counterpart of the paper's generated
/// TBB code ("transforming our solutions into a TBB-based implementation
/// became a simple mechanical task", Section 8.2). The emitted file
/// contains:
///
///   - a `State` struct (one field per (lifted) state variable),
///   - `init()`, `step(State&, ...)` (one loop iteration),
///   - `leaf(first, last, ...)` (the sequential run over a chunk),
///   - `join(const State&, const State&)` (the synthesized operator),
///   - `parallel_run(...)` — the divide-and-conquer driver, running on the
///     same header-only work-stealing runtime (`runtime/ParallelReduce.h`)
///     as `InterpReduce` and the benchmarks, and
///   - a `main` that checks the parallel result against the sequential
///     loop on random data.
///
/// The generated file compiles with any C++17 compiler given the parsynt
/// headers on the include path:
///   g++ -O2 -std=c++17 -pthread -I <parsynt>/src out.cpp
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_CODEGEN_EMITCPP_H
#define PARSYNT_CODEGEN_EMITCPP_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace parsynt {

struct EmitCppOptions {
  /// Grain size baked into the generated driver.
  size_t Grain = 50000;
  /// Elements used by the generated main's self-check.
  size_t SelfCheckElements = 1 << 20;
};

/// Renders the complete C++ translation unit for \p L and its synthesized
/// \p Join components.
std::string emitParallelCpp(const Loop &L, const std::vector<ExprRef> &Join,
                            const EmitCppOptions &Options = {});

} // namespace parsynt

#endif // PARSYNT_CODEGEN_EMITCPP_H
