//===- lift/Lift.cpp - Homomorphic lifting (Algorithm 1) ------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lift/Lift.h"
#include "analysis/Verifier.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "ir/ExprOps.h"
#include "lift/NormalForms.h"
#include "lift/Unfold.h"
#include "normalize/Simplify.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"
#include "support/Random.h"

#include <algorithm>

#include <chrono>
#include <set>
#include <sstream>

using namespace parsynt;

namespace {

/// True if \p E references any symbolic unknown ("v@0").
bool hasUnknown(const ExprRef &E) {
  return containsVarClass(E, VarClass::Unknown);
}

/// True if \p E references a per-step input ("s@k").
bool hasStepInput(const ExprRef &E) {
  bool Found = false;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      if (V->varClass() == VarClass::Input &&
          V->name().find('@') != std::string::npos)
        Found = true;
  });
  return Found;
}

/// Collects the maximal unknown-free subexpressions of \p E that read at
/// least one per-step input (the 'collect' of Algorithm 1). Integer
/// literals adjacent to unknowns are also collected: a literal that varies
/// across unfoldings is a constant-family accumulator (atoi's power of the
/// base); non-varying literals are filtered by the caller.
void collectParts(const ExprRef &E, std::vector<ExprRef> &Out) {
  if (!hasUnknown(E)) {
    if (hasStepInput(E) || isa<IntConstExpr>(E))
      Out.push_back(E);
    return;
  }
  for (const ExprRef &Child : children(E))
    collectParts(Child, Out);
}

/// True if \p Part occurs (structurally) in \p Parts.
bool partPresent(const ExprRef &Part, const std::vector<ExprRef> &Parts) {
  for (const ExprRef &P : Parts)
    if (exprEquals(Part, P))
      return true;
  return false;
}

/// One sampled concrete scenario: parameter values plus K elements per
/// sequence, with the derived bindings for the per-step input variables.
struct Frame {
  Env Bindings; ///< params + every "<seq>@k"
  SeqEnv Seqs;  ///< the same elements as indexable sequences
  Env Params;
};

/// The lifting engine. Owns the unfoldings, the sampled frames, and the
/// evolving lifted loop.
class Lifter {
public:
  Lifter(const Loop &Input, const LiftOptions &Options)
      : Options(Options), R(Options.Seed) {
    Work = materializeIndex(Input);
    Result.IndexMaterialized = Work.Equations.size() > Input.Equations.size();
    if (Result.IndexMaterialized)
      Result.Notes.push_back(
          "loop reads its index; materialized position accumulator '_pos'");
    K = Options.Unfoldings;
    buildElementPool();
    buildFrames();
    {
      Span U("unfold", trace::Lift);
      U.attr("from", "init");
      U.attr("depth", uint64_t(K));
      FromInit = unfoldLoop(Work, K, /*FromUnknowns=*/false, limits());
      U.attr("exceeded", FromInit.Exceeded);
    }
    noteIfExceeded("from-initialization");
  }

  LiftResult run();

private:
  void buildElementPool();
  void buildFrames();

  UnfoldLimits limits() const { return {Options.MaxExprNodes}; }

  /// Records a BudgetExhausted failure (and aborts further discovery) when
  /// the last unfolding hit the node ceiling.
  void noteIfExceeded(const char *Which) {
    if (!FromInit.Exceeded || Aborted)
      return;
    Aborted = true;
    Result.Failure = {
        FailureKind::BudgetExhausted,
        std::string("unfolding (") + Which + ") exceeded the " +
            std::to_string(Options.MaxExprNodes) +
            "-node expression ceiling at step " +
            std::to_string(FromInit.Steps + 1) +
            "; the loop's updates grow too fast to lift at this depth"};
  }

  /// Evaluates \p E (over step inputs + params) in frame \p F.
  Value evalInFrame(const ExprRef &E, const Frame &F) const {
    return evalExpr(E, F.Bindings);
  }

  /// Semantic equality of two step-input expressions over all frames.
  bool equivOnFrames(const ExprRef &A, const ExprRef &B) const {
    if (A->type() != B->type())
      return false;
    for (const Frame &F : Frames)
      if (evalInFrame(A, F) != evalInFrame(B, F))
        return false;
    return true;
  }

  /// True if \p Part is semantically the step-\p Step value of an existing
  /// state variable or discovered auxiliary.
  bool isCovered(const ExprRef &Part, unsigned Step) const;

  /// Folding: rewrites the step-\p Step expression \p Part over
  /// {aux, state vars, s[i], params}. Returns null on failure. \p MatchedPrev
  /// receives the step-(Step-1) expression the auxiliary reference stands
  /// for (null if the fold needed no auxiliary reference).
  ExprRef foldBack(const ExprRef &Part, unsigned Step, Type AuxTy,
                   const std::vector<ExprRef> &PrevParts,
                   ExprRef &MatchedPrev) const;

  /// Simulates the accumulator (Update=G, Init=C) alongside the loop on
  /// every frame and checks it reproduces \p Part at step \p Step (and
  /// \p Prev at Step-1 when non-null). When \p Step < K, the accumulator's
  /// step-K value must additionally coincide with one of the step-K
  /// collected parts (\p PartsAtK) — a family that stops matching at later
  /// unfoldings was mis-folded, so reject it (this kills "memoryless"
  /// mis-generalizations that happen to agree at a single step).
  bool validateAccumulator(const ExprRef &G, const ExprRef &C,
                           const ExprRef &Part, unsigned Step,
                           const ExprRef &Prev,
                           const std::vector<ExprRef> &PartsAtK) const;

  /// Tries to derive a full accumulator for \p Part at \p Step; on success
  /// registers it (extending Work and FromInit) and returns true.
  bool deriveAccumulator(const ExprRef &Part, unsigned Step,
                         const std::vector<ExprRef> &PrevParts,
                         const std::vector<ExprRef> &PartsAtK);

  /// Adds the guarded first-step fallback: ite(<at-start>, E1, G).
  ExprRef guardedUpdate(const ExprRef &G, const ExprRef &Part, unsigned Step,
                        const std::vector<ExprRef> &PrevParts,
                        const std::vector<ExprRef> &PartsAtK);

  /// Registers the accumulator as a new equation of Work.
  void registerAux(const ExprRef &Definition, const ExprRef &Update,
                   const ExprRef &Init);

  LiftOptions Options;
  Rng R;
  Loop Work; ///< input + materialized index + discovered auxiliaries
  /// Set when an unfolding hit the node ceiling; discovery stops.
  bool Aborted = false;
  unsigned K = 3;
  std::vector<int64_t> Pool;
  std::vector<Frame> Frames;
  Unfolding FromInit; ///< of Work, refreshed when an auxiliary is added
  LiftResult Result;
};

void Lifter::buildElementPool() {
  std::set<int64_t> PoolSet = {-2, -1, 0, 1, 2, 3};
  for (const Equation &Eq : Work.Equations) {
    forEachNode(Eq.Update, [&](const ExprRef &Node) {
      if (const auto *C = dyn_cast<IntConstExpr>(Node)) {
        if (std::abs(C->value()) > 1000)
          return;
        PoolSet.insert(C->value());
        PoolSet.insert(C->value() + 1);
        PoolSet.insert(C->value() - 1);
      }
    });
  }
  Pool.assign(PoolSet.begin(), PoolSet.end());
}

void Lifter::buildFrames() {
  for (unsigned N = 0; N != Options.Samples; ++N) {
    Frame F;
    for (const ParamDecl &P : Work.Params) {
      Value V = P.Ty == Type::Int ? Value::ofInt(R.intIn(-3, 3))
                                  : Value::ofBool(R.flip());
      F.Params[P.Name] = V;
      F.Bindings[P.Name] = V;
    }
    for (const SeqDecl &S : Work.Sequences) {
      std::vector<Value> Elems;
      for (unsigned Step = 1; Step <= K; ++Step) {
        Value V = Value::ofInt(Pool[R.index(Pool.size())]);
        Elems.push_back(V);
        F.Bindings[stepInputName(S.Name, Step)] = V;
      }
      F.Seqs[S.Name] = std::move(Elems);
    }
    Frames.push_back(std::move(F));
  }
}

bool Lifter::isCovered(const ExprRef &Part, unsigned Step) const {
  for (const Equation &Eq : Work.Equations) {
    const auto &Values = FromInit.ValuesAtStep.at(Eq.Name);
    if (Values.size() <= Step)
      continue; // truncated unfolding (node ceiling)
    const ExprRef &AtStep = Values[Step];
    if (AtStep->type() == Part->type() && equivOnFrames(Part, AtStep))
      return true;
  }
  return false;
}

ExprRef Lifter::foldBack(const ExprRef &Part, unsigned Step, Type AuxTy,
                         const std::vector<ExprRef> &PrevParts,
                         ExprRef &MatchedPrev) const {
  // Whole-term matches, in priority order.
  if (Part->type() == AuxTy) {
    for (const ExprRef &Prev : PrevParts) {
      if (Prev->type() == AuxTy && equivOnFrames(Part, Prev)) {
        MatchedPrev = Prev;
        return stateVar("?aux", AuxTy);
      }
    }
  }
  for (const SeqDecl &S : Work.Sequences) {
    if (Part->type() == S.ElemTy &&
        equivOnFrames(Part, inputVar(stepInputName(S.Name, Step), S.ElemTy)))
      return seqAccess(S.Name, inputVar(Work.IndexName, Type::Int), S.ElemTy);
  }
  for (const Equation &Eq : Work.Equations) {
    if (Eq.Ty != Part->type())
      continue;
    const auto &Values = FromInit.ValuesAtStep.at(Eq.Name);
    if (Values.size() < Step)
      continue; // truncated unfolding (node ceiling)
    if (equivOnFrames(Part, Values[Step - 1]))
      return stateVar(Eq.Name, Eq.Ty);
  }
  for (const Equation &Eq : Work.Equations) {
    if (Eq.Ty != Part->type())
      continue;
    const auto &Values = FromInit.ValuesAtStep.at(Eq.Name);
    if (Values.size() <= Step)
      continue;
    // Step-k value of a state variable: inline its update expression (the
    // accumulator reads the pre-update state, so the update is evaluated in
    // place).
    if (equivOnFrames(Part, Values[Step]))
      return Eq.Update;
  }

  switch (Part->kind()) {
  case ExprKind::IntConst:
  case ExprKind::BoolConst:
    return Part;
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(Part);
    // Parameters survive; unmatched step inputs are a fold failure.
    if (V->name().find('@') == std::string::npos)
      return Part;
    return nullptr;
  }
  default:
    break;
  }

  // Recurse into children; any child failure aborts the fold.
  bool Failed = false;
  ExprRef Rebuilt = mapChildren(Part, [&](const ExprRef &Child) -> ExprRef {
    ExprRef Folded =
        foldBack(Child, Step, AuxTy, PrevParts, MatchedPrev);
    if (!Folded) {
      Failed = true;
      return Child; // placeholder; result discarded
    }
    return Folded;
  });
  return Failed ? nullptr : Rebuilt;
}

bool Lifter::validateAccumulator(const ExprRef &G, const ExprRef &C,
                                 const ExprRef &Part, unsigned Step,
                                 const ExprRef &Prev,
                                 const std::vector<ExprRef> &PartsAtK) const {
  // Future-consistency candidates: the accumulator's step-K value must
  // match the *same* step-K part on every frame.
  std::vector<const ExprRef *> FutureCandidates;
  if (Step < K)
    for (const ExprRef &P : PartsAtK)
      if (P->type() == Part->type())
        FutureCandidates.push_back(&P);

  for (const Frame &F : Frames) {
    // Run the loop (with the candidate accumulator alongside) on the frame.
    Env Vars = F.Params;
    for (const Equation &Eq : Work.Equations)
      Vars[Eq.Name] = evalExpr(Eq.Init, F.Params);
    Vars["?aux"] = evalExpr(C, F.Params);
    for (unsigned J = 1; J <= K; ++J) {
      Vars[Work.IndexName] = Value::ofInt(J - 1);
      Env Next = Vars;
      for (const Equation &Eq : Work.Equations)
        Next[Eq.Name] = evalExpr(Eq.Update, Vars, F.Seqs);
      Next["?aux"] = evalExpr(G, Vars, F.Seqs);
      Vars = std::move(Next);
      if (J == Step - 1 && Prev && Vars.at("?aux") != evalInFrame(Prev, F))
        return false;
      if (J == Step && Vars.at("?aux") != evalInFrame(Part, F))
        return false;
      if (J == K && Step < K) {
        const Value &AtK = Vars.at("?aux");
        std::erase_if(FutureCandidates, [&](const ExprRef *Candidate) {
          return evalInFrame(*Candidate, F) != AtK;
        });
        if (FutureCandidates.empty())
          return false;
      }
    }
  }
  return true;
}

ExprRef Lifter::guardedUpdate(const ExprRef &G, const ExprRef &Part,
                              unsigned Step,
                              const std::vector<ExprRef> &PrevParts,
                              const std::vector<ExprRef> &PartsAtK) {
  // Fold the family's first-step expression over the step-1 frame. Use the
  // step-(Step-1) member if the family is flat, otherwise Part itself at
  // step 1 is unavailable and the guarded form does not apply.
  ExprRef E1;
  for (const ExprRef &Prev : PrevParts) {
    if (Prev->type() != Part->type())
      continue;
    ExprRef Ignored;
    if (ExprRef Folded = foldBack(Prev, 1, Part->type(), {}, Ignored)) {
      E1 = Folded;
      break;
    }
  }
  if (!E1) {
    ExprRef Ignored;
    E1 = foldBack(Part, 1, Part->type(), {}, Ignored);
  }
  if (!E1 || E1->type() != Part->type())
    return nullptr;

  // Guard candidates: "<state> == <literal init>" for each state variable
  // with a literal initial value (e.g. prev == MIN_INT before the first
  // element).
  std::vector<ExprRef> Guards;
  for (const Equation &Eq : Work.Equations) {
    if (isa<IntConstExpr>(Eq.Init) || isa<BoolConstExpr>(Eq.Init))
      Guards.push_back(eq(stateVar(Eq.Name, Eq.Ty), Eq.Init));
  }
  ExprRef InitCand =
      Part->type() == Type::Int ? intConst(0) : boolConst(false);
  for (const ExprRef &Guard : Guards) {
    ExprRef Candidate = ite(Guard, E1, G);
    if (validateAccumulator(Candidate, InitCand, Part, Step, nullptr,
                            PartsAtK))
      return Candidate;
  }

  // Last resort: guard on the explicit position accumulator, materializing
  // it on demand (the paper's TBB backend gets the global index for free;
  // in the offset-free model position knowledge is itself an accumulator).
  if (!Work.findEquation("_pos")) {
    Equation Pos;
    Pos.Name = "_pos";
    Pos.Ty = Type::Int;
    Pos.Init = intConst(0);
    Pos.Update = add(stateVar("_pos", Type::Int), intConst(1));
    Pos.IsAuxiliary = true;
    Work.Equations.push_back(std::move(Pos));
    FromInit = unfoldLoop(Work, K, /*FromUnknowns=*/false, limits());
    noteIfExceeded("position-guard refresh");
    Result.Notes.push_back("materialized '_pos' for a start-guarded "
                           "accumulator");
    ExprRef Guard = eq(stateVar("_pos", Type::Int), intConst(0));
    ExprRef Candidate = ite(Guard, E1, G);
    if (!Aborted && validateAccumulator(Candidate, InitCand, Part, Step,
                                        nullptr, PartsAtK))
      return Candidate;
    // Undo: the guard did not validate.
    Work.Equations.pop_back();
    FromInit = unfoldLoop(Work, K, /*FromUnknowns=*/false, limits());
    Result.Notes.pop_back();
  }
  return nullptr;
}

void Lifter::registerAux(const ExprRef &Definition, const ExprRef &Update,
                         const ExprRef &Init) {
  std::string Name = "aux" + std::to_string(Result.Auxiliaries.size());
  Substitution Subst;
  Subst["?aux"] = stateVar(Name, Definition->type());
  ExprRef Renamed = substitute(Update, Subst);

  Equation Eq;
  Eq.Name = Name;
  Eq.Ty = Definition->type();
  Eq.Init = Init;
  Eq.Update = Renamed;
  Eq.IsAuxiliary = true;
  Work.Equations.push_back(Eq);

  Result.Auxiliaries.push_back({Name, Eq.Ty, Definition, Renamed, Init});
  // Refresh the from-initialization unfolding so later coverage checks see
  // the new accumulator.
  {
    Span U("unfold", trace::Lift);
    U.attr("from", "aux-refresh");
    U.attr("aux", Name);
    U.attr("depth", uint64_t(K));
    FromInit = unfoldLoop(Work, K, /*FromUnknowns=*/false, limits());
    U.attr("exceeded", FromInit.Exceeded);
  }
  noteIfExceeded("auxiliary refresh");
}

bool Lifter::deriveAccumulator(const ExprRef &Part, unsigned Step,
                               const std::vector<ExprRef> &PrevParts,
                               const std::vector<ExprRef> &PartsAtK) {
  // Constant families (atoi's 10, 100, 1000, ...): geometric or arithmetic
  // progressions against the previous step's literals.
  if (const auto *PartC = dyn_cast<IntConstExpr>(Part)) {
    ExprRef AuxVar = stateVar("?aux", Type::Int);
    for (const ExprRef &Prev : PrevParts) {
      const auto *PrevC = dyn_cast<IntConstExpr>(Prev);
      if (!PrevC || PrevC->value() == PartC->value())
        continue;
      std::vector<ExprRef> Updates;
      if (PrevC->value() != 0 && PartC->value() % PrevC->value() == 0)
        Updates.push_back(
            mul(AuxVar, intConst(PartC->value() / PrevC->value())));
      Updates.push_back(
          add(AuxVar, intConst(PartC->value() - PrevC->value())));
      for (const ExprRef &G : Updates) {
        for (int64_t C0 : {int64_t(1), int64_t(0), int64_t(-1)}) {
          if (validateAccumulator(G, intConst(C0), Part, Step, Prev,
                                  PartsAtK)) {
            registerAux(Part, G, intConst(C0));
            return true;
          }
        }
      }
    }
    return false;
  }

  ExprRef MatchedPrev;
  ExprRef G = foldBack(Part, Step, Part->type(), PrevParts, MatchedPrev);
  if (!G)
    return false;
  G = simplify(G);

  // Initial-value menu (paper: auxiliary accumulators are initialized with
  // neutral constants; the menu covers the identities of the operators in
  // the grammar).
  std::vector<ExprRef> InitMenu;
  if (Part->type() == Type::Int) {
    switch (Options.Preference) {
    case InitPreference::ZeroFirst:
      InitMenu = {intConst(0), intConst(1), intConst(-1),
                  intConst(MinIntSentinel), intConst(MaxIntSentinel)};
      break;
    case InitPreference::MaxFirst:
      InitMenu = {intConst(MaxIntSentinel), intConst(MinIntSentinel),
                  intConst(0), intConst(1), intConst(-1)};
      break;
    case InitPreference::MinFirst:
      InitMenu = {intConst(MinIntSentinel), intConst(MaxIntSentinel),
                  intConst(0), intConst(1), intConst(-1)};
      break;
    }
  } else {
    InitMenu = {boolConst(false), boolConst(true)};
  }
  for (const ExprRef &C : InitMenu) {
    if (validateAccumulator(G, C, Part, Step, MatchedPrev, PartsAtK)) {
      registerAux(Part, G, C);
      return true;
    }
  }
  // Initialization-dependent accumulator (e.g. "first element"): guard the
  // first step.
  if (ExprRef Guarded = guardedUpdate(G, Part, Step, PrevParts, PartsAtK)) {
    registerAux(Part, Guarded,
                Part->type() == Type::Int ? intConst(0) : boolConst(false));
    return true;
  }
  return false;
}

LiftResult Lifter::run() {
  auto StartTime = std::chrono::steady_clock::now();
  auto finish = [&]() -> LiftResult {
    Result.Lifted = Work;
    Result.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      StartTime)
            .count();
    return Result;
  };

  // The constructor's from-initialization unfolding already hit the node
  // ceiling: nothing can be discovered at this depth.
  if (Aborted)
    return finish();

  // Unfold the *input* part of the loop from the symbolic split state.
  Unfolding FromUnknown;
  {
    Span U("unfold", trace::Lift);
    U.attr("from", "unknowns");
    U.attr("depth", uint64_t(K));
    FromUnknown = unfoldLoop(Work, K, /*FromUnknowns=*/true, limits());
    U.attr("exceeded", FromUnknown.Exceeded);
  }
  if (FromUnknown.Exceeded) {
    Result.Failure = {
        FailureKind::BudgetExhausted,
        "unfolding (from split unknowns) exceeded the " +
            std::to_string(Options.MaxExprNodes) +
            "-node expression ceiling at step " +
            std::to_string(FromUnknown.Steps + 1) +
            "; the loop's updates grow too fast to lift at this depth"};
    return finish();
  }

  std::set<std::string> Unknowns;
  for (const Equation &Eq : Work.Equations)
    Unknowns.insert(unknownName(Eq.Name));

  // Normalize every unfolding and collect candidate parts per step. The
  // normal forms depend only on the input equations, so they are computed
  // once and reused across fixpoint passes.
  std::vector<Equation> OriginalEqs = Work.Equations; // aux added during run
  // Dependency order: variables whose updates read fewer *other* state
  // variables first (mts before mss), so their accumulators are available
  // when the dependent variable's parts are folded.
  std::stable_sort(OriginalEqs.begin(), OriginalEqs.end(),
                   [](const Equation &A, const Equation &B) {
                     auto OtherReads = [](const Equation &Eq) {
                       size_t Count = 0;
                       for (const std::string &V :
                            collectVars(Eq.Update, VarClass::State))
                         if (V != Eq.Name)
                           ++Count;
                       return Count;
                     };
                     return OtherReads(A) < OtherReads(B);
                   });
  std::map<std::string, std::vector<std::vector<ExprRef>>> PartsByEq;
  for (const Equation &Eq : OriginalEqs) {
    if (Eq.IsAuxiliary)
      continue; // the materialized position accumulator needs no lifting
    Span NormSpan("normalizeUnfoldings", trace::Lift);
    NormSpan.attr("equation", Eq.Name);
    NormSpan.attr("steps", uint64_t(K));
    std::vector<std::vector<ExprRef>> Parts(K + 1);
    for (unsigned Step = 1; Step <= K; ++Step) {
      if (Options.Timeout.expired()) {
        Result.Failure = {FailureKind::Timeout,
                          "lifting deadline expired while normalizing the "
                          "unfoldings of '" +
                              Eq.Name + "'"};
        return finish();
      }
      ExprRef Tau = FromUnknown.ValuesAtStep.at(Eq.Name)[Step];
      // Canonical domain-specific normal forms first; the generic
      // cost-directed search is the fallback.
      ExprRef Ell = tropicalNormalize(Tau, Unknowns);
      if (!Ell)
        Ell = booleanNormalize(Tau, Unknowns);
      if (!Ell)
        Ell = normalizeExpr(Tau, Unknowns, Options.Normalize);
      if (Options.VerifyIR) {
        VerifierReport Report = verifyExpr(Ell, VerifyPhase::AfterNormalize,
                                           /*AllowUnknowns=*/true);
        if (!Report.ok()) {
          // A rewriter bug, not a property of the input: skip the corrupt
          // normal form rather than collecting parts from it.
          Result.Notes.push_back("verifier rejected normal form of " +
                                 Eq.Name + " step " + std::to_string(Step) +
                                 ": " + Report.str());
          continue;
        }
      }
      collectParts(Ell, Parts[Step]);
    }
    PartsByEq.emplace(Eq.Name, std::move(Parts));
  }

  // Fixpoint over the equation system: an accumulator discovered for one
  // variable (e.g. mts's running sum) can be the missing ingredient of a
  // later variable's fold (e.g. mss's max-prefix-sum), so iterate until no
  // pass adds an auxiliary — the 'while Aux != OldAux' of Algorithm 1.
  const unsigned MaxPasses = 4;
  for (unsigned Pass = 0; Pass != MaxPasses && !Aborted; ++Pass) {
    Span PassSpan("fixpointPass", trace::Lift);
    PassSpan.attr("pass", uint64_t(Pass));
    size_t AuxBase = Result.Auxiliaries.size();
    Result.Unresolved.clear();
    bool Changed = false;
    for (const Equation &Eq : OriginalEqs) {
      if (Options.Timeout.expired()) {
        // Keep whatever auxiliaries are already registered: a partially
        // lifted loop is still a valid loop.
        Result.Failure = {FailureKind::Timeout,
                          "lifting deadline expired during accumulator "
                          "discovery (pass " +
                              std::to_string(Pass + 1) + ")"};
        return finish();
      }
      auto PartsIt = PartsByEq.find(Eq.Name);
      if (PartsIt == PartsByEq.end())
        continue;
      const auto &Parts = PartsIt->second;
      for (unsigned Step = 2; Step <= K && !Aborted; ++Step) {
        for (const ExprRef &Part : Parts[Step]) {
          // A literal repeated from the previous step is a fixed constant —
          // always available to a join, never an accumulator.
          if (isa<IntConstExpr>(Part) && partPresent(Part, Parts[Step - 1]))
            continue;
          if (isCovered(Part, Step))
            continue;
          if (deriveAccumulator(Part, Step, Parts[Step - 1], Parts[K]))
            Changed = true;
          else
            Result.Unresolved.push_back(Eq.Name + "@" +
                                        std::to_string(Step) + ": " +
                                        exprToString(Part));
        }
      }
    }
    std::string Discovered;
    for (size_t A = AuxBase; A != Result.Auxiliaries.size(); ++A) {
      if (!Discovered.empty())
        Discovered += ",";
      Discovered += Result.Auxiliaries[A].Name;
    }
    PassSpan.attr("discovered", Discovered);
    PassSpan.attr("changed", Changed);
    if (!Changed)
      break;
  }

  return finish();
}

} // namespace

LiftResult parsynt::liftLoop(const Loop &L, const LiftOptions &Options) {
  Span Root("liftLoop", trace::Lift);
  Root.attr("loop", L.Name.empty() ? "<loop>" : L.Name);
  Root.attr("depth", uint64_t(Options.Unfoldings));
  Root.attr("preference", Options.Preference == InitPreference::ZeroFirst
                              ? "zero-first"
                              : Options.Preference == InitPreference::MaxFirst
                                    ? "max-first"
                                    : "min-first");
  Lifter Engine(L, Options);
  LiftResult Result = Engine.run();
  Root.attr("aux_discovered", uint64_t(Result.auxCount()));
  Root.attr("unresolved", uint64_t(Result.Unresolved.size()));

  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("lift.calls").inc();
  M.counter("lift.aux_discovered").add(Result.auxCount());
  M.counter("lift.unresolved").add(Result.Unresolved.size());
  M.histogram("lift.millis")
      .observe(static_cast<uint64_t>(Result.Seconds * 1e3));
  return Result;
}
