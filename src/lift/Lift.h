//===- lift/Lift.h - Homomorphic lifting (Algorithm 1) ----------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: lifting a non-homomorphic loop to a (constant)
/// homomorphism by discovering auxiliary accumulators.
///
/// For each state variable, the loop body is unfolded symbolically from an
/// unknown initial state (the split point of Figure 5), each unfolding is
/// normalized with the cost-directed rewriter, and the maximal unknown-free
/// subexpressions of the normal form are collected ('collect'). A collected
/// expression that is not already covered — semantically equal, on sampled
/// inputs, to the same-step value of an existing state variable or
/// previously discovered auxiliary — is conjectured as a new auxiliary. Its
/// accumulator update is derived by *folding back*: subterms of the step-k
/// expression are matched (again semantically) against the step-(k-1)
/// auxiliary value, the current element, and the step-(k-1)/step-k values of
/// the state variables, producing an update over {aux, state, s[i]}. The
/// initial value is synthesized from a small constant menu and the whole
/// accumulator is validated by simulation; a guarded first-step form
/// (ite(<at-start>, e1, g)) covers initialization-dependent accumulators
/// such as "first element".
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_LIFT_LIFT_H
#define PARSYNT_LIFT_LIFT_H

#include "ir/Loop.h"
#include "normalize/Normalizer.h"
#include "support/Deadline.h"
#include "support/Failure.h"

#include <string>
#include <vector>

namespace parsynt {

/// Which initial value to prefer for accumulators that validate with more
/// than one (e.g. "last element", whose behaviour on nonempty chunks never
/// depends on the init). The empty-chunk value is what a join sees for an
/// empty divide, so a sentinel init often makes the join expressible.
enum class InitPreference { ZeroFirst, MaxFirst, MinFirst };

struct LiftOptions {
  /// Number of unfoldings inspected (the paper's k; 3 suffices for every
  /// Table-1 benchmark, the pipeline retries with 4 on failure).
  unsigned Unfoldings = 3;
  /// Sampling width for the semantic coverage / validation checks.
  unsigned Samples = 48;
  uint64_t Seed = 0x11f7;
  InitPreference Preference = InitPreference::ZeroFirst;
  /// Verify every normalized unfolding (type consistency, only declared
  /// variables and split-point unknowns). A violating normal form is
  /// skipped — its parts are never collected — instead of feeding corrupt
  /// expressions into accumulator discovery.
  bool VerifyIR = true;
  NormalizeOptions Normalize;
  /// Cooperative cancellation: lifting unwinds with a Timeout failure
  /// (keeping any auxiliaries already discovered) when this expires.
  Deadline Timeout;
  /// Node-count ceiling handed to the unfolder (see UnfoldLimits): an
  /// unfolding whose next step would exceed it aborts the lift attempt
  /// with a BudgetExhausted diagnostic instead of exhausting memory.
  uint64_t MaxExprNodes = 200000;
};

/// A discovered auxiliary accumulator.
struct AuxAccumulator {
  std::string Name;
  Type Ty;
  /// The collected defining expression (over per-step inputs), for reports.
  ExprRef Definition;
  ExprRef Update; ///< over {Name, original state vars, s[i], params}
  ExprRef Init;
};

struct LiftResult {
  /// The lifted loop: the input loop plus one equation per auxiliary (and
  /// the materialized position accumulator when the body reads the index).
  Loop Lifted;
  std::vector<AuxAccumulator> Auxiliaries;
  bool IndexMaterialized = false;
  /// Collected expressions for which no accumulator could be derived
  /// (max-block-1 exercises this path, reproducing Table 1's footnote).
  std::vector<std::string> Unresolved;
  std::vector<std::string> Notes;
  /// Structured failure (Timeout / BudgetExhausted); empty when the lift
  /// ran to completion. Lifted stays a valid loop either way.
  FailureInfo Failure;
  double Seconds = 0;

  /// Number of auxiliary equations in the lifted loop (discovered + the
  /// materialized index, if any) — the Table-1 "#Aux" figure.
  unsigned auxCount() const { return Lifted.auxiliaryCount(); }
};

/// Runs Algorithm 1 on \p L.
LiftResult liftLoop(const Loop &L, const LiftOptions &Options = {});

} // namespace parsynt

#endif // PARSYNT_LIFT_LIFT_H
