//===- lift/NormalForms.cpp - Canonical tropical/boolean forms ------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lift/NormalForms.h"
#include "ir/ExprOps.h"
#include "normalize/Simplify.h"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

using namespace parsynt;

//===----------------------------------------------------------------------===//
// Tropical (max,+) normal form.
//===----------------------------------------------------------------------===//

namespace {

/// A linear combination of atoms plus a constant. Atoms are opaque leaf
/// expressions (variables, sequence steps) keyed by their printed form.
struct Term {
  /// atom key -> (expr, coefficient)
  std::map<std::string, std::pair<ExprRef, int64_t>> Atoms;
  int64_t Constant = 0;

  void addAtom(const ExprRef &E, int64_t Coeff) {
    std::string Key = exprToString(E);
    auto [It, Inserted] = Atoms.emplace(Key, std::make_pair(E, Coeff));
    if (!Inserted)
      It->second.second += Coeff;
    if (It->second.second == 0)
      Atoms.erase(It);
  }

  Term scaled(int64_t Factor) const {
    Term Result;
    Result.Constant = Constant * Factor;
    for (const auto &[Key, AtomCoeff] : Atoms)
      if (AtomCoeff.second * Factor != 0)
        Result.Atoms.emplace(Key, std::make_pair(AtomCoeff.first,
                                                 AtomCoeff.second * Factor));
    return Result;
  }

  Term plus(const Term &Other) const {
    Term Result = *this;
    Result.Constant += Other.Constant;
    for (const auto &[Key, AtomCoeff] : Other.Atoms)
      Result.addAtom(AtomCoeff.first, AtomCoeff.second);
    return Result;
  }

  std::string key() const {
    std::string Result;
    for (const auto &[AtomKey, AtomCoeff] : Atoms)
      Result += AtomKey + "*" + std::to_string(AtomCoeff.second) + "+";
    Result += std::to_string(Constant);
    return Result;
  }
};

/// expr = max(terms). Nullopt when outside the fragment.
using MaxOfSums = std::vector<Term>;

/// Ceiling on the term count of any intermediate max-of-sums. Sums of
/// maxes cross-multiply (|L|×|R| terms), so deeply nested max/+ towers
/// grow exponentially; past the cap the expression is treated as outside
/// the fragment and the caller falls back to the budgeted generic
/// normalizer instead of exhausting memory.
constexpr size_t TropicalTermCap = 4096;

std::optional<MaxOfSums> toMaxOfSums(const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::IntConst: {
    Term T;
    T.Constant = cast<IntConstExpr>(E)->value();
    return MaxOfSums{T};
  }
  case ExprKind::Var:
  case ExprKind::SeqAccess: {
    if (E->type() != Type::Int)
      return std::nullopt;
    Term T;
    T.addAtom(E, 1);
    return MaxOfSums{T};
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Neg)
      return std::nullopt;
    auto Inner = toMaxOfSums(U->operand());
    // Negation flips max into min; only a single term stays in the
    // fragment.
    if (!Inner || Inner->size() != 1)
      return std::nullopt;
    return MaxOfSums{(*Inner)[0].scaled(-1)};
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = toMaxOfSums(B->lhs());
    if (!L)
      return std::nullopt;
    auto R = toMaxOfSums(B->rhs());
    if (!R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOp::Max: {
      if (L->size() + R->size() > TropicalTermCap)
        return std::nullopt;
      MaxOfSums Result = *L;
      Result.insert(Result.end(), R->begin(), R->end());
      return Result;
    }
    case BinaryOp::Add: {
      if (L->size() * R->size() > TropicalTermCap)
        return std::nullopt;
      MaxOfSums Result;
      for (const Term &A : *L)
        for (const Term &C : *R)
          Result.push_back(A.plus(C));
      return Result;
    }
    case BinaryOp::Sub: {
      if (R->size() != 1)
        return std::nullopt;
      MaxOfSums Result;
      for (const Term &A : *L)
        Result.push_back(A.plus((*R)[0].scaled(-1)));
      return Result;
    }
    case BinaryOp::Mul: {
      // Multiplication by a non-negative constant only (a negative factor
      // would flip max into min).
      auto scaleBy = [](const MaxOfSums &Side, int64_t Factor)
          -> std::optional<MaxOfSums> {
        if (Factor < 0)
          return std::nullopt;
        MaxOfSums Result;
        for (const Term &T : Side)
          Result.push_back(T.scaled(Factor));
        return Result;
      };
      if (R->size() == 1 && (*R)[0].Atoms.empty())
        return scaleBy(*L, (*R)[0].Constant);
      if (L->size() == 1 && (*L)[0].Atoms.empty())
        return scaleBy(*R, (*L)[0].Constant);
      return std::nullopt;
    }
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

/// Rebuilds a term as an expression: unknown atoms first (deterministic
/// order), then input atoms, then the constant.
ExprRef termToExpr(const Term &T, const std::set<std::string> &Unknowns) {
  auto atomExpr = [](const std::pair<ExprRef, int64_t> &AtomCoeff) {
    const auto &[Atom, Coeff] = AtomCoeff;
    if (Coeff == 1)
      return Atom;
    if (Coeff == -1)
      return neg(Atom);
    return mul(Atom, intConst(Coeff));
  };
  ExprRef Result;
  auto append = [&](const ExprRef &Piece) {
    Result = Result ? add(Result, Piece) : Piece;
  };
  for (const auto &[Key, AtomCoeff] : T.Atoms) {
    const auto *V = dyn_cast<VarExpr>(AtomCoeff.first);
    if (V && Unknowns.count(V->name()))
      append(atomExpr(AtomCoeff));
  }
  for (const auto &[Key, AtomCoeff] : T.Atoms) {
    const auto *V = dyn_cast<VarExpr>(AtomCoeff.first);
    if (!V || !Unknowns.count(V->name()))
      append(atomExpr(AtomCoeff));
  }
  if (!Result)
    return intConst(T.Constant);
  if (T.Constant != 0)
    Result = add(Result, intConst(T.Constant));
  return Result;
}

/// Canonical order for residual terms: fewer atoms first, then by printed
/// key — prefix-sum families therefore *extend on the right* across
/// unfolding depths, so the step-(k-1) form is a subterm of the step-k form.
bool termLess(const Term &A, const Term &B) {
  if (A.Atoms.size() != B.Atoms.size())
    return A.Atoms.size() < B.Atoms.size();
  return A.key() < B.key();
}

} // namespace

ExprRef parsynt::tropicalNormalize(const ExprRef &E,
                                   const std::set<std::string> &Unknowns) {
  if (E->type() != Type::Int)
    return nullptr;
  auto Terms = toMaxOfSums(E);
  if (!Terms)
    return nullptr;

  // Deduplicate identical terms (max is idempotent).
  std::map<std::string, Term> Unique;
  for (const Term &T : *Terms)
    Unique.emplace(T.key(), T);

  // Group terms by their unknown-atom signature.
  struct Group {
    Term UnknownPart; ///< only the unknown atoms
    std::vector<Term> Residuals;
  };
  std::map<std::string, Group> Groups;
  for (auto &[Key, T] : Unique) {
    Term UnknownPart, Residual;
    Residual.Constant = T.Constant;
    for (const auto &[AtomKey, AtomCoeff] : T.Atoms) {
      const auto *V = dyn_cast<VarExpr>(AtomCoeff.first);
      if (V && Unknowns.count(V->name()))
        UnknownPart.Atoms.emplace(AtomKey, AtomCoeff);
      else
        Residual.Atoms.emplace(AtomKey, AtomCoeff);
    }
    Groups[UnknownPart.key()].UnknownPart = UnknownPart;
    Groups[UnknownPart.key()].Residuals.push_back(std::move(Residual));
  }

  // Rebuild: max over groups; each group is unknowns + max(residuals), with
  // residuals in canonical order, left-associated.
  ExprRef Result;
  auto appendMax = [&](const ExprRef &Piece) {
    Result = Result ? maxE(Result, Piece) : Piece;
  };
  for (auto &[Key, G] : Groups) {
    std::sort(G.Residuals.begin(), G.Residuals.end(), termLess);
    ExprRef ResidualExpr;
    for (const Term &T : G.Residuals) {
      ExprRef TE = termToExpr(T, Unknowns);
      ResidualExpr = ResidualExpr ? maxE(ResidualExpr, TE) : TE;
    }
    if (G.UnknownPart.Atoms.empty()) {
      appendMax(ResidualExpr);
      continue;
    }
    ExprRef UnknownExpr = termToExpr(G.UnknownPart, Unknowns);
    appendMax(add(UnknownExpr, ResidualExpr));
  }
  return Result ? simplify(Result) : nullptr;
}

//===----------------------------------------------------------------------===//
// Boolean CNF normal form.
//===----------------------------------------------------------------------===//

namespace {

/// A literal: an atom (opaque boolean expression) with polarity, keyed by
/// printed form.
struct Literal {
  ExprRef Atom;
  bool Negated = false;
  std::string Key; ///< printed atom (polarity kept separately)

  ExprRef toExpr() const { return Negated ? notE(Atom) : Atom; }
};

/// A clause: disjunction of literals, keyed set-wise.
struct Clause {
  std::map<std::string, Literal> Literals; // key = Key + polarity marker
  bool Tautology = false;

  void add(Literal L) {
    std::string FullKey = (L.Negated ? "!" : "") + L.Key;
    std::string OppositeKey = (L.Negated ? "" : "!") + L.Key;
    if (Literals.count(OppositeKey)) {
      Tautology = true;
      return;
    }
    Literals.emplace(std::move(FullKey), std::move(L));
  }

  std::string key() const {
    std::string Result;
    for (const auto &[K, L] : Literals)
      Result += K + "|";
    return Result;
  }

  /// True if every literal of this clause occurs in \p Other.
  bool subsumes(const Clause &Other) const {
    for (const auto &[K, L] : Literals)
      if (!Other.Literals.count(K))
        return false;
    return true;
  }
};

using Cnf = std::vector<Clause>;

constexpr size_t CnfClauseCap = 256;

/// NNF+CNF conversion. \p Negated tracks an outer negation.
std::optional<Cnf> toCnf(const ExprRef &E, bool Negated) {
  if (const auto *C = dyn_cast<BoolConstExpr>(E)) {
    bool V = C->value() != Negated;
    if (V)
      return Cnf{}; // true: empty conjunction
    Cnf Result(1);  // false: empty clause
    return Result;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() == UnaryOp::Not)
      return toCnf(U->operand(), !Negated);
  }
  if (const auto *I = dyn_cast<IteExpr>(E)) {
    // Boolean conditional: ite(c,t,e) == (!c | t) & (c | e); a negation
    // applies to the branches only (the equivalence absorbs it).
    if (I->type() == Type::Bool && I->cond()->type() == Type::Bool) {
      ExprRef Expanded = andE(orE(notE(I->cond()), I->thenExpr()),
                              orE(I->cond(), I->elseExpr()));
      return toCnf(Expanded, Negated);
    }
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    bool IsAnd = B->op() == BinaryOp::And;
    bool IsOr = B->op() == BinaryOp::Or;
    if (IsAnd || IsOr) {
      // Negation turns and into or (De Morgan).
      bool EffectiveAnd = Negated ? !IsAnd : IsAnd;
      auto L = toCnf(B->lhs(), Negated);
      auto R = toCnf(B->rhs(), Negated);
      if (!L || !R)
        return std::nullopt;
      if (EffectiveAnd) {
        Cnf Result = *L;
        Result.insert(Result.end(), R->begin(), R->end());
        if (Result.size() > CnfClauseCap)
          return std::nullopt;
        return Result;
      }
      // Or: distribute (cross product of clauses).
      if (L->size() * R->size() > CnfClauseCap)
        return std::nullopt;
      Cnf Result;
      for (const Clause &A : *L) {
        for (const Clause &C : *R) {
          Clause Merged = A;
          for (const auto &[K, Lit] : C.Literals)
            Merged.add(Lit);
          Merged.Tautology = Merged.Tautology || A.Tautology || C.Tautology;
          Result.push_back(std::move(Merged));
        }
      }
      return Result;
    }
  }
  // Atom.
  Literal L;
  L.Atom = E;
  L.Negated = Negated;
  L.Key = exprToString(E);
  Clause C;
  C.add(std::move(L));
  return Cnf{C};
}

} // namespace

ExprRef parsynt::booleanNormalize(const ExprRef &E,
                                  const std::set<std::string> &Unknowns) {
  if (E->type() != Type::Bool)
    return nullptr;

  auto atomHasUnknown = [&](const ExprRef &Atom) {
    for (const std::string &Name : collectAllVars(Atom))
      if (Unknowns.count(Name))
        return true;
    return false;
  };

  auto MaybeCnf = toCnf(simplify(E), /*Negated=*/false);
  if (!MaybeCnf)
    return nullptr;

  // The grouping below is only meaningful when every unknown occurrence is
  // a bare boolean variable; composite unknown atoms need the generic
  // arithmetic rewriter instead.
  for (const Clause &C : *MaybeCnf) {
    for (const auto &[K, L] : C.Literals)
      if (atomHasUnknown(L.Atom) && !isa<VarExpr>(L.Atom))
        return nullptr;
  }

  // Drop tautologies, deduplicate, apply subsumption.
  Cnf Clauses;
  std::set<std::string> SeenClause;
  for (Clause &C : *MaybeCnf) {
    if (C.Tautology)
      continue;
    if (SeenClause.insert(C.key()).second)
      Clauses.push_back(std::move(C));
  }
  std::vector<bool> Dead(Clauses.size(), false);
  for (size_t I = 0; I != Clauses.size(); ++I) {
    for (size_t J = 0; J != Clauses.size(); ++J) {
      if (I == J || Dead[I] || Dead[J])
        continue;
      if (Clauses[I].subsumes(Clauses[J]) &&
          Clauses[I].Literals.size() <= Clauses[J].Literals.size())
        Dead[J] = true;
    }
  }

  // Group clauses by their unknown literals: (u | a) & (u | b) = u | (a & b).
  struct Group {
    std::vector<Literal> UnknownLits;
    // Conjunction of pure disjunctions, canonically ordered.
    std::vector<std::pair<std::string, ExprRef>> PureParts;
  };
  std::map<std::string, Group> Groups;
  for (size_t I = 0; I != Clauses.size(); ++I) {
    if (Dead[I])
      continue;
    std::string GroupKey;
    Group Tentative;
    ExprRef PureDisj;
    std::string PureKey;
    for (const auto &[K, L] : Clauses[I].Literals) {
      if (atomHasUnknown(L.Atom)) {
        GroupKey += K + "|";
        Tentative.UnknownLits.push_back(L);
      } else {
        PureDisj = PureDisj ? orE(PureDisj, L.toExpr()) : L.toExpr();
        PureKey += K + "|";
      }
    }
    auto [It, Inserted] = Groups.emplace(GroupKey, std::move(Tentative));
    if (PureDisj)
      It->second.PureParts.emplace_back(PureKey, PureDisj);
    else if (It->second.UnknownLits.empty())
      return boolConst(false); // empty clause: unsatisfiable
  }

  // Rebuild: conjunction over groups of (unknownLits | (pure1 & pure2 ...)),
  // with pure parts canonically ordered and left-associated.
  ExprRef Result;
  auto appendAnd = [&](const ExprRef &Piece) {
    Result = Result ? andE(Result, Piece) : Piece;
  };
  for (auto &[Key, G] : Groups) {
    std::sort(G.PureParts.begin(), G.PureParts.end(),
              [](const auto &A, const auto &B) {
                return A.first.size() != B.first.size()
                           ? A.first.size() < B.first.size()
                           : A.first < B.first;
              });
    ExprRef PureConj;
    for (const auto &[PKey, PE] : G.PureParts)
      PureConj = PureConj ? andE(PureConj, PE) : PE;
    ExprRef GroupExpr = PureConj;
    for (const Literal &L : G.UnknownLits)
      GroupExpr = GroupExpr ? orE(L.toExpr(), GroupExpr) : L.toExpr();
    appendAnd(GroupExpr);
  }
  return Result ? simplify(Result) : boolConst(true);
}
