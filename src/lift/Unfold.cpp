//===- lift/Unfold.cpp - Symbolic loop unfolding ---------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lift/Unfold.h"
#include "ir/ExprOps.h"
#include "normalize/Simplify.h"

using namespace parsynt;

std::string parsynt::unknownName(const std::string &Var) { return Var + "@0"; }

std::string parsynt::stepInputName(const std::string &Seq, unsigned K) {
  return Seq + "@" + std::to_string(K);
}

namespace {

/// True if \p E reads \p Index outside of sequence-subscript positions
/// (s[i] itself does not make a loop index-dependent).
bool readsIndexOutsideSubscripts(const ExprRef &E, const std::string &Index) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return V->name() == Index;
  if (isa<SeqAccessExpr>(E))
    return false;
  for (const ExprRef &Child : children(E))
    if (readsIndexOutsideSubscripts(Child, Index))
      return true;
  return false;
}

} // namespace

bool parsynt::readsIndex(const Loop &L) {
  for (const Equation &Eq : L.Equations)
    if (readsIndexOutsideSubscripts(Eq.Update, L.IndexName))
      return true;
  return false;
}

namespace {

/// Replaces reads of \p Index with \p Replacement, leaving sequence
/// subscripts (which must keep the real iteration index) untouched.
ExprRef replaceIndexReads(const ExprRef &E, const std::string &Index,
                          const ExprRef &Replacement) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return V->name() == Index ? Replacement : E;
  if (isa<SeqAccessExpr>(E))
    return E;
  return mapChildren(E, [&](const ExprRef &Child) {
    return replaceIndexReads(Child, Index, Replacement);
  });
}

} // namespace

Loop parsynt::materializeIndex(const Loop &L) {
  if (!readsIndex(L))
    return L;
  Loop Result = L;
  const char *PosName = "_pos";
  assert(!L.findEquation(PosName) && "position accumulator name collision");
  ExprRef PosVar = stateVar(PosName, Type::Int);
  for (Equation &Eq : Result.Equations)
    Eq.Update = replaceIndexReads(Eq.Update, L.IndexName, PosVar);
  Equation Pos;
  Pos.Name = PosName;
  Pos.Ty = Type::Int;
  Pos.Init = intConst(0);
  Pos.Update = add(stateVar(PosName, Type::Int), intConst(1));
  Pos.IsAuxiliary = true;
  Result.Equations.push_back(std::move(Pos));
  return Result;
}

namespace {

/// Occurrences of state variable \p Name in \p E (substitution sites).
uint64_t countVarUses(const ExprRef &E, const std::string &Name) {
  uint64_t Count = 0;
  forEachNode(E, [&](const ExprRef &Node) {
    if (const auto *V = dyn_cast<VarExpr>(Node))
      if (V->name() == Name)
        ++Count;
  });
  return Count;
}

} // namespace

Unfolding parsynt::unfoldLoop(const Loop &L, unsigned K, bool FromUnknowns,
                              const UnfoldLimits &Limits) {
  assert(!readsIndex(L) &&
         "materializeIndex must be applied before unfolding");
  Unfolding Result;
  Result.Steps = K;

  // Step 0: unknowns or initial values.
  for (const Equation &Eq : L.Equations) {
    ExprRef Start = FromUnknowns ? unknownVar(unknownName(Eq.Name), Eq.Ty)
                                 : Eq.Init;
    Result.ValuesAtStep[Eq.Name].push_back(simplify(Start));
  }

  for (unsigned Step = 1; Step <= K; ++Step) {
    // State-variable substitution: previous step's expressions.
    Substitution Subst;
    for (const Equation &Eq : L.Equations)
      Subst[Eq.Name] = Result.ValuesAtStep[Eq.Name][Step - 1];

    // Exact pre-substitution size of this step: substituting prev_v (size
    // |prev_v|) for each of occ_v occurrences of v in an update of size
    // |Update| yields |Update| + Σ_v occ_v × (|prev_v| − 1) nodes. Cached
    // Expr::size() makes the estimate O(|Update|) — no expression is built
    // only to be thrown away.
    uint64_t StepNodes = 0;
    for (const Equation &Eq : L.Equations) {
      uint64_t Estimate = Eq.Update->size();
      for (const Equation &Prev : L.Equations) {
        uint64_t Occ = countVarUses(Eq.Update, Prev.Name);
        if (Occ)
          Estimate += Occ * (Subst[Prev.Name]->size() - 1);
      }
      StepNodes += Estimate;
    }
    if (StepNodes > Limits.MaxExprNodes) {
      Result.Steps = Step - 1;
      Result.Exceeded = true;
      return Result;
    }

    for (const Equation &Eq : L.Equations) {
      ExprRef Stepped = substitute(Eq.Update, Subst);
      // Sequence reads at this step become fresh inputs "<seq>@Step".
      Stepped = rewriteSeqAccesses(
          Stepped, [&](const SeqAccessExpr &Access) -> ExprRef {
            return inputVar(stepInputName(Access.seqName(), Step),
                            Access.type());
          });
      Result.ValuesAtStep[Eq.Name].push_back(simplify(Stepped));
    }
  }
  return Result;
}
