//===- lift/Unfold.h - Symbolic loop unfolding ------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic unfolding of a loop body, the 'unfold' step of Algorithm 1. The
/// k-th unfolding expresses each state variable's value after k iterations
/// as a closed expression over
///   - the symbolic initial state (the "red" unknowns of Figure 5, named
///     "<var>@0", VarClass::Unknown), or the concrete initial values when
///     unfolding from the loop's own initialization, and
///   - fresh per-step sequence elements "<seq>@k" (VarClass::Input).
///
/// Loops whose body reads the iteration index are first rewritten by
/// materializeIndex(), which turns the index into an ordinary position
/// accumulator; the unfolder itself never sees a free index variable.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_LIFT_UNFOLD_H
#define PARSYNT_LIFT_UNFOLD_H

#include "ir/Loop.h"

#include <map>
#include <string>
#include <vector>

namespace parsynt {

/// Name of the symbolic unknown standing for state variable \p Var at the
/// split point ("var@0").
std::string unknownName(const std::string &Var);

/// Name of the fresh input for sequence \p Seq read at (1-based) step \p K.
std::string stepInputName(const std::string &Seq, unsigned K);

/// Values of every state variable after 0..K iterations.
/// ValuesAtStep[name][k] is the (simplified) expression after k steps.
struct Unfolding {
  std::map<std::string, std::vector<ExprRef>> ValuesAtStep;
  unsigned Steps = 0;
  /// True when the node-count ceiling stopped the unfolding early; Steps
  /// then reports the last fully-built step.
  bool Exceeded = false;
};

/// Growth ceilings for the unfolding. Substitution of step-(k-1) values
/// into the update multiplies expression sizes, so adversarial updates
/// (e.g. v*v) grow doubly-exponentially in k; the ceiling turns "exhaust
/// memory" into a diagnosable abort.
struct UnfoldLimits {
  /// Total node budget across all state variables for one step's
  /// expressions (pre-simplification estimate).
  uint64_t MaxExprNodes = 200000;
};

/// Unfolds \p L for \p K steps. If \p FromUnknowns, the state starts at the
/// symbolic unknowns (continuing the left thread across the split);
/// otherwise at the loop's initialization expressions (the right thread's
/// own run). The loop must not read its index variable (see
/// materializeIndex). A step whose estimated size exceeds
/// \p Limits.MaxExprNodes is not built: the result is truncated at the
/// previous step with Exceeded set.
Unfolding unfoldLoop(const Loop &L, unsigned K, bool FromUnknowns,
                     const UnfoldLimits &Limits = {});

/// If any update of \p L reads the loop index, returns a rewritten loop with
/// an explicit position accumulator "_pos" (init 0, update _pos + 1,
/// IsAuxiliary) substituted for the index. Returns the loop unchanged
/// otherwise. This realizes index-dependent benchmarks (dropwhile, the
/// position-reporting mts-p/mps-p) in the offset-free sequence-function
/// model.
Loop materializeIndex(const Loop &L);

/// True if some update expression of \p L references the index variable.
bool readsIndex(const Loop &L);

} // namespace parsynt

#endif // PARSYNT_LIFT_UNFOLD_H
