//===- lift/NormalForms.h - Canonical tropical/boolean forms ----*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain-specific canonical normal forms used by the lifter before falling
/// back to the generic cost-directed rewriter.
///
/// The paper's flagship benchmarks (mts, mps, mss) live in the tropical
/// (max,+) semiring: their unfoldings are max-of-sums. tropicalNormalize
/// fully distributes + over max, flattens, groups terms by their unknown
/// atoms (so every unknown occurs exactly once — the CostV optimum), and
/// rebuilds the per-group residuals in a canonical order that is *stable
/// across unfolding depths*: the step-k normal form of a family literally
/// contains the step-(k-1) form as a subterm, which is what makes the
/// lifter's fold-back step work.
///
/// booleanNormalize does the analogous thing in the boolean lattice: NNF +
/// CNF with tautology/subsumption pruning, clauses grouped by their unknown
/// literals. It is only used when every unknown occurrence is a bare
/// boolean state variable (otherwise the cross-atom arithmetic rewriting of
/// the generic engine is needed, e.g. for balanced parentheses).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_LIFT_NORMALFORMS_H
#define PARSYNT_LIFT_NORMALFORMS_H

#include "ir/Expr.h"

#include <set>
#include <string>

namespace parsynt {

/// Max-plus canonical form of an integer expression built from
/// max/+/-/negation/multiplication-by-constant over leaves. Returns null if
/// the expression uses operators outside the (max,+) fragment.
ExprRef tropicalNormalize(const ExprRef &E,
                          const std::set<std::string> &Unknowns);

/// CNF canonical form of a boolean expression with clause grouping by
/// unknown literals. Returns null if the expression falls outside the
/// supported fragment (some unknown occurs inside a composite atom) or the
/// CNF would exceed the size cap.
ExprRef booleanNormalize(const ExprRef &E,
                         const std::set<std::string> &Unknowns);

} // namespace parsynt

#endif // PARSYNT_LIFT_NORMALFORMS_H
