//===- suite/Kernels.h - Native divide-and-conquer kernels ------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-transcribed native (compiled C++) versions of the synthesized
/// parallel programs for all 22 Table-1 benchmarks — the counterpart of the
/// paper's generated TBB code, used by the Figure-8 performance harness
/// where interpreting the loop bodies would dominate the measurement.
///
/// Every kernel carries: the *original* sequential loop (the baseline the
/// paper's Figure 8 normalizes against — note it is cheaper per iteration
/// than the lifted leaf whenever auxiliaries were added), the lifted leaf,
/// the synthesized join, and an input generator producing workload-
/// appropriate data. Tests cross-check each kernel against the interpreted
/// loop semantics and each parallel run against the sequential baseline.
///
/// Arithmetic wraps modulo 2^64 (computed over uint64_t), matching the
/// interpreter's total semantics.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUITE_KERNELS_H
#define PARSYNT_SUITE_KERNELS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace parsynt {

/// Fixed-capacity state tuple for native kernels; slot meaning is
/// kernel-specific (booleans stored as 0/1).
struct KState {
  static constexpr size_t Capacity = 6;
  std::array<int64_t, Capacity> V{};

  friend bool operator==(const KState &A, const KState &B) {
    return A.V == B.V;
  }
};

/// Workload family for the input generator.
enum class InputKind {
  Random,     ///< ints in [-100, 100]
  Bits,       ///< 0/1
  Parens,     ///< '(' / ')' with balanced bias
  Digits,     ///< '0'..'9'
  NearSorted, ///< ascending with rare dips
  Heights,    ///< positive building heights
  DropPrefix, ///< positive prefix, then mixed
};

/// A native benchmark kernel.
struct NativeKernel {
  std::string Name;
  InputKind Kind = InputKind::Random;
  bool TwoSequences = false;

  /// The original sequential loop over [0, N) (Figure-8 baseline).
  KState (*Sequential)(const int64_t *A, const int64_t *B, size_t N);
  /// The lifted leaf over [Begin, End), started from its own initial state.
  KState (*Leaf)(const int64_t *A, const int64_t *B, size_t Begin,
                 size_t End);
  /// The synthesized join.
  KState (*Join)(const KState &L, const KState &R);
  /// Scalar result extracted from a final state (same slot layout for the
  /// sequential and lifted states).
  int64_t (*Output)(const KState &S);
};

/// All 22 kernels, in Table-1 order.
const std::vector<NativeKernel> &nativeKernels();

/// Finds a kernel by name, or null.
const NativeKernel *findKernel(const std::string &Name);

/// Deterministically generates \p N elements for \p Kind.
std::vector<int64_t> generateInput(InputKind Kind, size_t N, uint64_t Seed);

} // namespace parsynt

#endif // PARSYNT_SUITE_KERNELS_H
