//===- suite/Benchmarks.cpp - The Table-1 benchmark suite -----------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"
#include "frontend/Convert.h"

#include <cassert>

using namespace parsynt;

const std::vector<Benchmark> &parsynt::allBenchmarks() {
  static const std::vector<Benchmark> Benchmarks = {
      {"sum",
       "sum = 0;\n"
       "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }\n",
       false, 0, true, "sum of the elements"},

      {"min",
       "m = MAX_INT;\n"
       "for (i = 0; i < |s|; i++) { m = min(m, s[i]); }\n",
       false, 0, true, "minimum element"},

      {"max",
       "m = MIN_INT;\n"
       "for (i = 0; i < |s|; i++) { m = max(m, s[i]); }\n",
       false, 0, true, "maximum element"},

      {"average",
       "sum = 0;\n"
       "cnt = 0;\n"
       "for (i = 0; i < |s|; i++) { sum = sum + s[i]; cnt = cnt + 1; }\n",
       false, 0, true, "running sum and count (mean taken after the loop)"},

      {"hamming",
       "ham = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  if (s[i] != t[i]) { ham = ham + 1; }\n"
       "}\n",
       false, 0, true, "hamming distance of two equal-length strings"},

      {"length",
       "len = 0;\n"
       "for (i = 0; i < |s|; i++) { len = len + 1; }\n",
       false, 0, true, "sequence length"},

      {"2nd-min",
       "m = MAX_INT;\n"
       "m2 = MAX_INT;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  m2 = min(m2, max(m, s[i]));\n"
       "  m = min(m, s[i]);\n"
       "}\n",
       false, 0, true, "second smallest element (paper Section 2)"},

      {"mps",
       "sum = 0;\n"
       "mps = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  sum = sum + s[i];\n"
       "  mps = max(mps, sum);\n"
       "}\n",
       false, 0, true,
       "maximum prefix sum (running sum kept by the natural formulation)"},

      {"mts",
       "mts = 0;\n"
       "for (i = 0; i < |s|; i++) { mts = max(mts + s[i], 0); }\n",
       true, 1, true, "maximum tail (suffix) sum (paper Section 2)"},

      {"mss",
       "mss = 0;\n"
       "mts = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  mss = max(mss, mts + s[i]);\n"
       "  mts = max(mts + s[i], 0);\n"
       "}\n",
       true, 2, true, "maximum segment sum (Kadane)"},

      {"mts-p",
       "mts = 0;\n"
       "sum = 0;\n"
       "pos = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  mts = max(mts + s[i], 0);\n"
       "  sum = sum + s[i];\n"
       "  if (mts == 0) { pos = i + 1; }\n"
       "}\n",
       true, -1, true, "mts with the start position of the maximal tail"},

      {"mps-p",
       "sum = 0;\n"
       "mps = 0;\n"
       "pos = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  sum = sum + s[i];\n"
       "  if (sum > mps) { mps = sum; pos = i + 1; }\n"
       "}\n",
       true, -1, true, "mps with the end position of the maximal prefix"},

      {"poly",
       "param x;\n"
       "res = 0;\n"
       "p = 1;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  res = res + s[i] * p;\n"
       "  p = p * x;\n"
       "}\n",
       false, 0, true, "polynomial evaluation at x (Horner-free form)"},

      {"is-sorted",
       "sorted = true;\n"
       "prev = MIN_INT;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  sorted = sorted && (prev <= s[i]);\n"
       "  prev = s[i];\n"
       "}\n",
       true, 1, true, "is the sequence sorted (non-decreasing)?"},

      {"atoi",
       "res = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  res = res * 10 + (s[i] - '0');\n"
       "}\n",
       true, 1, true, "decimal string to integer"},

      {"dropwhile",
       "cnt = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  if (cnt == i && s[i] > 0) { cnt = cnt + 1; }\n"
       "}\n",
       true, 1, true,
       "length of the dropped prefix (drop while positive)"},

      {"balanced-()",
       "bal = true;\n"
       "ofs = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  if (s[i] == '(') { ofs = ofs + 1; } else { ofs = ofs - 1; }\n"
       "  bal = bal && (ofs >= 0);\n"
       "}\n",
       true, 1, true, "balanced parentheses prefix check"},

      {"0*1*",
       "ok = true;\n"
       "seen1 = false;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  if (seen1 && s[i] == 0) { ok = false; }\n"
       "  if (s[i] == 1) { seen1 = true; }\n"
       "}\n",
       true, -1, true, "membership in the regular language 0*1*"},

      {"count-1's",
       "cnt = 0;\n"
       "prev1 = false;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  if (s[i] == 1 && !prev1) { cnt = cnt + 1; }\n"
       "  prev1 = s[i] == 1;\n"
       "}\n",
       true, -1, true, "number of contiguous blocks of 1's"},

      {"line-sight",
       "m = MIN_INT;\n"
       "vis = true;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  vis = s[i] >= m;\n"
       "  m = max(m, s[i]);\n"
       "}\n",
       true, 0, true,
       "is the last building visible over the earlier skyline? (the "
       "empty-guard sketch finds a join that needs no auxiliary at all; "
       "the paper's tool keeps 1 — see EXPERIMENTS.md)"},

      {"0after1",
       "seen1 = false;\n"
       "res = false;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  res = res || (seen1 && s[i] == 0);\n"
       "  seen1 = seen1 || s[i] == 1;\n"
       "}\n",
       true, 1, true, "does a 0 occur after a 1?"},

      {"max-block-1",
       "best = 0;\n"
       "cur = 0;\n"
       "for (i = 0; i < |s|; i++) {\n"
       "  if (s[i] == 1) { cur = cur + 1; } else { cur = 0; }\n"
       "  best = max(best, cur);\n"
       "}\n",
       true, -1, false,
       "length of the longest block of 1's (paper: 1 of 2 auxiliaries "
       "found)"},
  };
  return Benchmarks;
}

const Benchmark *parsynt::findBenchmark(const std::string &Name) {
  for (const Benchmark &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

Loop parsynt::parseBenchmark(const Benchmark &B) {
  DiagnosticEngine Diags;
  auto L = parseLoop(B.Source, B.Name, Diags);
  assert(L && "benchmark source must parse");
  if (!L) {
    // Release-build fallback: return an empty loop (callers assert anyway).
    return Loop();
  }
  return *L;
}
