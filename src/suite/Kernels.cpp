//===- suite/Kernels.cpp - Native divide-and-conquer kernels --------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "suite/Kernels.h"

#include <algorithm>
#include <random>

using namespace parsynt;

namespace {

// Wrapping arithmetic helpers (defined behaviour on overflow).
int64_t wadd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wsub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wmul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

constexpr int64_t Sentinel = int64_t(1) << 40; // matches MAX_INT/MIN_INT

//===--------------------------------------------------------------------===//
// sum: V0 = sum
//===--------------------------------------------------------------------===//

KState sumLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  for (size_t I = B; I != E; ++I)
    S.V[0] = wadd(S.V[0], A[I]);
  return S;
}
KState sumSeq(const int64_t *A, const int64_t *B, size_t N) {
  return sumLeaf(A, B, 0, N);
}
KState sumJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = wadd(L.V[0], R.V[0]);
  return S;
}
int64_t out0(const KState &S) { return S.V[0]; }

//===--------------------------------------------------------------------===//
// min / max: V0 = extremum
//===--------------------------------------------------------------------===//

KState minLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[0] = Sentinel;
  for (size_t I = B; I != E; ++I)
    S.V[0] = std::min(S.V[0], A[I]);
  return S;
}
KState minSeq(const int64_t *A, const int64_t *B, size_t N) {
  return minLeaf(A, B, 0, N);
}
KState minJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::min(L.V[0], R.V[0]);
  return S;
}

KState maxLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[0] = -Sentinel;
  for (size_t I = B; I != E; ++I)
    S.V[0] = std::max(S.V[0], A[I]);
  return S;
}
KState maxSeq(const int64_t *A, const int64_t *B, size_t N) {
  return maxLeaf(A, B, 0, N);
}
KState maxJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::max(L.V[0], R.V[0]);
  return S;
}

//===--------------------------------------------------------------------===//
// average: V0 = sum, V1 = count (mean taken after the loop)
//===--------------------------------------------------------------------===//

KState avgLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  for (size_t I = B; I != E; ++I) {
    S.V[0] = wadd(S.V[0], A[I]);
    S.V[1] += 1;
  }
  return S;
}
KState avgSeq(const int64_t *A, const int64_t *B, size_t N) {
  return avgLeaf(A, B, 0, N);
}
KState avgJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = wadd(L.V[0], R.V[0]);
  S.V[1] = L.V[1] + R.V[1];
  return S;
}
int64_t avgOut(const KState &S) { return S.V[1] ? S.V[0] / S.V[1] : 0; }

//===--------------------------------------------------------------------===//
// hamming: V0 = distance (two sequences)
//===--------------------------------------------------------------------===//

KState hamLeaf(const int64_t *A, const int64_t *B, size_t Begin, size_t E) {
  KState S;
  for (size_t I = Begin; I != E; ++I)
    S.V[0] += (A[I] != B[I]) ? 1 : 0;
  return S;
}
KState hamSeq(const int64_t *A, const int64_t *B, size_t N) {
  return hamLeaf(A, B, 0, N);
}

//===--------------------------------------------------------------------===//
// length: V0 = length
//===--------------------------------------------------------------------===//

KState lenLeaf(const int64_t *, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[0] = static_cast<int64_t>(E - B);
  return S;
}
KState lenSeq(const int64_t *A, const int64_t *B, size_t N) {
  return lenLeaf(A, B, 0, N);
}

//===--------------------------------------------------------------------===//
// 2nd-min: V0 = min, V1 = second min
//===--------------------------------------------------------------------===//

KState min2Leaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[0] = Sentinel;
  S.V[1] = Sentinel;
  for (size_t I = B; I != E; ++I) {
    S.V[1] = std::min(S.V[1], std::max(S.V[0], A[I]));
    S.V[0] = std::min(S.V[0], A[I]);
  }
  return S;
}
KState min2Seq(const int64_t *A, const int64_t *B, size_t N) {
  return min2Leaf(A, B, 0, N);
}
KState min2Join(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::min(L.V[0], R.V[0]);
  S.V[1] = std::min(std::min(L.V[1], R.V[1]), std::max(L.V[0], R.V[0]));
  return S;
}
int64_t out1(const KState &S) { return S.V[1]; }

//===--------------------------------------------------------------------===//
// mps: V0 = sum, V1 = max prefix sum
//===--------------------------------------------------------------------===//

KState mpsLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  for (size_t I = B; I != E; ++I) {
    S.V[0] = wadd(S.V[0], A[I]);
    S.V[1] = std::max(S.V[1], S.V[0]);
  }
  return S;
}
KState mpsSeq(const int64_t *A, const int64_t *B, size_t N) {
  return mpsLeaf(A, B, 0, N);
}
KState mpsJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = wadd(L.V[0], R.V[0]);
  S.V[1] = std::max(L.V[1], wadd(L.V[0], R.V[1]));
  return S;
}

//===--------------------------------------------------------------------===//
// mts: sequential V0 = mts; lifted adds V1 = sum (the auxiliary)
//===--------------------------------------------------------------------===//

KState mtsSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I)
    S.V[0] = std::max(wadd(S.V[0], A[I]), int64_t(0));
  return S;
}
KState mtsLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  for (size_t I = B; I != E; ++I) {
    S.V[0] = std::max(wadd(S.V[0], A[I]), int64_t(0));
    S.V[1] = wadd(S.V[1], A[I]);
  }
  return S;
}
KState mtsJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::max(R.V[0], wadd(L.V[0], R.V[1]));
  S.V[1] = wadd(L.V[1], R.V[1]);
  return S;
}

//===--------------------------------------------------------------------===//
// mss: sequential V0 = mss, V1 = mts; lifted adds V2 = sum, V3 = mps
//===--------------------------------------------------------------------===//

KState mssSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I) {
    S.V[0] = std::max(S.V[0], wadd(S.V[1], A[I]));
    S.V[1] = std::max(wadd(S.V[1], A[I]), int64_t(0));
  }
  return S;
}
KState mssLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  for (size_t I = B; I != E; ++I) {
    S.V[0] = std::max(S.V[0], wadd(S.V[1], A[I]));
    S.V[1] = std::max(wadd(S.V[1], A[I]), int64_t(0));
    S.V[2] = wadd(S.V[2], A[I]);
    S.V[3] = std::max(S.V[3], S.V[2]);
  }
  return S;
}
KState mssJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::max(std::max(L.V[0], R.V[0]), wadd(L.V[1], R.V[3]));
  S.V[1] = std::max(R.V[1], wadd(L.V[1], R.V[2]));
  S.V[2] = wadd(L.V[2], R.V[2]);
  S.V[3] = std::max(L.V[3], wadd(L.V[2], R.V[3]));
  return S;
}

//===--------------------------------------------------------------------===//
// mts-p: V0 = mts, V1 = sum, V2 = pos (local), V3 = len
//===--------------------------------------------------------------------===//

KState mtspSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I) {
    S.V[0] = std::max(wadd(S.V[0], A[I]), int64_t(0));
    S.V[1] = wadd(S.V[1], A[I]);
    if (S.V[0] == 0)
      S.V[2] = static_cast<int64_t>(I) + 1;
  }
  S.V[3] = static_cast<int64_t>(N);
  return S;
}
KState mtspLeaf(const int64_t *A, const int64_t *B, size_t Begin, size_t E) {
  KState S = mtspSeq(A + Begin, B, E - Begin);
  return S;
}
KState mtspJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::max(R.V[0], wadd(L.V[0], R.V[1]));
  S.V[1] = wadd(L.V[1], R.V[1]);
  // The tail crosses into the left part iff no combined reset happens in
  // the right part, i.e. mts_l + (sum_r - mts_r) > 0 (see DESIGN.md).
  S.V[2] = (wadd(L.V[0], wsub(R.V[1], R.V[0])) <= 0) ? L.V[3] + R.V[2]
                                                     : L.V[2];
  S.V[3] = L.V[3] + R.V[3];
  return S;
}
int64_t out2(const KState &S) { return S.V[2]; }

//===--------------------------------------------------------------------===//
// mps-p: V0 = sum, V1 = mps, V2 = pos (local), V3 = len
//===--------------------------------------------------------------------===//

KState mpspSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I) {
    S.V[0] = wadd(S.V[0], A[I]);
    if (S.V[0] > S.V[1]) {
      S.V[1] = S.V[0];
      S.V[2] = static_cast<int64_t>(I) + 1;
    }
  }
  S.V[3] = static_cast<int64_t>(N);
  return S;
}
KState mpspLeaf(const int64_t *A, const int64_t *B, size_t Begin, size_t E) {
  return mpspSeq(A + Begin, B, E - Begin);
}
KState mpspJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = wadd(L.V[0], R.V[0]);
  if (wadd(L.V[0], R.V[1]) > L.V[1]) {
    S.V[1] = wadd(L.V[0], R.V[1]);
    S.V[2] = L.V[3] + R.V[2];
  } else {
    S.V[1] = L.V[1];
    S.V[2] = L.V[2];
  }
  S.V[3] = L.V[3] + R.V[3];
  return S;
}

//===--------------------------------------------------------------------===//
// poly: V0 = value, V1 = x^len  (evaluation point fixed below)
//===--------------------------------------------------------------------===//

constexpr int64_t PolyX = 3;

KState polyLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[1] = 1;
  for (size_t I = B; I != E; ++I) {
    S.V[0] = wadd(S.V[0], wmul(A[I], S.V[1]));
    S.V[1] = wmul(S.V[1], PolyX);
  }
  return S;
}
KState polySeq(const int64_t *A, const int64_t *B, size_t N) {
  return polyLeaf(A, B, 0, N);
}
KState polyJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = wadd(L.V[0], wmul(L.V[1], R.V[0]));
  S.V[1] = wmul(L.V[1], R.V[1]);
  return S;
}

//===--------------------------------------------------------------------===//
// is-sorted: V0 = sorted, V1 = prev(last); lifted adds V2 = first
//===--------------------------------------------------------------------===//

KState sortedSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  S.V[0] = 1;
  S.V[1] = -Sentinel;
  for (size_t I = 0; I != N; ++I) {
    S.V[0] = (S.V[0] && S.V[1] <= A[I]) ? 1 : 0;
    S.V[1] = A[I];
  }
  return S;
}
KState sortedLeaf(const int64_t *A, const int64_t *B, size_t Begin,
                  size_t E) {
  KState S = sortedSeq(A + Begin, B, E - Begin);
  S.V[2] = (E - Begin) ? A[Begin] : Sentinel; // first element (aux)
  return S;
}
KState sortedJoin(const KState &L, const KState &R) {
  KState S;
  bool RightEmpty = R.V[1] == -Sentinel;
  S.V[0] = (L.V[0] && R.V[0] && (RightEmpty || L.V[1] <= R.V[2])) ? 1 : 0;
  S.V[1] = RightEmpty ? L.V[1] : R.V[1];
  S.V[2] = (L.V[2] == Sentinel) ? R.V[2] : L.V[2];
  return S;
}

//===--------------------------------------------------------------------===//
// atoi: V0 = value; lifted adds V1 = 10^len
//===--------------------------------------------------------------------===//

KState atoiSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I)
    S.V[0] = wadd(wmul(S.V[0], 10), A[I] - '0');
  return S;
}
KState atoiLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[1] = 1;
  for (size_t I = B; I != E; ++I) {
    S.V[0] = wadd(wmul(S.V[0], 10), A[I] - '0');
    S.V[1] = wmul(S.V[1], 10);
  }
  return S;
}
KState atoiJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = wadd(wmul(L.V[0], R.V[1]), R.V[0]);
  S.V[1] = wmul(L.V[1], R.V[1]);
  return S;
}

//===--------------------------------------------------------------------===//
// dropwhile: V0 = dropped-prefix length; lifted adds V1 = len
//===--------------------------------------------------------------------===//

KState dropSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I)
    if (S.V[0] == static_cast<int64_t>(I) && A[I] > 0)
      S.V[0] += 1;
  S.V[1] = static_cast<int64_t>(N);
  return S;
}
KState dropLeaf(const int64_t *A, const int64_t *B, size_t Begin, size_t E) {
  return dropSeq(A + Begin, B, E - Begin);
}
KState dropJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = (L.V[0] == L.V[1]) ? L.V[0] + R.V[0] : L.V[0];
  S.V[1] = L.V[1] + R.V[1];
  return S;
}

//===--------------------------------------------------------------------===//
// balanced-(): V0 = bal, V1 = ofs; lifted adds V2 = max of negated prefix
// sums (MIN-sentinel for the empty chunk)
//===--------------------------------------------------------------------===//

KState balSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  S.V[0] = 1;
  for (size_t I = 0; I != N; ++I) {
    S.V[1] += (A[I] == '(') ? 1 : -1;
    S.V[0] = (S.V[0] && S.V[1] >= 0) ? 1 : 0;
  }
  return S;
}
KState balLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[0] = 1;
  S.V[2] = -Sentinel;
  for (size_t I = B; I != E; ++I) {
    S.V[1] += (A[I] == '(') ? 1 : -1;
    S.V[0] = (S.V[0] && S.V[1] >= 0) ? 1 : 0;
    S.V[2] = std::max(S.V[2], -S.V[1]);
  }
  return S;
}
KState balJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = (L.V[0] && L.V[1] >= R.V[2]) ? 1 : 0;
  S.V[1] = L.V[1] + R.V[1];
  S.V[2] = std::max(L.V[2], R.V[2] - L.V[1]);
  return S;
}

//===--------------------------------------------------------------------===//
// 0*1*: V0 = ok, V1 = seen1; lifted adds V2 = seen0
//===--------------------------------------------------------------------===//

KState zeroOneSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  S.V[0] = 1;
  for (size_t I = 0; I != N; ++I) {
    if (S.V[1] && A[I] == 0)
      S.V[0] = 0;
    if (A[I] == 1)
      S.V[1] = 1;
  }
  return S;
}
KState zeroOneLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[0] = 1;
  for (size_t I = B; I != E; ++I) {
    if (S.V[1] && A[I] == 0)
      S.V[0] = 0;
    if (A[I] == 1)
      S.V[1] = 1;
    if (A[I] == 0)
      S.V[2] = 1;
  }
  return S;
}
KState zeroOneJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = (L.V[0] && R.V[0] && !(L.V[1] && R.V[2])) ? 1 : 0;
  S.V[1] = (L.V[1] || R.V[1]) ? 1 : 0;
  S.V[2] = (L.V[2] || R.V[2]) ? 1 : 0;
  return S;
}

//===--------------------------------------------------------------------===//
// count-1's: V0 = blocks, V1 = prev1; lifted adds V2 = first1, V3 = len
//===--------------------------------------------------------------------===//

KState count1Seq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I) {
    if (A[I] == 1 && !S.V[1])
      S.V[0] += 1;
    S.V[1] = (A[I] == 1) ? 1 : 0;
  }
  return S;
}
KState count1Leaf(const int64_t *A, const int64_t *B, size_t Begin,
                  size_t E) {
  KState S = count1Seq(A + Begin, B, E - Begin);
  S.V[2] = (E - Begin && A[Begin] == 1) ? 1 : 0;
  S.V[3] = static_cast<int64_t>(E - Begin);
  return S;
}
KState count1Join(const KState &L, const KState &R) {
  KState S;
  int64_t Overlap = (R.V[3] > 0 && L.V[1] && R.V[2]) ? 1 : 0;
  S.V[0] = L.V[0] + R.V[0] - Overlap;
  S.V[1] = R.V[3] > 0 ? R.V[1] : L.V[1];
  S.V[2] = L.V[3] > 0 ? L.V[2] : R.V[2];
  S.V[3] = L.V[3] + R.V[3];
  return S;
}

//===--------------------------------------------------------------------===//
// line-sight: V0 = visible, V1 = running max; lifted adds V2 = last, V3 =
// len
//===--------------------------------------------------------------------===//

KState sightSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  S.V[0] = 1;
  S.V[1] = -Sentinel;
  for (size_t I = 0; I != N; ++I) {
    S.V[0] = (A[I] >= S.V[1]) ? 1 : 0;
    S.V[1] = std::max(S.V[1], A[I]);
  }
  return S;
}
KState sightLeaf(const int64_t *A, const int64_t *B, size_t Begin,
                 size_t E) {
  KState S = sightSeq(A + Begin, B, E - Begin);
  S.V[2] = (E - Begin) ? A[E - 1] : 0;
  S.V[3] = static_cast<int64_t>(E - Begin);
  return S;
}
KState sightJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = R.V[3] == 0 ? L.V[0]
                       : ((R.V[2] >= std::max(L.V[1], R.V[1])) ? 1 : 0);
  S.V[1] = std::max(L.V[1], R.V[1]);
  S.V[2] = R.V[3] > 0 ? R.V[2] : L.V[2];
  S.V[3] = L.V[3] + R.V[3];
  return S;
}

//===--------------------------------------------------------------------===//
// 0after1: V0 = res, V1 = seen1; lifted adds V2 = seen0
//===--------------------------------------------------------------------===//

KState zafterSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I) {
    if (S.V[1] && A[I] == 0)
      S.V[0] = 1;
    if (A[I] == 1)
      S.V[1] = 1;
  }
  return S;
}
KState zafterLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  for (size_t I = B; I != E; ++I) {
    if (S.V[1] && A[I] == 0)
      S.V[0] = 1;
    if (A[I] == 1)
      S.V[1] = 1;
    if (A[I] == 0)
      S.V[2] = 1;
  }
  return S;
}
KState zafterJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = (L.V[0] || R.V[0] || (L.V[1] && R.V[2])) ? 1 : 0;
  S.V[1] = (L.V[1] || R.V[1]) ? 1 : 0;
  S.V[2] = (L.V[2] || R.V[2]) ? 1 : 0;
  return S;
}

//===--------------------------------------------------------------------===//
// max-block-1: V0 = best, V1 = cur; lifted adds V2 = prefix run, V3 = len,
// V4 = all-ones. (The paper's tool finds only 1 of the 2 auxiliaries; this
// is the hand-completed version the evaluation runs, as in the paper.)
//===--------------------------------------------------------------------===//

KState blockSeq(const int64_t *A, const int64_t *, size_t N) {
  KState S;
  for (size_t I = 0; I != N; ++I) {
    S.V[1] = (A[I] == 1) ? S.V[1] + 1 : 0;
    S.V[0] = std::max(S.V[0], S.V[1]);
  }
  return S;
}
KState blockLeaf(const int64_t *A, const int64_t *, size_t B, size_t E) {
  KState S;
  S.V[4] = 1;
  for (size_t I = B; I != E; ++I) {
    S.V[1] = (A[I] == 1) ? S.V[1] + 1 : 0;
    S.V[0] = std::max(S.V[0], S.V[1]);
    if (S.V[4] && A[I] == 1)
      S.V[2] += 1;
    else
      S.V[4] = 0;
    S.V[3] += 1;
  }
  return S;
}
KState blockJoin(const KState &L, const KState &R) {
  KState S;
  S.V[0] = std::max(std::max(L.V[0], R.V[0]), L.V[1] + R.V[2]);
  S.V[1] = R.V[4] ? L.V[1] + R.V[1] : R.V[1];
  S.V[2] = L.V[4] ? L.V[2] + R.V[2] : L.V[2];
  S.V[3] = L.V[3] + R.V[3];
  S.V[4] = (L.V[4] && R.V[4]) ? 1 : 0;
  return S;
}

} // namespace

const std::vector<NativeKernel> &parsynt::nativeKernels() {
  static const std::vector<NativeKernel> Kernels = {
      {"sum", InputKind::Random, false, sumSeq, sumLeaf, sumJoin, out0},
      {"min", InputKind::Random, false, minSeq, minLeaf, minJoin, out0},
      {"max", InputKind::Random, false, maxSeq, maxLeaf, maxJoin, out0},
      {"average", InputKind::Random, false, avgSeq, avgLeaf, avgJoin,
       avgOut},
      {"hamming", InputKind::Random, true, hamSeq, hamLeaf, sumJoin, out0},
      {"length", InputKind::Random, false, lenSeq, lenLeaf, sumJoin, out0},
      {"2nd-min", InputKind::Random, false, min2Seq, min2Leaf, min2Join,
       out1},
      {"mps", InputKind::Random, false, mpsSeq, mpsLeaf, mpsJoin, out1},
      {"mts", InputKind::Random, false, mtsSeq, mtsLeaf, mtsJoin, out0},
      {"mss", InputKind::Random, false, mssSeq, mssLeaf, mssJoin, out0},
      {"mts-p", InputKind::Random, false, mtspSeq, mtspLeaf, mtspJoin,
       out2},
      {"mps-p", InputKind::Random, false, mpspSeq, mpspLeaf, mpspJoin,
       out2},
      {"poly", InputKind::Random, false, polySeq, polyLeaf, polyJoin, out0},
      {"is-sorted", InputKind::NearSorted, false, sortedSeq, sortedLeaf,
       sortedJoin, out0},
      {"atoi", InputKind::Digits, false, atoiSeq, atoiLeaf, atoiJoin, out0},
      {"dropwhile", InputKind::DropPrefix, false, dropSeq, dropLeaf,
       dropJoin, out0},
      {"balanced-()", InputKind::Parens, false, balSeq, balLeaf, balJoin,
       out0},
      {"0*1*", InputKind::Bits, false, zeroOneSeq, zeroOneLeaf, zeroOneJoin,
       out0},
      {"count-1's", InputKind::Bits, false, count1Seq, count1Leaf,
       count1Join, out0},
      {"line-sight", InputKind::Heights, false, sightSeq, sightLeaf,
       sightJoin, out0},
      {"0after1", InputKind::Bits, false, zafterSeq, zafterLeaf, zafterJoin,
       out0},
      {"max-block-1", InputKind::Bits, false, blockSeq, blockLeaf,
       blockJoin, out0},
  };
  return Kernels;
}

const NativeKernel *parsynt::findKernel(const std::string &Name) {
  for (const NativeKernel &K : nativeKernels())
    if (K.Name == Name)
      return &K;
  return nullptr;
}

std::vector<int64_t> parsynt::generateInput(InputKind Kind, size_t N,
                                            uint64_t Seed) {
  std::mt19937_64 R(Seed);
  std::vector<int64_t> Out(N);
  switch (Kind) {
  case InputKind::Random:
    for (auto &V : Out)
      V = static_cast<int64_t>(R() % 201) - 100;
    break;
  case InputKind::Bits:
    for (auto &V : Out)
      V = static_cast<int64_t>(R() & 1);
    break;
  case InputKind::Parens:
    // Mildly biased towards '(' so long balanced prefixes occur.
    for (auto &V : Out)
      V = (R() % 100 < 52) ? '(' : ')';
    break;
  case InputKind::Digits:
    for (auto &V : Out)
      V = '0' + static_cast<int64_t>(R() % 10);
    break;
  case InputKind::NearSorted: {
    int64_t Current = 0;
    for (auto &V : Out) {
      Current += static_cast<int64_t>(R() % 5);
      if (R() % 10000 == 0)
        Current -= 50; // rare dip: keeps the sortedness check non-trivial
      V = Current;
    }
    break;
  }
  case InputKind::Heights:
    for (auto &V : Out)
      V = static_cast<int64_t>(R() % 1000) + 1;
    break;
  case InputKind::DropPrefix: {
    size_t Prefix = N / 3;
    for (size_t I = 0; I != N; ++I)
      Out[I] = I < Prefix ? static_cast<int64_t>(R() % 50) + 1
                          : static_cast<int64_t>(R() % 101) - 50;
    break;
  }
  }
  return Out;
}
