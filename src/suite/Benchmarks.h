//===- suite/Benchmarks.h - The Table-1 benchmark suite ---------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 22 benchmarks of the paper's Table 1 as input-language sources, with
/// the qualitative expectations the reproduction must match (does the loop
/// need auxiliary accumulators? does the pipeline fully succeed?). Exact
/// auxiliary counts depend on formulation details the paper leaves open;
/// see EXPERIMENTS.md for the per-benchmark discussion.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUITE_BENCHMARKS_H
#define PARSYNT_SUITE_BENCHMARKS_H

#include "ir/Loop.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace parsynt {

/// A Table-1 benchmark.
struct Benchmark {
  std::string Name;        ///< Table-1 column name
  std::string Source;      ///< input-language program
  bool ExpectAuxRequired;  ///< Table-1 "Aux required?" row
  int ExpectedAux;         ///< our model's expected "#Aux" (-1: no claim)
  bool ExpectFullSuccess;  ///< false only for max-block-1 (paper footnote *)
  std::string Description;
};

/// All 22 benchmarks in Table-1 column order.
const std::vector<Benchmark> &allBenchmarks();

/// Finds a benchmark by name, or null.
const Benchmark *findBenchmark(const std::string &Name);

/// Parses a benchmark's source. Asserts on failure (the suite is tested).
Loop parseBenchmark(const Benchmark &B);

} // namespace parsynt

#endif // PARSYNT_SUITE_BENCHMARKS_H
