//===- analysis/Lint.h - Fragment-conformance linting -----------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level conformance checks for the Figure-3 loop fragment, run on
/// the surface AST between parsing and conversion. Inputs that fall outside
/// the fragment used to surface as generic parse errors, conversion
/// assertions, or — worst — silent misbehavior (the unfolder treats any
/// subscript as "the current element"); the linter turns each of them into a
/// precise, source-located diagnostic.
///
/// Errors (the program is outside the fragment):
///  - a sequence element is written (`s[i] = ...`);
///  - a sequence is subscripted by anything but the plain loop index
///    (single-pass access; `s[i+1]` would silently read `s[i]` downstream);
///  - the loop index is assigned in the body, or read before the loop;
///  - a `param`-declared name is assigned (parameters are read-only);
///  - a name is used both as a sequence and a scalar;
///  - a state variable is read before its initialization, or never
///    initialized at all;
///  - a sequence is read before the loop (initializers run once, before
///    any element exists).
///
/// Warnings (inside the fragment, but synthesis-relevant):
///  - an accumulator depends on the loop position/bound (the body reads the
///    index outside a subscript): the index must be materialized as an
///    auxiliary accumulator and the loop cannot be parallelized in its
///    original form.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_ANALYSIS_LINT_H
#define PARSYNT_ANALYSIS_LINT_H

#include "frontend/Parser.h"
#include "support/Diagnostics.h"

namespace parsynt {

/// Tally of the diagnostics a lint run produced.
struct LintSummary {
  unsigned Errors = 0;
  unsigned Warnings = 0;

  bool ok() const { return Errors == 0; }
};

/// Lints \p Program, appending diagnostics to \p Diags. Conversion should
/// only proceed when the summary has no errors.
LintSummary lintProgram(const surface::SProgram &Program,
                        DiagnosticEngine &Diags);

} // namespace parsynt

#endif // PARSYNT_ANALYSIS_LINT_H
