//===- analysis/DependenceGraph.cpp - State-variable dependences ----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "ir/ExprOps.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <sstream>

using namespace parsynt;

const char *parsynt::depClassName(DepClass Class) {
  switch (Class) {
  case DepClass::Constant:
    return "constant";
  case DepClass::IndependentFold:
    return "independent-fold";
  case DepClass::Conditional:
    return "conditional";
  case DepClass::PrefixDependent:
    return "prefix-dependent";
  }
  return "?";
}

namespace {

/// True if \p E contains a conditional expression node.
bool containsIte(const ExprRef &E) {
  bool Found = false;
  forEachNode(E, [&](const ExprRef &Node) { Found |= isa<IteExpr>(Node); });
  return Found;
}

/// True if \p E reads \p Index outside sequence subscripts (s[i] itself does
/// not make a variable position-dependent).
bool readsIndexVar(const ExprRef &E, const std::string &Index) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return V->name() == Index;
  if (isa<SeqAccessExpr>(E))
    return false;
  for (const ExprRef &Child : children(E)) {
    if (readsIndexVar(Child, Index))
      return true;
  }
  return false;
}

/// If \p Update is the associative fold `self (op) e` or `e (op) self` with
/// \p e free of state variables and index reads, returns the operator.
std::optional<BinaryOp> foldOperator(const Equation &Eq, const ExprRef &Update,
                                     const std::string &Index) {
  const auto *B = dyn_cast<BinaryExpr>(Update);
  if (!B || !isAssociative(B->op()))
    return std::nullopt;
  ExprRef Self = stateVar(Eq.Name, Eq.Ty);
  const ExprRef &Other = exprEquals(B->lhs(), Self)   ? B->rhs()
                         : exprEquals(B->rhs(), Self) ? B->lhs()
                                                      : nullptr;
  if (!Other || !collectVars(Other, VarClass::State).empty() ||
      readsIndexVar(Other, Index))
    return std::nullopt;
  return B->op();
}

/// True if joining a fold over \p Op with initial value \p Init as
/// v_l (op) v_r is exact: idempotent operators tolerate the doubled initial
/// value; + and * require the identity.
bool initCompatible(BinaryOp Op, const ExprRef &Init) {
  switch (Op) {
  case BinaryOp::Min:
  case BinaryOp::Max:
  case BinaryOp::And:
  case BinaryOp::Or:
    return true; // idempotent: the doubled init collapses
  case BinaryOp::Add:
    return exprEquals(Init, intConst(0));
  case BinaryOp::Mul:
    return exprEquals(Init, intConst(1));
  default:
    return false;
  }
}

/// Iterative Tarjan over the dependence edges v -> w (v's update reads w).
/// Because an SCC is completed only after every SCC it depends on, the pop
/// order is already topological (dependencies first).
class TarjanScc {
public:
  TarjanScc(size_t N, const std::vector<std::vector<size_t>> &Adj)
      : Adj(Adj), Index(N, Unvisited), LowLink(N, 0), OnStack(N, false) {
    for (size_t V = 0; V != N; ++V)
      if (Index[V] == Unvisited)
        strongConnect(V);
  }

  /// SCCs as member-index lists, in topological order.
  std::vector<std::vector<size_t>> Components;

private:
  static constexpr unsigned Unvisited = ~0u;

  void strongConnect(size_t Root) {
    // Explicit stack of (node, next-edge) frames to stay recursion-free.
    std::vector<std::pair<size_t, size_t>> Frames{{Root, 0}};
    while (!Frames.empty()) {
      auto &[V, EdgeIdx] = Frames.back();
      if (EdgeIdx == 0) {
        Index[V] = LowLink[V] = Counter++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      if (EdgeIdx < Adj[V].size()) {
        size_t W = Adj[V][EdgeIdx++];
        if (Index[W] == Unvisited) {
          Frames.emplace_back(W, 0);
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }
      if (LowLink[V] == Index[V]) {
        std::vector<size_t> Component;
        size_t W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Component.push_back(W);
        } while (W != V);
        std::sort(Component.begin(), Component.end());
        Components.push_back(std::move(Component));
      }
      size_t Finished = V;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().first] =
            std::min(LowLink[Frames.back().first], LowLink[Finished]);
    }
  }

  const std::vector<std::vector<size_t>> &Adj;
  std::vector<unsigned> Index, LowLink;
  std::vector<bool> OnStack;
  std::vector<size_t> Stack;
  unsigned Counter = 0;
};

} // namespace

DependenceInfo parsynt::analyzeDependences(const Loop &L) {
  DependenceInfo Info;
  Span DepSpan("analyzeDependences", trace::Analysis);
  DepSpan.attr("loop", L.Name.empty() ? "<loop>" : L.Name);
  struct DepFinisher {
    Span &S;
    const DependenceInfo &I;
    ~DepFinisher() {
      S.attr("vars", uint64_t(I.Vars.size()));
      S.attr("sccs", uint64_t(I.Sccs.size()));
      MetricsRegistry::global().counter("analysis.dependence.runs").inc();
    }
  } Finish{DepSpan, Info};
  size_t N = L.Equations.size();
  Info.Vars.resize(N);

  std::map<std::string, size_t> IndexOf;
  for (size_t I = 0; I != N; ++I)
    IndexOf[L.Equations[I].Name] = I;

  // Direct reads and per-variable facts.
  std::vector<std::vector<size_t>> Adj(N);
  for (size_t I = 0; I != N; ++I) {
    const Equation &Eq = L.Equations[I];
    VarDependence &V = Info.Vars[I];
    V.Name = Eq.Name;
    V.Ty = Eq.Ty;
    for (const std::string &Read : collectVars(Eq.Update, VarClass::State))
      if (IndexOf.count(Read))
        V.Reads.insert(Read);
    V.SelfRecursive = V.Reads.count(Eq.Name) != 0;
    V.ReadsIndex = readsIndexVar(Eq.Update, L.IndexName);
    for (const std::string &Read : V.Reads)
      Adj[I].push_back(IndexOf.at(Read));
  }

  // Transitive closure (self included) — the variables whose split values a
  // join for this variable may need.
  for (size_t I = 0; I != N; ++I) {
    std::set<std::string> &Closure = Info.Vars[I].Closure;
    std::vector<size_t> Work{I};
    Closure.insert(Info.Vars[I].Name);
    while (!Work.empty()) {
      size_t V = Work.back();
      Work.pop_back();
      for (size_t W : Adj[V])
        if (Closure.insert(Info.Vars[W].Name).second)
          Work.push_back(W);
    }
  }

  // SCC decomposition in topological order.
  TarjanScc Tarjan(N, Adj);
  for (size_t SccId = 0; SccId != Tarjan.Components.size(); ++SccId) {
    std::vector<std::string> Names;
    for (size_t Member : Tarjan.Components[SccId]) {
      Info.Vars[Member].SccId = static_cast<unsigned>(SccId);
      Names.push_back(Info.Vars[Member].Name);
    }
    Info.Sccs.push_back(std::move(Names));
  }

  // Classification (see the lattice in the header).
  for (size_t I = 0; I != N; ++I) {
    const Equation &Eq = L.Equations[I];
    VarDependence &V = Info.Vars[I];
    bool ReadsOthers = false;
    for (const std::string &Read : V.Reads)
      ReadsOthers |= Read != Eq.Name;

    ExprRef Self = stateVar(Eq.Name, Eq.Ty);
    bool Frozen = exprEquals(Eq.Update, Self);
    bool ReadsNothing = V.Reads.empty() && !V.ReadsIndex &&
                        collectSeqNames(Eq.Update).empty();
    if (Frozen || ReadsNothing) {
      V.Class = DepClass::Constant;
      // The value can only ever be the init (frozen) or the update's
      // constant; the join is the left value exactly when they agree.
      if (Frozen || exprEquals(Eq.Update, Eq.Init))
        V.TrivialJoin = inputVar(Eq.Name + "_l", Eq.Ty);
      continue;
    }
    if (!ReadsOthers && !V.ReadsIndex) {
      if (auto Op = foldOperator(Eq, Eq.Update, L.IndexName)) {
        V.Class = DepClass::IndependentFold;
        if (initCompatible(*Op, Eq.Init))
          V.TrivialJoin = binary(*Op, inputVar(Eq.Name + "_l", Eq.Ty),
                                 inputVar(Eq.Name + "_r", Eq.Ty));
        continue;
      }
      if (V.Reads.empty() && !containsIte(Eq.Update)) {
        // Per-step overwrite (prev = s[i]): independent of every
        // accumulator, though the join still needs the empty-chunk guard.
        V.Class = DepClass::IndependentFold;
        continue;
      }
    }
    V.Class = containsIte(Eq.Update) ? DepClass::Conditional
                                     : DepClass::PrefixDependent;
  }
  return Info;
}

const VarDependence *DependenceInfo::find(const std::string &Name) const {
  for (const VarDependence &V : Vars)
    if (V.Name == Name)
      return &V;
  return nullptr;
}

std::vector<size_t> DependenceInfo::synthesisOrder(const Loop &L) const {
  std::vector<size_t> Order;
  Order.reserve(L.Equations.size());
  for (const std::vector<std::string> &Scc : Sccs)
    for (const std::string &Name : Scc)
      if (auto Idx = L.equationIndex(Name))
        Order.push_back(*Idx);
  // Equations missing from the analysis (never for analyses of the same
  // loop) keep their natural position at the end.
  for (size_t I = 0; I != L.Equations.size(); ++I)
    if (std::find(Order.begin(), Order.end(), I) == Order.end())
      Order.push_back(I);
  return Order;
}

unsigned DependenceInfo::count(DepClass Class) const {
  unsigned Total = 0;
  for (const VarDependence &V : Vars)
    Total += V.Class == Class ? 1 : 0;
  return Total;
}

std::string DependenceInfo::table() const {
  std::ostringstream OS;
  OS << "state variable | type | class            | scc | depends on"
     << "          | join\n";
  OS << "---------------+------+------------------+-----+---------------"
     << "------+-----------\n";
  for (const VarDependence &V : Vars) {
    std::string Deps;
    for (const std::string &Read : V.Reads) {
      if (!Deps.empty())
        Deps += ",";
      Deps += Read == V.Name ? "self" : Read;
    }
    if (V.ReadsIndex)
      Deps += Deps.empty() ? "index" : ",index";
    if (Deps.empty())
      Deps = "-";
    char Line[256];
    std::snprintf(Line, sizeof(Line),
                  "%-14s | %-4s | %-16s | %3u | %-20s | %s\n", V.Name.c_str(),
                  typeName(V.Ty), depClassName(V.Class), V.SccId, Deps.c_str(),
                  V.TrivialJoin ? exprToString(V.TrivialJoin).c_str()
                                : "synthesized");
    OS << Line;
  }
  return OS.str();
}
