//===- analysis/Verifier.h - IR structural invariant checks -----*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-checked invariants of the Loop/Equation/Expr IR, run between the
/// pipeline phases (frontend conversion, normalization, lifting, codegen).
/// Each phase of the pipeline promises a contract to the next one; the
/// verifier makes those contracts explicit and catches violations at the
/// phase boundary instead of as silent wrong answers downstream.
///
/// Checked invariants:
///  - every node is well typed: operand types match the operator signature,
///    conditional arms agree, sequence indices are integers, and the cached
///    node type equals the recomputed one;
///  - no dangling references: every variable read resolves to a state
///    variable, a declared parameter, or the loop index, and every sequence
///    access names a declared sequence;
///  - initializations are state- and sequence-free (they run before the
///    first iteration);
///  - single-pass read-only sequence access: each access subscripts a
///    declared sequence with exactly the loop index (the Section-3 fragment
///    admits no other access pattern, and the unfolder silently treats any
///    index as "the current element");
///  - unknown-marked variables (the symbolic split-point state of
///    Algorithm 1) never escape the lift phase into a Loop or a join.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_ANALYSIS_VERIFIER_H
#define PARSYNT_ANALYSIS_VERIFIER_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace parsynt {

/// Pipeline phase after which a verification runs; reported with each
/// violation so a failure names the phase that broke the contract.
enum class VerifyPhase {
  AfterFrontend,  ///< conversion produced the initial equation system
  AfterNormalize, ///< a normal form produced by the rewrite engine
  AfterLift,      ///< the lifted loop with discovered auxiliaries
  BeforeCodegen,  ///< the final loop + join handed to emitters/runtime
};

/// Human-readable phase name ("after-frontend", ...).
const char *verifyPhaseName(VerifyPhase Phase);

/// Outcome of a verification: a (possibly empty) list of violations.
struct VerifierReport {
  VerifyPhase Phase = VerifyPhase::AfterFrontend;
  std::vector<std::string> Violations;

  bool ok() const { return Violations.empty(); }
  /// Renders "IR verifier (<phase>): <n> violation(s)" plus one line each.
  std::string str() const;
};

/// Verifies the structural invariants of \p L (see file comment). All
/// invariants are checked in every phase; the phase is recorded for
/// reporting and selects the unknown-variable rule (unknowns are illegal in
/// a Loop at every phase — they may only appear in free expressions during
/// lifting, see verifyExpr).
VerifierReport verifyLoop(const Loop &L, VerifyPhase Phase);

/// Verifies a free expression produced mid-phase (e.g. a normalized
/// unfolding): type consistency of every node plus, unless \p AllowUnknowns,
/// absence of VarClass::Unknown references. Name resolution is not checked
/// (the expression's frame is phase-specific).
VerifierReport verifyExpr(const ExprRef &E, VerifyPhase Phase,
                          bool AllowUnknowns);

/// Verifies a synthesized join for \p L: one well-typed component per
/// equation whose type matches the equation, reading only the split values
/// "<var>_l"/"<var>_r" of \p L's state variables, the loop parameters, and
/// constants — never sequences, the index, or unknowns.
VerifierReport verifyJoin(const Loop &L, const std::vector<ExprRef> &Components);

} // namespace parsynt

#endif // PARSYNT_ANALYSIS_VERIFIER_H
