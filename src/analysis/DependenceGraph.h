//===- analysis/DependenceGraph.h - State-variable dependences --*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The state-variable dependence structure of a recurrence-equation system,
/// in the spirit of the modular follow-up work (Farzan & Nicolet, "Modular
/// Synthesis of Divide-and-Conquer Parallelism for Nested Loops"): variable
/// v depends on w when v's update reads w. Strongly connected components of
/// this graph (Tarjan) give the synthesis a modular decomposition — joins
/// can be searched per-SCC in topological order, over only the variables an
/// SCC actually depends on.
///
/// Each variable is additionally classified on a small lattice that the
/// pipeline uses to prune the search:
///
///   Constant        < IndependentFold < Conditional < PrefixDependent
///
///  - Constant: the update never changes the value (v = v), or reads no
///    state, sequence, or index at all — the variable is a per-run constant
///    and its join is the left value.
///  - IndependentFold: the update depends on no *other* accumulator — a
///    scalar fold v = f(v, s[i], params) or a per-step overwrite v = g(s[i]).
///    When the fold is associative with a compatible initial value
///    (sum = sum + s[i], m = min(m, s[i]), p = p * x with p0 = 1), the join
///    is known in advance — v_l (op) v_r — and join *search* can be skipped
///    entirely (TrivialJoin below).
///  - Conditional: the update contains a conditional expression — a branch
///    of the original body survives into the recurrence, so the join must
///    reconcile data-dependent control (balanced parentheses, dropwhile).
///  - PrefixDependent: the update reads other accumulators (mps reads sum),
///    or is a non-associative self-recurrence whose value depends on where
///    the prefix ends (mts = max(mts + s[i], 0)); full synthesis — possibly
///    after lifting — is required.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_ANALYSIS_DEPENDENCEGRAPH_H
#define PARSYNT_ANALYSIS_DEPENDENCEGRAPH_H

#include "ir/Loop.h"

#include <set>
#include <string>
#include <vector>

namespace parsynt {

/// Join-relevant classification of a state variable (see file comment).
enum class DepClass { Constant, IndependentFold, Conditional, PrefixDependent };

/// "constant", "independent-fold", "conditional", "prefix-dependent".
const char *depClassName(DepClass Class);

/// Per-variable dependence facts, in equation order.
struct VarDependence {
  std::string Name;
  Type Ty = Type::Int;
  DepClass Class = DepClass::PrefixDependent;
  /// State variables read by the update (self included when read).
  std::set<std::string> Reads;
  /// Transitive dependence closure, self included — the only variables
  /// whose split values a C(E)-style join for this variable can mention.
  std::set<std::string> Closure;
  /// 0-based id of the variable's SCC in topological order.
  unsigned SccId = 0;
  bool SelfRecursive = false; ///< the update reads the variable itself
  bool ReadsIndex = false;    ///< the update reads the loop index
  /// For trivially-homomorphic folds: the ready-made join component over
  /// "<name>_l"/"<name>_r". Null when the join must be synthesized.
  ExprRef TrivialJoin;
};

/// The dependence graph of a loop: per-variable facts plus the SCC
/// decomposition in topological order (dependencies before dependents).
struct DependenceInfo {
  std::vector<VarDependence> Vars; ///< equation order
  /// SCCs in topological order; each lists member names in equation order.
  std::vector<std::vector<std::string>> Sccs;

  const VarDependence *find(const std::string &Name) const;
  /// Equation indices reordered SCC-by-SCC in topological order.
  std::vector<size_t> synthesisOrder(const Loop &L) const;
  /// Number of variables classified \p Class.
  unsigned count(DepClass Class) const;
  /// The classification table printed by `parsynt --analyze`.
  std::string table() const;
};

/// Builds the dependence graph and classification for \p L.
DependenceInfo analyzeDependences(const Loop &L);

} // namespace parsynt

#endif // PARSYNT_ANALYSIS_DEPENDENCEGRAPH_H
