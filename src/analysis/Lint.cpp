//===- analysis/Lint.cpp - Fragment-conformance linting -------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include <functional>
#include <set>
#include <string>

using namespace parsynt;
using namespace parsynt::surface;

namespace {

class Linter {
public:
  Linter(const SProgram &Program, DiagnosticEngine &Diags)
      : Program(Program), Diags(Diags) {}

  LintSummary run();

private:
  void error(const std::string &Message, unsigned Line, unsigned Column) {
    Diags.error(Message, Line, Column);
    ++Summary.Errors;
  }
  void warning(const std::string &Message, unsigned Line, unsigned Column) {
    Diags.warning(Message, Line, Column);
    ++Summary.Warnings;
  }

  /// Applies \p Fn to every expression node under \p E (pre-order).
  static void forEachExpr(const SExprPtr &E,
                          const std::function<void(const SExpr &)> &Fn) {
    if (!E)
      return;
    Fn(*E);
    for (const SExprPtr &Arg : E->Args)
      forEachExpr(Arg, Fn);
  }

  /// Applies \p Fn to every statement under \p Stmts (pre-order).
  static void forEachStmt(const std::vector<SStmt> &Stmts,
                          const std::function<void(const SStmt &)> &Fn) {
    for (const SStmt &S : Stmts) {
      Fn(S);
      forEachStmt(S.Then, Fn);
      forEachStmt(S.Else, Fn);
    }
  }

  /// Every expression of a statement tree: assignment values, target
  /// indices, and if conditions.
  static void forEachStmtExpr(const std::vector<SStmt> &Stmts,
                              const std::function<void(const SExpr &)> &Fn) {
    forEachStmt(Stmts, [&](const SStmt &S) {
      forEachExpr(S.Value, Fn);
      forEachExpr(S.TargetIndex, Fn);
      forEachExpr(S.Cond, Fn);
    });
  }

  void checkSequenceDiscipline();
  void checkIndexDiscipline();
  void checkAssignmentTargets();
  void checkInitialization();

  const SProgram &Program;
  DiagnosticEngine &Diags;
  LintSummary Summary;

  std::set<std::string> SeqNames;      // subscripted names + the bound
  std::set<std::string> BodyAssigned;  // scalar state variables
  std::set<std::string> DeclaredParams;
};

/// Sequence accesses: read-only, subscripted by exactly the loop index.
void Linter::checkSequenceDiscipline() {
  auto CheckAccess = [&](const SExpr &E) {
    if (E.Kind != SExprKind::Subscript)
      return;
    const SExpr &Index = *E.Args[0];
    if (Index.Kind == SExprKind::Name && Index.Name == Program.IndexName)
      return;
    error("sequence '" + E.Name + "' is subscripted by '" +
              (Index.Kind == SExprKind::Name ? Index.Name : "<expression>") +
              "'; the single-pass fragment admits only the plain loop index "
              "'" +
              Program.IndexName + "'",
          E.Line, E.Column);
  };
  forEachStmtExpr(Program.Body, CheckAccess);

  forEachStmt(Program.Body, [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign && S.TargetIndex)
      error("sequence '" + S.Target +
                "' is written; the fragment admits only scalar state "
                "(sequences are read-only)",
            S.Line, S.Column);
  });
  forEachStmt(Program.Inits, [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign && S.TargetIndex)
      error("sequence '" + S.Target + "' is written before the loop",
            S.Line, S.Column);
  });

  // Initializers run before any element exists.
  forEachStmtExpr(Program.Inits, [&](const SExpr &E) {
    if (E.Kind == SExprKind::Subscript)
      error("sequence '" + E.Name +
                "' is read before the loop; initializers may only use "
                "constants and parameters",
            E.Line, E.Column);
  });

  // A name cannot be both a sequence and a scalar.
  for (const std::string &Seq : SeqNames) {
    if (BodyAssigned.count(Seq))
      error("'" + Seq + "' is used both as a sequence and as a state "
                        "variable",
            0, 0);
    if (DeclaredParams.count(Seq))
      error("'" + Seq + "' is used both as a sequence and as a parameter", 0,
            0);
  }
}

/// The loop index: never assigned, never read before the loop; body reads
/// outside subscripts make the loop position-dependent (warning).
void Linter::checkIndexDiscipline() {
  forEachStmt(Program.Body, [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign && !S.TargetIndex &&
        S.Target == Program.IndexName)
      error("the loop index '" + Program.IndexName +
                "' may not be assigned in the body",
          S.Line, S.Column);
  });
  forEachStmt(Program.Inits, [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign && !S.TargetIndex &&
        S.Target == Program.IndexName)
      error("the loop index '" + Program.IndexName +
                "' may not be assigned before the loop",
            S.Line, S.Column);
  });
  forEachStmtExpr(Program.Inits, [&](const SExpr &E) {
    if (E.Kind == SExprKind::Name && E.Name == Program.IndexName)
      error("the loop index '" + Program.IndexName +
                "' is read before the loop",
            E.Line, E.Column);
  });

  // Position/bound dependence: a read of the index outside a subscript
  // (s[i] itself is position-neutral, the unfolder consumes it as "the
  // current element").
  std::function<bool(const SExprPtr &)> ReadsIndexOutsideSubscript =
      [&](const SExprPtr &E) -> bool {
    if (!E)
      return false;
    if (E->Kind == SExprKind::Name && E->Name == Program.IndexName)
      return true;
    if (E->Kind == SExprKind::Subscript)
      return false; // s[i] does not make the loop position-dependent
    for (const SExprPtr &Arg : E->Args)
      if (ReadsIndexOutsideSubscript(Arg))
        return true;
    return false;
  };
  forEachStmt(Program.Body, [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign && S.Target != Program.IndexName &&
        ReadsIndexOutsideSubscript(S.Value))
      warning("accumulator '" + S.Target +
                  "' depends on the loop position/bound; the index will be "
                  "materialized as an auxiliary accumulator and the loop is "
                  "not parallelizable in its original form",
              S.Line, S.Column);
    if (S.Kind == SStmtKind::If && ReadsIndexOutsideSubscript(S.Cond))
      warning("branch condition depends on the loop position/bound; the "
              "index will be materialized as an auxiliary accumulator",
              S.Line, S.Column);
  });
}

/// Assignment targets: parameters are read-only.
void Linter::checkAssignmentTargets() {
  auto Check = [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign && !S.TargetIndex &&
        DeclaredParams.count(S.Target))
      error("parameter '" + S.Target + "' is read-only and may not be "
                                       "assigned",
            S.Line, S.Column);
  };
  forEachStmt(Program.Inits, Check);
  forEachStmt(Program.Body, Check);
}

/// State variables: initialized before the loop, never read before their
/// initialization.
void Linter::checkInitialization() {
  std::set<std::string> Initialized;
  for (const SStmt &S : Program.Inits) {
    if (S.Kind != SStmtKind::Assign || S.TargetIndex)
      continue;
    forEachExpr(S.Value, [&](const SExpr &E) {
      if (E.Kind != SExprKind::Name || !BodyAssigned.count(E.Name))
        return;
      if (!Initialized.count(E.Name))
        error("state variable '" + E.Name +
                  "' is read before its initialization",
              E.Line, E.Column);
    });
    Initialized.insert(S.Target);
  }

  // Every body-assigned scalar needs an initializer; report at the first
  // assignment so the diagnostic lands on the offending variable.
  std::set<std::string> Reported;
  forEachStmt(Program.Body, [&](const SStmt &S) {
    if (S.Kind != SStmtKind::Assign || S.TargetIndex)
      return;
    if (S.Target == Program.IndexName || DeclaredParams.count(S.Target))
      return; // diagnosed by the index/parameter checks
    if (!Initialized.count(S.Target) && Reported.insert(S.Target).second)
      error("state variable '" + S.Target +
                "' is not initialized before the loop",
            S.Line, S.Column);
  });
}

LintSummary Linter::run() {
  SeqNames.insert(Program.BoundSeqName);
  auto CollectSeq = [&](const SExpr &E) {
    if (E.Kind == SExprKind::Subscript)
      SeqNames.insert(E.Name);
  };
  forEachStmtExpr(Program.Inits, CollectSeq);
  forEachStmtExpr(Program.Body, CollectSeq);
  forEachStmt(Program.Body, [&](const SStmt &S) {
    if (S.Kind == SStmtKind::Assign) {
      if (S.TargetIndex)
        SeqNames.insert(S.Target);
      else
        BodyAssigned.insert(S.Target);
    }
  });
  DeclaredParams.insert(Program.Params.begin(), Program.Params.end());

  checkSequenceDiscipline();
  checkIndexDiscipline();
  checkAssignmentTargets();
  checkInitialization();
  return Summary;
}

} // namespace

LintSummary parsynt::lintProgram(const SProgram &Program,
                                 DiagnosticEngine &Diags) {
  Linter L(Program, Diags);
  return L.run();
}
