//===- analysis/Verifier.cpp - IR structural invariant checks -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ir/ExprOps.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"

#include <set>
#include <sstream>

using namespace parsynt;

const char *parsynt::verifyPhaseName(VerifyPhase Phase) {
  switch (Phase) {
  case VerifyPhase::AfterFrontend:
    return "after-frontend";
  case VerifyPhase::AfterNormalize:
    return "after-normalize";
  case VerifyPhase::AfterLift:
    return "after-lift";
  case VerifyPhase::BeforeCodegen:
    return "before-codegen";
  }
  return "unknown-phase";
}

std::string VerifierReport::str() const {
  std::ostringstream OS;
  OS << "IR verifier (" << verifyPhaseName(Phase) << "): ";
  if (ok()) {
    OS << "ok";
    return OS.str();
  }
  OS << Violations.size() << " violation(s)\n";
  for (const std::string &V : Violations)
    OS << "  - " << V << "\n";
  return OS.str();
}

namespace {

/// Accumulates violations with a "where" prefix naming the enclosing
/// equation/component, so a report pinpoints the offending expression.
class Checker {
public:
  Checker(VerifierReport &Report) : Report(Report) {}

  void violation(const std::string &Where, const std::string &What) {
    Report.Violations.push_back(Where + ": " + What);
  }

  /// Recursively checks type consistency of every node under \p E. Returns
  /// the node's (cached) type; the recomputation happens per node kind.
  void checkTypes(const std::string &Where, const ExprRef &E) {
    if (!E) {
      violation(Where, "null expression node");
      return;
    }
    switch (E->kind()) {
    case ExprKind::IntConst:
      if (E->type() != Type::Int)
        violation(Where, "integer literal typed " + typeNameOf(E));
      break;
    case ExprKind::BoolConst:
      if (E->type() != Type::Bool)
        violation(Where, "boolean literal typed " + typeNameOf(E));
      break;
    case ExprKind::Var:
      break; // declaration consistency is checked by the name pass
    case ExprKind::SeqAccess: {
      const auto *A = cast<SeqAccessExpr>(E);
      checkTypes(Where, A->index());
      if (A->index() && A->index()->type() != Type::Int)
        violation(Where, "sequence '" + A->seqName() +
                             "' subscripted with a non-integer index");
      break;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      checkTypes(Where, U->operand());
      Type Expected = U->op() == UnaryOp::Neg ? Type::Int : Type::Bool;
      if (U->operand() && U->operand()->type() != Expected)
        violation(Where, std::string("operand of '") + unaryOpName(U->op()) +
                             "' typed " + typeNameOf(U->operand()));
      if (E->type() != Expected)
        violation(Where, std::string("result of '") + unaryOpName(U->op()) +
                             "' typed " + typeNameOf(E));
      break;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      checkTypes(Where, B->lhs());
      checkTypes(Where, B->rhs());
      if (!B->lhs() || !B->rhs())
        break;
      Type L = B->lhs()->type(), R = B->rhs()->type();
      const char *Op = binaryOpName(B->op());
      if (isArithOp(B->op()) && (L != Type::Int || R != Type::Int))
        violation(Where, std::string("arithmetic '") + Op +
                             "' over non-integer operands");
      if (isBoolOp(B->op()) && (L != Type::Bool || R != Type::Bool))
        violation(Where, std::string("boolean '") + Op +
                             "' over non-boolean operands");
      if (isCompareOp(B->op())) {
        bool Equality = B->op() == BinaryOp::Eq || B->op() == BinaryOp::Ne;
        if (Equality ? (L != R) : (L != Type::Int || R != Type::Int))
          violation(Where, std::string("comparison '") + Op +
                               "' over incompatible operands");
      }
      if (E->type() != binaryResultType(B->op()))
        violation(Where, std::string("result of '") + Op + "' typed " +
                             typeNameOf(E));
      break;
    }
    case ExprKind::Ite: {
      const auto *I = cast<IteExpr>(E);
      checkTypes(Where, I->cond());
      checkTypes(Where, I->thenExpr());
      checkTypes(Where, I->elseExpr());
      if (I->cond() && I->cond()->type() != Type::Bool)
        violation(Where, "conditional with a non-boolean condition");
      if (I->thenExpr() && I->elseExpr() &&
          I->thenExpr()->type() != I->elseExpr()->type())
        violation(Where, "conditional arms of different types");
      if (I->thenExpr() && E->type() != I->thenExpr()->type())
        violation(Where, "conditional typed unlike its arms");
      break;
    }
    }
  }

  /// Reports every VarClass::Unknown reference under \p E.
  void checkNoUnknowns(const std::string &Where, const ExprRef &E) {
    if (!E)
      return;
    forEachNode(E, [&](const ExprRef &Node) {
      if (const auto *V = dyn_cast<VarExpr>(Node))
        if (V->varClass() == VarClass::Unknown)
          violation(Where, "unknown-marked variable '" + V->name() +
                               "' escaped the lift phase");
    });
  }

private:
  static std::string typeNameOf(const ExprRef &E) {
    return E ? typeName(E->type()) : "<null>";
  }

  VerifierReport &Report;
};

} // namespace

VerifierReport parsynt::verifyLoop(const Loop &L, VerifyPhase Phase) {
  VerifierReport Report;
  Report.Phase = Phase;
  Span VerifySpan("verifyLoop", trace::Analysis);
  VerifySpan.attr("loop", L.Name.empty() ? "<loop>" : L.Name);
  VerifySpan.attr("phase", verifyPhaseName(Phase));
  struct VerifyFinisher {
    Span &S;
    const VerifierReport &R;
    ~VerifyFinisher() {
      S.attr("ok", R.ok());
      S.attr("violations", uint64_t(R.Violations.size()));
      MetricsRegistry &M = MetricsRegistry::global();
      M.counter("analysis.verify.passes").inc();
      M.counter("analysis.verify.violations").add(R.Violations.size());
    }
  } Finish{VerifySpan, Report};
  Checker C(Report);

  // Declaration table and uniqueness.
  std::set<std::string> Declared;
  auto declare = [&](const std::string &Name, const char *What) {
    if (!Declared.insert(Name).second)
      C.violation("loop '" + L.Name + "'",
                  std::string(What) + " '" + Name + "' redeclares a name");
  };
  for (const SeqDecl &S : L.Sequences)
    declare(S.Name, "sequence");
  for (const ParamDecl &P : L.Params)
    declare(P.Name, "parameter");
  declare(L.IndexName, "index");
  std::set<std::string> StateNames, ParamNames;
  for (const Equation &Eq : L.Equations) {
    declare(Eq.Name, "state variable");
    StateNames.insert(Eq.Name);
  }
  for (const ParamDecl &P : L.Params)
    ParamNames.insert(P.Name);
  for (const std::string &Out : L.Outputs)
    if (!StateNames.count(Out))
      C.violation("loop '" + L.Name + "'",
                  "output '" + Out + "' names no state variable");

  for (const Equation &Eq : L.Equations) {
    std::string InitWhere = "init of '" + Eq.Name + "'";
    std::string UpdWhere = "update of '" + Eq.Name + "'";
    if (!Eq.Init || !Eq.Update) {
      C.violation("equation '" + Eq.Name + "'", "null init or update");
      continue;
    }

    // Type consistency, node by node, plus the equation's own type.
    C.checkTypes(InitWhere, Eq.Init);
    C.checkTypes(UpdWhere, Eq.Update);
    if (Eq.Init->type() != Eq.Ty)
      C.violation(InitWhere, std::string("typed ") + typeName(Eq.Init->type()) +
                                 ", equation declares " + typeName(Eq.Ty));
    if (Eq.Update->type() != Eq.Ty)
      C.violation(UpdWhere, std::string("typed ") +
                                typeName(Eq.Update->type()) +
                                ", equation declares " + typeName(Eq.Ty));

    // Unknowns never appear in a Loop, whatever the phase.
    C.checkNoUnknowns(InitWhere, Eq.Init);
    C.checkNoUnknowns(UpdWhere, Eq.Update);

    // Inits run before the first iteration: parameters only.
    for (const std::string &V : collectAllVars(Eq.Init))
      if (!ParamNames.count(V))
        C.violation(InitWhere, "references '" + V + "', not a parameter");
    if (!collectSeqNames(Eq.Init).empty())
      C.violation(InitWhere, "reads a sequence before the loop");

    // Updates: no dangling names, and every variable's recorded type agrees
    // with its declaration.
    forEachNode(Eq.Update, [&](const ExprRef &Node) {
      const auto *V = dyn_cast<VarExpr>(Node);
      if (!V)
        return;
      const std::string &Name = V->name();
      if (const Equation *Def = L.findEquation(Name)) {
        if (V->type() != Def->Ty)
          C.violation(UpdWhere, "reads state '" + Name + "' as " +
                                    typeName(V->type()) + ", declared " +
                                    typeName(Def->Ty));
      } else if (ParamNames.count(Name)) {
        for (const ParamDecl &P : L.Params)
          if (P.Name == Name && V->type() != P.Ty)
            C.violation(UpdWhere, "reads parameter '" + Name + "' as " +
                                      typeName(V->type()) + ", declared " +
                                      typeName(P.Ty));
      } else if (Name != L.IndexName) {
        C.violation(UpdWhere, "dangling reference to '" + Name + "'");
      }
    });

    // Single-pass read-only access: s[<index var>] over a declared sequence.
    forEachNode(Eq.Update, [&](const ExprRef &Node) {
      const auto *A = dyn_cast<SeqAccessExpr>(Node);
      if (!A)
        return;
      if (!L.hasSequence(A->seqName()))
        C.violation(UpdWhere,
                    "reads undeclared sequence '" + A->seqName() + "'");
      const auto *Idx = dyn_cast<VarExpr>(A->index());
      if (!Idx || Idx->name() != L.IndexName)
        C.violation(UpdWhere, "sequence '" + A->seqName() +
                                  "' subscripted by '" +
                                  exprToString(A->index()) +
                                  "', not the loop index (single-pass "
                                  "fragment admits only s[" +
                                  L.IndexName + "])");
    });
  }
  return Report;
}

VerifierReport parsynt::verifyExpr(const ExprRef &E, VerifyPhase Phase,
                                   bool AllowUnknowns) {
  VerifierReport Report;
  Report.Phase = Phase;
  Checker C(Report);
  C.checkTypes("expression", E);
  if (!AllowUnknowns)
    C.checkNoUnknowns("expression", E);
  return Report;
}

VerifierReport parsynt::verifyJoin(const Loop &L,
                                   const std::vector<ExprRef> &Components) {
  VerifierReport Report;
  Report.Phase = VerifyPhase::BeforeCodegen;
  Checker C(Report);

  if (Components.size() != L.Equations.size()) {
    C.violation("join", "has " + std::to_string(Components.size()) +
                            " components for " +
                            std::to_string(L.Equations.size()) + " equations");
    return Report;
  }

  std::set<std::string> Allowed;
  for (const Equation &Eq : L.Equations) {
    Allowed.insert(Eq.Name + "_l");
    Allowed.insert(Eq.Name + "_r");
  }
  for (const ParamDecl &P : L.Params)
    Allowed.insert(P.Name);

  for (size_t I = 0; I != Components.size(); ++I) {
    std::string Where = "join component for '" + L.Equations[I].Name + "'";
    const ExprRef &Comp = Components[I];
    if (!Comp) {
      C.violation(Where, "is null");
      continue;
    }
    C.checkTypes(Where, Comp);
    C.checkNoUnknowns(Where, Comp);
    if (Comp->type() != L.Equations[I].Ty)
      C.violation(Where, std::string("typed ") + typeName(Comp->type()) +
                             ", equation declares " +
                             typeName(L.Equations[I].Ty));
    for (const std::string &V : collectAllVars(Comp))
      if (!Allowed.count(V))
        C.violation(Where, "references '" + V +
                               "', not a split value or parameter");
    if (!collectSeqNames(Comp).empty())
      C.violation(Where, "reads a sequence (joins see only split states)");
  }
  return Report;
}
