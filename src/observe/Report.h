//===- observe/Report.h - Machine-readable run reports ----------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable machine-readable run-report schema behind `parsynt --report
/// json`, `bench/table1 --report json`, and `bench/fig8 --report json`.
/// CI archives these as `BENCH_*.json` and diffs them across PRs, so the
/// schema is versioned and append-only:
///
///   {
///     "schema": "parsynt-run-report",
///     "version": 1,
///     "tool": "parsynt" | "table1" | "fig8",
///     "benchmarks": [{
///       "name": ..., "outcome": "success" | "failure",
///       "failure": {kind, message, source?},          // failures only
///       "aux_required": bool, "aux_count": n, "aux_discovered": n,
///       "sequential_fallback": bool,
///       "seeds_accepted": n, "restriction_retries": n,
///       "phase_seconds": {"join": s, "lift": s, "proof": s, "total": s},
///       "metrics": {counter: delta, ...},             // per-benchmark
///       "extra": {key: number, ...}                   // driver-specific
///     }],
///     "metrics": {"counters": {...}, "gauges": {...},
///                 "histograms": {name: {count,sum,min,max}}},
///     "faults": [{"point": ..., "polls": n, "fires": n}],
///     "totals": {"benchmarks": n, "successes": n, "failures": n,
///                "total_seconds": s}
///   }
///
/// Schema evolution rule (DESIGN.md §5e): fields are added, never renamed
/// or removed, and any breaking change bumps "version".
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_OBSERVE_REPORT_H
#define PARSYNT_OBSERVE_REPORT_H

#include "observe/Metrics.h"
#include "pipeline/Parallelizer.h"
#include "support/Failure.h"

#include <string>
#include <utility>
#include <vector>

namespace parsynt {

/// One benchmark (or one CLI input) in a run report.
struct BenchmarkEntry {
  std::string Name;
  bool Success = false;
  FailureInfo Failure; ///< serialized only when non-empty
  bool AuxRequired = false;
  unsigned AuxCount = 0;
  unsigned AuxDiscovered = 0;
  bool SequentialFallback = false;
  unsigned SeedsAccepted = 0;
  unsigned RestrictionRetries = 0;
  double JoinSeconds = 0, LiftSeconds = 0, ProofSeconds = 0, TotalSeconds = 0;
  /// Per-benchmark counter deltas (see counterDeltas()).
  std::vector<std::pair<std::string, uint64_t>> Metrics;
  /// Driver-specific numbers (fig8 speedups, element counts, ...).
  std::vector<std::pair<std::string, double>> Extra;
};

/// A whole run. toJson() additionally snapshots the global metric
/// registry and the fault injector at call time.
struct RunReport {
  static constexpr int Version = 1;
  std::string Tool = "parsynt";
  std::vector<BenchmarkEntry> Benchmarks;
  std::string toJson() const;
};

/// Builds a report entry from a pipeline result. Pass ProofSeconds < 0
/// when no proof check ran (serialized as 0 with the phase still present —
/// the schema's phase_seconds object always has all four keys).
BenchmarkEntry makeBenchmarkEntry(const std::string &Name,
                                  const PipelineResult &Result,
                                  double ProofSeconds = -1);

/// Counter deltas After - Before, dropping zero deltas — the per-benchmark
/// metrics attribution used by the bench drivers (snapshot the global
/// registry around each parallelizeLoop call).
std::vector<std::pair<std::string, uint64_t>>
counterDeltas(const MetricsRegistry::Snapshot &Before,
              const MetricsRegistry::Snapshot &After);

} // namespace parsynt

#endif // PARSYNT_OBSERVE_REPORT_H
