//===- observe/Report.cpp - Machine-readable run reports ------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "observe/Report.h"

#include "support/FaultInjector.h"
#include "support/Json.h"

namespace parsynt {

BenchmarkEntry makeBenchmarkEntry(const std::string &Name,
                                  const PipelineResult &Result,
                                  double ProofSeconds) {
  BenchmarkEntry E;
  E.Name = Name;
  E.Success = Result.Success;
  E.Failure = Result.Failure;
  E.AuxRequired = Result.AuxRequired;
  E.AuxCount = Result.AuxCount;
  E.AuxDiscovered = Result.AuxDiscovered;
  E.SequentialFallback = Result.SequentialFallback;
  E.SeedsAccepted = Result.SeedsAccepted;
  E.RestrictionRetries = Result.RestrictionRetries;
  E.JoinSeconds = Result.JoinSeconds;
  E.LiftSeconds = Result.LiftSeconds;
  E.ProofSeconds = ProofSeconds < 0 ? 0 : ProofSeconds;
  E.TotalSeconds = Result.TotalSeconds;
  return E;
}

std::vector<std::pair<std::string, uint64_t>>
counterDeltas(const MetricsRegistry::Snapshot &Before,
              const MetricsRegistry::Snapshot &After) {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const auto &KV : After.Counters) {
    uint64_t Prior = Before.counterOr0(KV.first);
    if (KV.second > Prior)
      Out.emplace_back(KV.first, KV.second - Prior);
  }
  return Out;
}

std::string RunReport::toJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("schema").string("parsynt-run-report");
  W.key("version").number(Version);
  W.key("tool").string(Tool);

  W.key("benchmarks").beginArray();
  unsigned Successes = 0;
  double TotalSeconds = 0;
  for (const BenchmarkEntry &E : Benchmarks) {
    Successes += E.Success ? 1 : 0;
    TotalSeconds += E.TotalSeconds;
    W.beginObject();
    W.key("name").string(E.Name);
    W.key("outcome").string(E.Success ? "success" : "failure");
    if (E.Failure)
      W.key("failure").raw(E.Failure.toJson());
    W.key("aux_required").boolean(E.AuxRequired);
    W.key("aux_count").number(E.AuxCount);
    W.key("aux_discovered").number(E.AuxDiscovered);
    W.key("sequential_fallback").boolean(E.SequentialFallback);
    W.key("seeds_accepted").number(E.SeedsAccepted);
    W.key("restriction_retries").number(E.RestrictionRetries);
    W.key("phase_seconds").beginObject();
    W.key("join").number(E.JoinSeconds);
    W.key("lift").number(E.LiftSeconds);
    W.key("proof").number(E.ProofSeconds);
    W.key("total").number(E.TotalSeconds);
    W.endObject();
    W.key("metrics").beginObject();
    for (const auto &KV : E.Metrics)
      W.key(KV.first).number(KV.second);
    W.endObject();
    if (!E.Extra.empty()) {
      W.key("extra").beginObject();
      for (const auto &KV : E.Extra)
        W.key(KV.first).number(KV.second);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();

  MetricsRegistry::Snapshot M = MetricsRegistry::global().snapshot();
  W.key("metrics").beginObject();
  W.key("counters").beginObject();
  for (const auto &KV : M.Counters)
    W.key(KV.first).number(KV.second);
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &KV : M.Gauges)
    W.key(KV.first).number(KV.second);
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &H : M.Histograms) {
    W.key(H.Name).beginObject();
    W.key("count").number(H.Count);
    W.key("sum").number(H.Sum);
    W.key("min").number(H.Min);
    W.key("max").number(H.Max);
    W.endObject();
  }
  W.endObject();
  W.endObject();

  W.key("faults").beginArray();
  for (const auto &P : FaultInjector::instance().pointSnapshots()) {
    W.beginObject();
    W.key("point").string(P.Name);
    W.key("polls").number(P.Polls);
    W.key("fires").number(P.Fires);
    W.endObject();
  }
  W.endArray();

  W.key("totals").beginObject();
  W.key("benchmarks").number(Benchmarks.size());
  W.key("successes").number(Successes);
  W.key("failures").number(Benchmarks.size() - Successes);
  W.key("total_seconds").number(TotalSeconds);
  W.endObject();

  W.endObject();
  return W.str() + "\n";
}

} // namespace parsynt
