//===- observe/Tracer.h - Structured tracing spans --------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight, always-compiled tracing layer: RAII `Span`s (name,
/// category, start/end, parent, key=value attributes) recorded into
/// per-thread buffers that are lock-free on the writer side. The paper's
/// Table 1 and Figure 8 are fundamentally *measurements*; this layer makes
/// the sub-searches behind them (CEGIS rounds, lifting fixpoint passes,
/// normalization batches, scheduler leaf/join execution) visible as a
/// Perfetto-loadable timeline instead of a single wall-clock number.
///
/// Cost model: tracing is off by default and every span site starts with a
/// single relaxed atomic load (`Tracer::enabled()`). While off, a Span is
/// two branches and no stores — no buffer is allocated, no clock is read,
/// no attribute is formatted (tests/observe_test.cpp pins the
/// zero-allocation property). While on, each thread appends completed
/// spans to its own chunked buffer: the owner writes a slot, then
/// publishes it with a release store of the element count; readers walk
/// chunks through acquire loads and only touch published slots, so
/// draining concurrently with recording is data-race-free by construction
/// (TSan-verified). No lock is ever taken on the record path.
///
/// Header-only (C++17), like TaskPool/ParallelReduce, so the standalone
/// programs emitted by `codegen/EmitCpp` share the exact tracer the
/// synthesis pipeline uses: a `PARSYNT_TRACE=<file>` environment variable
/// makes an emitted program dump the same Chrome-JSON stream the CLI's
/// `--trace` flag produces (see `writeChromeTrace` below and
/// observe/TraceExport.h for the richer compiled exporters).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_OBSERVE_TRACER_H
#define PARSYNT_OBSERVE_TRACER_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace parsynt {

/// Span categories: one per pipeline layer, mirroring the library
/// structure. Rendered as the Chrome-trace "cat" field and aggregated by
/// the `--phase-report` table. Values are stable identifiers — the run
/// report schema names them — so append, never reorder.
namespace trace {
inline constexpr const char *Frontend = "frontend";
inline constexpr const char *Analysis = "analysis";
inline constexpr const char *Synth = "synth";
inline constexpr const char *Oracle = "oracle";
inline constexpr const char *Normalize = "normalize";
inline constexpr const char *Lift = "lift";
inline constexpr const char *Proof = "proof";
inline constexpr const char *Codegen = "codegen";
inline constexpr const char *Pipeline = "pipeline";
inline constexpr const char *Runtime = "runtime";
} // namespace trace

/// One key=value span attribute. Numeric values keep their unquoted JSON
/// rendering so Perfetto can aggregate them.
struct TraceAttr {
  std::string Key;
  std::string Value;
  bool Quoted = true; ///< false: Value is a JSON number/bool literal
};

/// A completed span. Immutable once published into a buffer.
struct TraceEvent {
  const char *Name = "";     ///< static string (span sites use literals)
  const char *Category = ""; ///< one of the trace:: categories
  uint64_t StartNs = 0;      ///< nanoseconds since the tracer epoch
  uint64_t EndNs = 0;
  uint64_t SpanId = 0;
  uint64_t ParentId = 0; ///< 0: a root span on its thread
  uint32_t ThreadId = 0; ///< dense per-buffer id (not the OS tid)
  std::vector<TraceAttr> Attrs;

  double durationSeconds() const {
    return static_cast<double>(EndNs - StartNs) * 1e-9;
  }
};

namespace detail {

/// A per-thread span sink. The owning thread appends without locks; any
/// thread may concurrently read the published prefix. `Base` supports
/// logical resets between runs without touching writer-owned state.
class TraceBuffer {
  static constexpr size_t ChunkCap = 512;
  struct Chunk {
    TraceEvent Events[ChunkCap];
    std::atomic<Chunk *> Next{nullptr};
  };

public:
  TraceBuffer() : Head(new Chunk()), Tail(Head) {}
  ~TraceBuffer() {
    for (Chunk *C = Head; C;) {
      Chunk *Next = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = Next;
    }
  }
  TraceBuffer(const TraceBuffer &) = delete;
  TraceBuffer &operator=(const TraceBuffer &) = delete;

  /// Owner thread only. Publishes the event with a release store so a
  /// concurrent reader that observes the new count also observes the slot.
  void append(TraceEvent &&E) {
    uint64_t N = Count.load(std::memory_order_relaxed);
    if (N % ChunkCap == 0 && N != 0) {
      Chunk *Fresh = new Chunk();
      Tail->Next.store(Fresh, std::memory_order_release);
      Tail = Fresh;
    }
    Tail->Events[N % ChunkCap] = std::move(E);
    Count.store(N + 1, std::memory_order_release);
  }

  /// Any thread. Copies the published events at or past the logical base.
  void snapshot(std::vector<TraceEvent> &Out) const {
    uint64_t N = Count.load(std::memory_order_acquire);
    uint64_t B = Base.load(std::memory_order_relaxed);
    const Chunk *C = Head;
    for (uint64_t I = 0; I < N; ++I) {
      if (I != 0 && I % ChunkCap == 0)
        C = C->Next.load(std::memory_order_acquire);
      if (I >= B)
        Out.push_back(C->Events[I % ChunkCap]);
    }
  }

  /// Logically discards everything published so far (storage is kept; the
  /// writer never looks at Base).
  void reset() { Base.store(Count.load(std::memory_order_acquire),
                            std::memory_order_relaxed); }

  uint64_t published() const { return Count.load(std::memory_order_acquire); }

private:
  Chunk *Head;           ///< immutable after construction
  Chunk *Tail;           ///< writer-only
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Base{0};
};

} // namespace detail

/// The process-wide tracer: the enable flag, the buffer registry, and the
/// epoch all spans are timed against.
class Tracer {
public:
  static Tracer &instance() {
    static Tracer T;
    return T;
  }

  /// The one check every span site pays when tracing is off: a relaxed
  /// atomic load of an inline variable — no singleton guard, no branch on
  /// cold data.
  static bool enabled() { return OnFlag.load(std::memory_order_relaxed); }

  /// Flips tracing. Enabling resets the epoch-relative clock origin only
  /// on the first enable, so timestamps stay monotone across toggles.
  static void setEnabled(bool On) {
    instance(); // force epoch initialization before any span can record
    OnFlag.store(On, std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer epoch (process-lifetime monotone).
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Copies every published span from every thread's buffer, ordered by
  /// start time. Safe to call while other threads are still recording —
  /// it sees a consistent prefix of each buffer.
  std::vector<TraceEvent> drain() const {
    std::vector<TraceEvent> Out;
    {
      std::lock_guard<std::mutex> Lock(RegistryMutex);
      for (const auto &B : Buffers)
        B->snapshot(Out);
    }
    std::stable_sort(Out.begin(), Out.end(),
                     [](const TraceEvent &A, const TraceEvent &B) {
                       return A.StartNs < B.StartNs;
                     });
    return Out;
  }

  /// Logically clears every buffer (for per-run isolation in tests and
  /// between CLI runs). Threads recording concurrently may keep events
  /// that straddle the reset; quiesce first when exactness matters.
  void reset() {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    for (const auto &B : Buffers)
      B->reset();
  }

  /// Number of per-thread buffers ever allocated. The overhead guard in
  /// observe_test pins this to zero across a tracing-off synthesis run:
  /// buffers exist only because some span actually recorded.
  size_t threadBufferCount() const {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    return Buffers.size();
  }

  /// Total spans published across all buffers (monotone; ignores resets).
  uint64_t publishedSpanCount() const {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    uint64_t N = 0;
    for (const auto &B : Buffers)
      N += B->published();
    return N;
  }

  /// \name Record-path internals (used by Span)
  /// @{

  /// The calling thread's buffer, allocated and registered on first use.
  detail::TraceBuffer &myBuffer(uint32_t &TidOut) {
    struct Binding {
      detail::TraceBuffer *Buf = nullptr;
      uint32_t Tid = 0;
    };
    static thread_local Binding B;
    if (!B.Buf) {
      auto Fresh = std::make_unique<detail::TraceBuffer>();
      B.Buf = Fresh.get();
      std::lock_guard<std::mutex> Lock(RegistryMutex);
      B.Tid = static_cast<uint32_t>(Buffers.size());
      Buffers.push_back(std::move(Fresh));
    }
    TidOut = B.Tid;
    return *B.Buf;
  }

  uint64_t nextSpanId() {
    return NextId.fetch_add(1, std::memory_order_relaxed);
  }

  /// The innermost open span on this thread (0: none). Cross-thread tasks
  /// start fresh stacks; the runtime labels their spans by category
  /// instead of synthetic cross-thread edges.
  static uint64_t &currentSpan() {
    static thread_local uint64_t Current = 0;
    return Current;
  }

  /// @}

private:
  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  static inline std::atomic<bool> OnFlag{false};
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex RegistryMutex;
  std::vector<std::unique_ptr<detail::TraceBuffer>> Buffers;
  std::atomic<uint64_t> NextId{1};
};

/// RAII span. Construction with tracing off is two branches and no
/// stores; with tracing on it reads the clock, claims an id, and links to
/// the innermost open span on this thread. Attributes are formatted only
/// while the span is live (i.e. only when tracing was on at entry).
class Span {
public:
  Span() = default; ///< inactive span (placeholder)

  Span(const char *Name, const char *Category) {
    if (!Tracer::enabled())
      return;
    Tracer &T = Tracer::instance();
    Active = true;
    E.Name = Name;
    E.Category = Category;
    E.StartNs = T.nowNs();
    E.SpanId = T.nextSpanId();
    E.ParentId = Tracer::currentSpan();
    Tracer::currentSpan() = E.SpanId;
  }

  Span(Span &&Other) noexcept : Active(Other.Active), E(std::move(Other.E)) {
    Other.Active = false;
  }
  Span &operator=(Span &&Other) noexcept {
    if (this != &Other) {
      finish();
      Active = Other.Active;
      E = std::move(Other.E);
      Other.Active = false;
    }
    return *this;
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() { finish(); }

  bool active() const { return Active; }
  uint64_t id() const { return E.SpanId; }

  /// \name Attributes (no-ops on an inactive span)
  /// @{
  void attr(const char *Key, const std::string &Value) {
    if (Active)
      E.Attrs.push_back({Key, Value, /*Quoted=*/true});
  }
  void attr(const char *Key, const char *Value) {
    if (Active)
      E.Attrs.push_back({Key, Value, /*Quoted=*/true});
  }
  void attr(const char *Key, int64_t Value) {
    if (Active)
      E.Attrs.push_back({Key, std::to_string(Value), /*Quoted=*/false});
  }
  void attr(const char *Key, uint64_t Value) {
    if (Active)
      E.Attrs.push_back({Key, std::to_string(Value), /*Quoted=*/false});
  }
  void attr(const char *Key, int Value) { attr(Key, int64_t(Value)); }
  void attr(const char *Key, unsigned Value) { attr(Key, uint64_t(Value)); }
  void attr(const char *Key, double Value) {
    if (!Active)
      return;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
    E.Attrs.push_back({Key, Buf, /*Quoted=*/false});
  }
  void attr(const char *Key, bool Value) {
    if (Active)
      E.Attrs.push_back({Key, Value ? "true" : "false", /*Quoted=*/false});
  }
  /// @}

  /// Ends the span now (idempotent; the destructor calls it).
  void finish() {
    if (!Active)
      return;
    Active = false;
    Tracer &T = Tracer::instance();
    E.EndNs = T.nowNs();
    Tracer::currentSpan() = E.ParentId;
    uint32_t Tid = 0;
    detail::TraceBuffer &Buf = T.myBuffer(Tid);
    E.ThreadId = Tid;
    Buf.append(std::move(E));
    E = TraceEvent{};
  }

private:
  bool Active = false;
  TraceEvent E;
};

/// \name Minimal Chrome-JSON emission
/// Shared by the compiled exporter (observe/TraceExport.cpp) and the
/// emitted standalone programs (which have only this header). The output
/// is the Chrome Trace Event Format's "complete event" ('ph':'X') stream
/// wrapped in a {"traceEvents": [...]} object — loadable by
/// chrome://tracing and https://ui.perfetto.dev.
/// @{

namespace detail {

inline void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace detail

/// Renders one event as a Chrome "complete event" object.
inline std::string chromeTraceEventJson(const TraceEvent &E) {
  std::string Out = "{\"name\":\"";
  detail::appendJsonEscaped(Out, E.Name);
  Out += "\",\"cat\":\"";
  detail::appendJsonEscaped(Out, E.Category);
  Out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  Out += std::to_string(E.ThreadId);
  char Buf[64];
  // Chrome timestamps are microseconds; fractional digits keep ns detail.
  std::snprintf(Buf, sizeof(Buf), ",\"ts\":%.3f,\"dur\":%.3f",
                static_cast<double>(E.StartNs) / 1e3,
                static_cast<double>(E.EndNs - E.StartNs) / 1e3);
  Out += Buf;
  Out += ",\"args\":{\"span_id\":";
  Out += std::to_string(E.SpanId);
  Out += ",\"parent_id\":";
  Out += std::to_string(E.ParentId);
  for (const TraceAttr &A : E.Attrs) {
    Out += ",\"";
    detail::appendJsonEscaped(Out, A.Key);
    Out += "\":";
    if (A.Quoted) {
      Out += "\"";
      detail::appendJsonEscaped(Out, A.Value);
      Out += "\"";
    } else {
      Out += A.Value;
    }
  }
  Out += "}}";
  return Out;
}

/// Writes \p Events as a complete Chrome-trace document to \p F.
inline bool writeChromeTrace(std::FILE *F,
                             const std::vector<TraceEvent> &Events) {
  if (!F)
    return false;
  std::fputs("{\"traceEvents\":[\n", F);
  for (size_t I = 0; I != Events.size(); ++I) {
    std::string Line = chromeTraceEventJson(Events[I]);
    if (I + 1 != Events.size())
      Line += ",";
    Line += "\n";
    if (std::fputs(Line.c_str(), F) < 0)
      return false;
  }
  std::fputs("],\"displayTimeUnit\":\"ms\"}\n", F);
  return std::ferror(F) == 0;
}

/// Drains the process tracer and writes everything to \p Path. Returns
/// false when the file cannot be written. This is the whole export path an
/// emitted standalone program needs (`PARSYNT_TRACE=<path>`).
inline bool dumpChromeTrace(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = writeChromeTrace(F, Tracer::instance().drain());
  return std::fclose(F) == 0 && Ok;
}

/// @}

} // namespace parsynt

#endif // PARSYNT_OBSERVE_TRACER_H
