//===- observe/Metrics.h - Named counters/gauges/histograms -----*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named metrics: monotone counters, last-value
/// gauges, and log2-bucketed histograms. The synthesis pipeline and the
/// runtime scheduler publish their interesting quantities here (CEGIS
/// rounds, candidates enumerated, rewrite-rule applications, scheduler
/// steals/parks, fault-injection firings, ...) and `parsynt --report json`
/// / `bench/table1 --report json` serialize the registry into the stable
/// machine-readable run-report schema (observe/Report.h).
///
/// Registration returns a stable reference: the registry owns each metric
/// behind a unique_ptr in an insertion-ordered list, so a hot loop looks
/// its counter up once and then only touches an atomic. Hot paths should
/// accumulate locally and flush once per call — e.g. JoinSynth adds its
/// whole JoinStats delta after the search, not one `+1` per candidate —
/// keeping the "within noise of seed" contract trivially true.
///
/// Metric names are dotted paths (`synth.cegis.rounds`,
/// `pool.steals`); DESIGN.md §5e is the name registry of record.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_OBSERVE_METRICS_H
#define PARSYNT_OBSERVE_METRICS_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace parsynt {

/// A monotone event count. add() is a single relaxed fetch_add, safe from
/// any thread.
class Counter {
public:
  void add(uint64_t Delta) { V.fetch_add(Delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-written value (e.g. grammar size of the current sketch tier).
class Gauge {
public:
  void set(int64_t Value) { V.store(Value, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A log2-bucketed distribution of non-negative samples, with exact
/// count/sum/min/max. Buckets: [0], [1], [2,3], [4,7], ... — enough to
/// see "one 48-second equation dominated" without storing samples.
class Histogram {
public:
  static constexpr unsigned BucketCount = 44; // covers < 2^43

  void observe(uint64_t Sample) {
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Sample, std::memory_order_relaxed);
    updateMin(Sample);
    updateMax(Sample);
    Buckets[bucketOf(Sample)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Minimum observed sample (0 when empty).
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == NoMin ? 0 : M;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  void reset() {
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Min.store(NoMin, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }

  static unsigned bucketOf(uint64_t Sample) {
    unsigned B = 0;
    while (Sample > 0 && B + 1 < BucketCount) {
      Sample >>= 1;
      ++B;
    }
    return B;
  }

private:
  static constexpr uint64_t NoMin = ~uint64_t(0);
  void updateMin(uint64_t S) {
    uint64_t Cur = Min.load(std::memory_order_relaxed);
    while (S < Cur &&
           !Min.compare_exchange_weak(Cur, S, std::memory_order_relaxed)) {
    }
  }
  void updateMax(uint64_t S) {
    uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (S > Cur &&
           !Max.compare_exchange_weak(Cur, S, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{NoMin};
  std::atomic<uint64_t> Max{0};
  std::atomic<uint64_t> Buckets[BucketCount]{};
};

/// The process-wide metric registry. Lookup takes a mutex (do it once,
/// outside hot loops); the returned references stay valid for the life of
/// the process.
class MetricsRegistry {
public:
  static MetricsRegistry &global() {
    static MetricsRegistry R;
    return R;
  }

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Counters.find(Name);
    if (It == Counters.end())
      It = Counters.emplace(Name, std::make_unique<Counter>()).first;
    return *It->second;
  }

  Gauge &gauge(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Gauges.find(Name);
    if (It == Gauges.end())
      It = Gauges.emplace(Name, std::make_unique<Gauge>()).first;
    return *It->second;
  }

  Histogram &histogram(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Histograms.find(Name);
    if (It == Histograms.end())
      It = Histograms.emplace(Name, std::make_unique<Histogram>()).first;
    return *It->second;
  }

  /// A point-in-time copy of every registered metric, sorted by name.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, int64_t>> Gauges;
    struct HistRow {
      std::string Name;
      uint64_t Count, Sum, Min, Max;
    };
    std::vector<HistRow> Histograms;

    /// Counter value by exact name (0 when absent) — convenience for
    /// tests and formatters.
    uint64_t counterOr0(const std::string &Name) const {
      for (const auto &KV : Counters)
        if (KV.first == Name)
          return KV.second;
      return 0;
    }
  };

  Snapshot snapshot() const {
    Snapshot S;
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &KV : Counters)
      S.Counters.emplace_back(KV.first, KV.second->value());
    for (const auto &KV : Gauges)
      S.Gauges.emplace_back(KV.first, KV.second->value());
    for (const auto &KV : Histograms)
      S.Histograms.push_back({KV.first, KV.second->count(), KV.second->sum(),
                              KV.second->min(), KV.second->max()});
    return S;
  }

  /// Zeroes every registered metric (per-benchmark isolation in the bench
  /// drivers; registrations are kept).
  void resetAll() {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &KV : Counters)
      KV.second->reset();
    for (const auto &KV : Gauges)
      KV.second->reset();
    for (const auto &KV : Histograms)
      KV.second->reset();
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Counters.size() + Gauges.size() + Histograms.size();
  }

private:
  mutable std::mutex M;
  // std::map keeps snapshots name-sorted, which the report schema requires
  // for diff-stable output.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace parsynt

#endif // PARSYNT_OBSERVE_METRICS_H
