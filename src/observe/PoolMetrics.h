//===- observe/PoolMetrics.h - Scheduler stats via the registry -*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the work-stealing pool's counters (runtime/Stats.h) into the
/// metric registry and formats them back out. This is the single code
/// path behind `bench/fig8 --stats`, `parsynt --runtime-stats`, and the
/// `pool.*` section of the run report: the snapshot is absorbed into
/// registry counters under one name prefix, and every printed line is
/// rendered from those registry values — the human formats and the JSON
/// report cannot drift apart.
///
/// Metric names (DESIGN.md §5e): `pool.spawns`, `pool.executed`,
/// `pool.steals`, `pool.steal_fails`, `pool.parks`, `pool.inlined`,
/// `pool.leaf.count`, `pool.leaf.nanos`, `pool.join.count`,
/// `pool.join.nanos`.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_OBSERVE_POOLMETRICS_H
#define PARSYNT_OBSERVE_POOLMETRICS_H

#include "observe/Metrics.h"
#include "runtime/Stats.h"

#include <cstdio>
#include <string>

namespace parsynt {

/// Adds \p S's aggregate counters to \p R under \p Prefix. Counters are
/// monotone adds, so absorbing successive snapshots of a long-lived pool
/// requires resetting the pool's stats between absorptions (the drivers
/// already do, per run).
inline void absorbPoolStats(MetricsRegistry &R, const StatsSnapshot &S,
                            const std::string &Prefix = "pool") {
  R.counter(Prefix + ".spawns").add(S.Total.Spawned);
  R.counter(Prefix + ".executed").add(S.Total.Executed);
  R.counter(Prefix + ".steals").add(S.Total.Stolen);
  R.counter(Prefix + ".steal_fails").add(S.Total.StealFails);
  R.counter(Prefix + ".parks").add(S.Total.Parks);
  R.counter(Prefix + ".inlined").add(S.Total.Inlined);
  if (S.TimingEnabled) {
    R.counter(Prefix + ".leaf.count").add(S.LeafCount);
    R.counter(Prefix + ".leaf.nanos").add(S.LeafNanos);
    R.counter(Prefix + ".join.count").add(S.JoinCount);
    R.counter(Prefix + ".join.nanos").add(S.JoinNanos);
  }
}

/// The one-line totals summary, rendered from registry values. Layout is
/// the historical `StatsSnapshot::summary()` format:
///   spawns=N steals=N steal-fails=N parks=N [inlined=N]
///   [ leaves=N (X ms) joins=N (Y ms)]
inline std::string formatPoolSummary(const MetricsRegistry::Snapshot &M,
                                     const std::string &Prefix = "pool") {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "spawns=%llu steals=%llu steal-fails=%llu parks=%llu",
                (unsigned long long)M.counterOr0(Prefix + ".spawns"),
                (unsigned long long)M.counterOr0(Prefix + ".steals"),
                (unsigned long long)M.counterOr0(Prefix + ".steal_fails"),
                (unsigned long long)M.counterOr0(Prefix + ".parks"));
  std::string S = Buf;
  uint64_t Inlined = M.counterOr0(Prefix + ".inlined");
  if (Inlined) { // only under injected allocation failure
    std::snprintf(Buf, sizeof(Buf), " inlined=%llu",
                  (unsigned long long)Inlined);
    S += Buf;
  }
  uint64_t Leaves = M.counterOr0(Prefix + ".leaf.count");
  uint64_t Joins = M.counterOr0(Prefix + ".join.count");
  if (Leaves || Joins) {
    std::snprintf(Buf, sizeof(Buf),
                  " leaves=%llu (%.2f ms) joins=%llu (%.3f ms)",
                  (unsigned long long)Leaves,
                  M.counterOr0(Prefix + ".leaf.nanos") / 1e6,
                  (unsigned long long)Joins,
                  M.counterOr0(Prefix + ".join.nanos") / 1e6);
    S += Buf;
  }
  return S;
}

/// Summary line for one snapshot: absorbed into a scratch registry, then
/// rendered by formatPoolSummary — the same path the JSON report takes
/// through the global registry.
inline std::string poolSummary(const StatsSnapshot &S) {
  MetricsRegistry Scratch;
  absorbPoolStats(Scratch, S);
  return formatPoolSummary(Scratch.snapshot());
}

/// Full per-worker table (historical `StatsSnapshot::table()` layout).
/// Per-worker rows come from the snapshot (the registry intentionally
/// holds only aggregates); the total row and the timing line are rendered
/// from absorbed registry values so they match the summary and the report.
inline std::string poolTable(const StatsSnapshot &S) {
  MetricsRegistry Scratch;
  absorbPoolStats(Scratch, S);
  MetricsRegistry::Snapshot M = Scratch.snapshot();

  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "%-8s %10s %10s %10s %12s %8s %8s\n",
                "worker", "spawned", "executed", "stolen", "steal-fails",
                "parks", "inlined");
  Out += Buf;
  for (size_t I = 0; I != S.Workers.size(); ++I) {
    const WorkerStatsRow &W = S.Workers[I];
    std::string Label = I == 0                    ? "caller"
                        : I + 1 == S.Workers.size() ? "external"
                                                    : "w" + std::to_string(I);
    // The trailing "external" row only exists for unregistered threads;
    // in the common single-caller case Workers.size() == pool size and
    // the last dedicated worker keeps its wN label.
    if (I != 0 && I + 1 == S.Workers.size() && !S.ExternalRow)
      Label = "w" + std::to_string(I);
    std::snprintf(Buf, sizeof(Buf),
                  "%-8s %10llu %10llu %10llu %12llu %8llu %8llu\n",
                  Label.c_str(), (unsigned long long)W.Spawned,
                  (unsigned long long)W.Executed, (unsigned long long)W.Stolen,
                  (unsigned long long)W.StealFails,
                  (unsigned long long)W.Parks, (unsigned long long)W.Inlined);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "%-8s %10llu %10llu %10llu %12llu %8llu %8llu\n", "total",
                (unsigned long long)M.counterOr0("pool.spawns"),
                (unsigned long long)M.counterOr0("pool.executed"),
                (unsigned long long)M.counterOr0("pool.steals"),
                (unsigned long long)M.counterOr0("pool.steal_fails"),
                (unsigned long long)M.counterOr0("pool.parks"),
                (unsigned long long)M.counterOr0("pool.inlined"));
  Out += Buf;
  if (S.TimingEnabled) {
    std::snprintf(Buf, sizeof(Buf),
                  "leaves: %llu in %.3f ms; joins: %llu in %.3f ms\n",
                  (unsigned long long)M.counterOr0("pool.leaf.count"),
                  M.counterOr0("pool.leaf.nanos") / 1e6,
                  (unsigned long long)M.counterOr0("pool.join.count"),
                  M.counterOr0("pool.join.nanos") / 1e6);
    Out += Buf;
  }
  return Out;
}

} // namespace parsynt

#endif // PARSYNT_OBSERVE_POOLMETRICS_H
