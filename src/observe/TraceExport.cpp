//===- observe/TraceExport.cpp - Trace file + phase-report export ---------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "observe/TraceExport.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

namespace parsynt {

bool writeTraceFile(const std::string &Path, std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = writeChromeTrace(F, Tracer::instance().drain());
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok && Error)
    *Error = "write to '" + Path + "' failed";
  return Ok;
}

std::vector<PhaseRow> aggregatePhases(const std::vector<TraceEvent> &Events) {
  // Span id -> category, for the entry-span test (a span is a phase entry
  // when its parent is absent or categorized differently).
  std::map<uint64_t, const char *> CategoryOf;
  for (const TraceEvent &E : Events)
    CategoryOf[E.SpanId] = E.Category;

  std::map<std::string, PhaseRow> Rows;
  for (const TraceEvent &E : Events) {
    PhaseRow &R = Rows[E.Category];
    if (R.Category.empty())
      R.Category = E.Category;
    ++R.SpanCount;
    auto Parent = CategoryOf.find(E.ParentId);
    bool Entry = Parent == CategoryOf.end() ||
                 std::strcmp(Parent->second, E.Category) != 0;
    if (Entry)
      R.WallNanos += E.EndNs - E.StartNs;
  }

  std::vector<PhaseRow> Out;
  for (auto &KV : Rows)
    Out.push_back(std::move(KV.second));
  std::sort(Out.begin(), Out.end(), [](const PhaseRow &A, const PhaseRow &B) {
    return A.WallNanos > B.WallNanos;
  });
  return Out;
}

std::string phaseReport(const std::vector<TraceEvent> &Events) {
  std::string Out;
  char Buf[256];
  if (Events.empty())
    return "phase report: no spans recorded (tracing off?)\n";

  std::snprintf(Buf, sizeof(Buf), "%-12s %12s %8s\n", "phase", "wall (ms)",
                "spans");
  Out += Buf;
  for (const PhaseRow &R : aggregatePhases(Events)) {
    std::snprintf(Buf, sizeof(Buf), "%-12s %12.3f %8llu\n",
                  R.Category.c_str(), R.WallNanos / 1e6,
                  (unsigned long long)R.SpanCount);
    Out += Buf;
  }

  std::vector<const TraceEvent *> ByDuration;
  ByDuration.reserve(Events.size());
  for (const TraceEvent &E : Events)
    ByDuration.push_back(&E);
  std::sort(ByDuration.begin(), ByDuration.end(),
            [](const TraceEvent *A, const TraceEvent *B) {
              return (A->EndNs - A->StartNs) > (B->EndNs - B->StartNs);
            });
  Out += "hottest spans:\n";
  size_t N = std::min<size_t>(5, ByDuration.size());
  for (size_t I = 0; I != N; ++I) {
    const TraceEvent &E = *ByDuration[I];
    std::snprintf(Buf, sizeof(Buf), "  %-28s %-10s %12.3f ms\n", E.Name,
                  E.Category, (E.EndNs - E.StartNs) / 1e6);
    Out += Buf;
  }
  return Out;
}

std::string phaseReport() { return phaseReport(Tracer::instance().drain()); }

} // namespace parsynt
