//===- observe/TraceExport.h - Trace file + phase-report export -*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters over the process tracer (observe/Tracer.h): the Chrome /
/// Perfetto JSON file behind `parsynt --trace out.json`, and the human
/// `--phase-report` table (per-phase wall time, span counts, top-5
/// hottest spans). The Chrome serialization itself lives in Tracer.h so
/// emitted standalone programs can export without this library; this
/// compiled layer adds file handling, aggregation, and formatting.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_OBSERVE_TRACEEXPORT_H
#define PARSYNT_OBSERVE_TRACEEXPORT_H

#include "observe/Tracer.h"

#include <string>
#include <vector>

namespace parsynt {

/// Drains every published span and writes a Chrome-trace document to
/// \p Path. Returns false and fills \p Error on I/O failure.
bool writeTraceFile(const std::string &Path, std::string *Error = nullptr);

/// Per-category aggregate for the phase report.
struct PhaseRow {
  std::string Category;
  uint64_t SpanCount = 0;
  /// Wall nanoseconds attributed to the phase: summed over the category's
  /// *entry* spans (spans whose parent is missing or lies in a different
  /// category), so nested same-category detail is not double counted.
  uint64_t WallNanos = 0;
};

/// Aggregates \p Events by category, sorted by descending wall time.
std::vector<PhaseRow> aggregatePhases(const std::vector<TraceEvent> &Events);

/// Renders the `--phase-report` table for \p Events: one row per category
/// (wall time, span count), then the top-5 hottest individual spans.
std::string phaseReport(const std::vector<TraceEvent> &Events);

/// Convenience: phase report over the process tracer's current contents.
std::string phaseReport();

} // namespace parsynt

#endif // PARSYNT_OBSERVE_TRACEEXPORT_H
