//===- support/Deadline.h - Cooperative cancellation token ------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A wall-clock deadline as a copyable value-type cancellation token. The
/// synthesis searches (join enumeration, CEGIS, lifting) are unbounded in
/// the worst case; each loop that can run long polls `expired()` at its
/// iteration boundary and unwinds with a structured Timeout failure when
/// the budget is gone. An unarmed (default) deadline never expires and
/// costs one branch per poll, so the default configuration behaves exactly
/// like the un-deadlined code.
///
/// Deadlines compose with `sooner()`: the pipeline caps each phase's
/// per-phase budget by the whole-loop budget, and hands the combined token
/// down — callees never need to know how many budgets are stacked above
/// them.
///
/// The `deadline.expire` fault point (support/FaultInjector.h) can force
/// any poll to report expiry, which makes every timeout-handling path
/// testable without tuning real clocks.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUPPORT_DEADLINE_H
#define PARSYNT_SUPPORT_DEADLINE_H

#include "support/FaultInjector.h"

#include <chrono>
#include <limits>

namespace parsynt {

class Deadline {
  using Clock = std::chrono::steady_clock;

public:
  /// Unarmed: never expires.
  Deadline() = default;

  /// A deadline \p Seconds from now. Non-positive \p Seconds (the "0 means
  /// unbounded" convention of the pipeline options) yields an unarmed
  /// deadline.
  static Deadline after(double Seconds) {
    Deadline D;
    if (Seconds > 0) {
      D.IsArmed = true;
      D.At = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(Seconds));
    }
    return D;
  }

  static Deadline never() { return {}; }

  bool armed() const { return IsArmed; }

  /// Polls the deadline. Cheap enough for inner search loops (one clock
  /// read when armed, one branch plus the fault-injector fast path when
  /// not).
  bool expired() const {
    if (FaultInjector::fires("deadline.expire"))
      return true;
    return IsArmed && Clock::now() >= At;
  }

  /// Seconds until expiry; +infinity when unarmed, clamped at 0 after
  /// expiry.
  double remainingSeconds() const {
    if (!IsArmed)
      return std::numeric_limits<double>::infinity();
    double S = std::chrono::duration<double>(At - Clock::now()).count();
    return S < 0 ? 0 : S;
  }

  /// The earlier of two deadlines (unarmed counts as "later than
  /// everything"). Used to stack per-phase budgets under the whole-loop
  /// budget.
  static Deadline sooner(const Deadline &A, const Deadline &B) {
    if (!A.IsArmed)
      return B;
    if (!B.IsArmed)
      return A;
    return A.At <= B.At ? A : B;
  }

private:
  Clock::time_point At{};
  bool IsArmed = false;
};

} // namespace parsynt

#endif // PARSYNT_SUPPORT_DEADLINE_H
