//===- support/Random.h - Deterministic RNG helpers -------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic random-number facade used by the synthesis oracles,
/// proof sampling, tests and workload generators. Everything in the project
/// that needs randomness goes through Rng so runs are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUPPORT_RANDOM_H
#define PARSYNT_SUPPORT_RANDOM_H

#include <cstdint>
#include <random>
#include <vector>

namespace parsynt {

/// Deterministic, seedable random source. Not thread-safe; each thread or
/// component owns its own instance.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : Engine(Seed) {}

  /// Uniform integer in [Lo, Hi] (inclusive).
  int64_t intIn(int64_t Lo, int64_t Hi);

  /// Uniform boolean.
  bool flip();

  /// Uniform boolean that is true with probability Num/Den.
  bool chance(unsigned Num, unsigned Den);

  /// A random sequence of Length integers in [Lo, Hi].
  std::vector<int64_t> intSeq(size_t Length, int64_t Lo, int64_t Hi);

  /// Uniform index in [0, Size), Size must be > 0.
  size_t index(size_t Size);

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace parsynt

#endif // PARSYNT_SUPPORT_RANDOM_H
