//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace parsynt;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (Line != 0)
    OS << Line << ":" << Column << ": ";
  OS << kindName(Kind) << ": " << Message;
  return OS.str();
}

void DiagnosticEngine::error(std::string Message, unsigned Line,
                             unsigned Column) {
  Diags.push_back({DiagKind::Error, std::move(Message), Line, Column});
  ++NumErrors;
}

void DiagnosticEngine::warning(std::string Message, unsigned Line,
                               unsigned Column) {
  Diags.push_back({DiagKind::Warning, std::move(Message), Line, Column});
}

void DiagnosticEngine::note(std::string Message, unsigned Line,
                            unsigned Column) {
  Diags.push_back({DiagKind::Note, std::move(Message), Line, Column});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << "\n";
  return OS.str();
}
