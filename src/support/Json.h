//===- support/Json.h - Minimal JSON writer ---------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer for the run-report and trace exporters.
/// No DOM, no parsing — just correctly escaped, deterministic output. The
/// writer tracks container nesting and inserts commas, so call sites read
/// like the document they produce:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("schema").string("parsynt-run-report");
///   W.key("benchmarks").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
///   puts(W.str().c_str());
///
/// Pretty-printing (2-space indent) is on by default so the archived
/// BENCH_*.json artifacts diff line-by-line across PRs.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUPPORT_JSON_H
#define PARSYNT_SUPPORT_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace parsynt {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

class JsonWriter {
public:
  explicit JsonWriter(bool Pretty = true) : Pretty(Pretty) {}

  JsonWriter &beginObject() {
    prefix();
    Out += '{';
    Stack.push_back({/*IsObject=*/true, /*Count=*/0});
    return *this;
  }
  JsonWriter &endObject() {
    bool Empty = Stack.back().Count == 0;
    Stack.pop_back();
    if (!Empty)
      newlineIndent();
    Out += '}';
    return *this;
  }
  JsonWriter &beginArray() {
    prefix();
    Out += '[';
    Stack.push_back({/*IsObject=*/false, /*Count=*/0});
    return *this;
  }
  JsonWriter &endArray() {
    bool Empty = Stack.back().Count == 0;
    Stack.pop_back();
    if (!Empty)
      newlineIndent();
    Out += ']';
    return *this;
  }

  /// Emits the member key; must be followed by exactly one value call.
  JsonWriter &key(const std::string &K) {
    separator();
    newlineIndent();
    Out += '"';
    Out += jsonEscape(K);
    Out += Pretty ? "\": " : "\":";
    HavePendingKey = true;
    return *this;
  }

  JsonWriter &string(const std::string &V) {
    prefix();
    Out += '"';
    Out += jsonEscape(V);
    Out += '"';
    return *this;
  }
  JsonWriter &number(int64_t V) {
    prefix();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &number(uint64_t V) {
    prefix();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &number(int V) { return number(static_cast<int64_t>(V)); }
  JsonWriter &number(unsigned V) { return number(static_cast<uint64_t>(V)); }
  JsonWriter &number(double V) {
    prefix();
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    Out += Buf;
    return *this;
  }
  JsonWriter &boolean(bool V) {
    prefix();
    Out += V ? "true" : "false";
    return *this;
  }
  JsonWriter &null() {
    prefix();
    Out += "null";
    return *this;
  }
  /// Splices pre-rendered JSON (e.g. FailureInfo::toJson()) as a value.
  JsonWriter &raw(const std::string &Json) {
    prefix();
    Out += Json;
    return *this;
  }

  const std::string &str() const { return Out; }

private:
  struct Frame {
    bool IsObject;
    unsigned Count;
  };

  /// Value-position bookkeeping: consumes a pending key, or separates and
  /// indents an array element.
  void prefix() {
    if (HavePendingKey) {
      HavePendingKey = false;
      return;
    }
    if (!Stack.empty()) {
      separator();
      newlineIndent();
    }
  }
  void separator() {
    if (!Stack.empty() && Stack.back().Count++ > 0)
      Out += ',';
  }
  void newlineIndent() {
    if (!Pretty)
      return;
    Out += '\n';
    Out.append(Stack.size() * 2, ' ');
  }

  bool Pretty;
  bool HavePendingKey = false;
  std::string Out;
  std::vector<Frame> Stack;
};

} // namespace parsynt

#endif // PARSYNT_SUPPORT_JSON_H
