//===- support/Failure.h - Structured failure taxonomy ----------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured failure taxonomy shared by the synthesis pipeline. Every
/// phase that can fail (join synthesis, lifting, verification, the whole
/// pipeline) reports a FailureInfo — a kind from the closed taxonomy plus a
/// human-readable message — instead of a free-text string, so drivers can
/// branch on *why* something failed (e.g. the CLI maps Timeout to its own
/// exit code, and the pipeline falls back to sequential execution).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUPPORT_FAILURE_H
#define PARSYNT_SUPPORT_FAILURE_H

#include "support/Json.h"

#include <cstdint>
#include <ostream>
#include <source_location>
#include <string>
#include <utility>

namespace parsynt {

/// Why a phase (or the whole pipeline) failed.
enum class FailureKind {
  None,              ///< no failure
  Timeout,           ///< a wall-clock deadline expired (see Deadline.h)
  BudgetExhausted,   ///< a count budget ran out (CEGIS rounds, candidate
                     ///< products, expression-size ceilings)
  NotHomomorphic,    ///< no join exists in the searched space — the
                     ///< evidence that a loop needs lifting, or that
                     ///< lifting did not make it joinable
  FragmentViolation, ///< the input program is outside the supported
                     ///< fragment (frontend verifier / linter)
  InternalError,     ///< an invariant we own was violated (late-phase
                     ///< verifier failures, corrupt IR after lifting)
};

inline const char *failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::Timeout:
    return "timeout";
  case FailureKind::BudgetExhausted:
    return "budget-exhausted";
  case FailureKind::NotHomomorphic:
    return "not-homomorphic";
  case FailureKind::FragmentViolation:
    return "fragment-violation";
  case FailureKind::InternalError:
    return "internal-error";
  }
  return "unknown";
}

/// A structured failure: taxonomy kind plus message, stamped with the
/// source location that constructed it (std::source_location captures the
/// call site through the defaulted argument). Default-constructed means
/// "no failure".
struct FailureInfo {
  FailureKind Kind = FailureKind::None;
  std::string Message;
  /// Call site that classified the failure ("" / 0 when unset). File is a
  /// __FILE__-lifetime literal, never owned.
  const char *File = "";
  uint32_t Line = 0;

  FailureInfo() = default;
  FailureInfo(FailureKind Kind, std::string Message,
              std::source_location Loc = std::source_location::current())
      : Kind(Kind), Message(std::move(Message)), File(Loc.file_name()),
        Line(Loc.line()) {}

  bool empty() const { return Kind == FailureKind::None && Message.empty(); }
  explicit operator bool() const { return !empty(); }

  void clear() {
    Kind = FailureKind::None;
    Message.clear();
    File = "";
    Line = 0;
  }

  /// "[kind] message" (just the message when no kind was classified).
  std::string str() const {
    if (Kind == FailureKind::None)
      return Message;
    return std::string("[") + failureKindName(Kind) + "] " + Message;
  }

  /// The one serialization of a failure that `--report json` and the
  /// exit-code taxonomy share: compact JSON with kind + message + the
  /// classifying source location (location omitted when unset).
  std::string toJson() const {
    std::string Out = "{\"kind\":\"";
    Out += failureKindName(Kind);
    Out += "\",\"message\":\"";
    Out += jsonEscape(Message);
    Out += "\"";
    if (File && File[0] != '\0') {
      // Strip the build-tree prefix: report paths relative to src/.
      std::string Path = File;
      size_t Src = Path.rfind("/src/");
      if (Src != std::string::npos)
        Path = Path.substr(Src + 5);
      Out += ",\"source\":{\"file\":\"";
      Out += jsonEscape(Path);
      Out += "\",\"line\":";
      Out += std::to_string(Line);
      Out += "}";
    }
    Out += "}";
    return Out;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const FailureInfo &F) {
  return OS << F.str();
}

} // namespace parsynt

#endif // PARSYNT_SUPPORT_FAILURE_H
