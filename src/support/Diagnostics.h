//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostics: the library does not use exceptions; fallible
/// components collect human-readable diagnostics into a DiagnosticEngine and
/// report failure through return values.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUPPORT_DIAGNOSTICS_H
#define PARSYNT_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace parsynt {

/// Severity of a diagnostic message.
enum class DiagKind { Error, Warning, Note };

/// A single diagnostic with optional source position (0 means unknown).
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  std::string Message;
  unsigned Line = 0;
  unsigned Column = 0;

  /// Renders the diagnostic in "line:col: kind: message" form.
  std::string str() const;
};

/// Collects diagnostics produced by fallible components (parser, converter,
/// synthesis pipeline). Components take a DiagnosticEngine by reference and
/// signal failure via their return value; callers inspect the engine for the
/// explanation.
class DiagnosticEngine {
public:
  void error(std::string Message, unsigned Line = 0, unsigned Column = 0);
  void warning(std::string Message, unsigned Line = 0, unsigned Column = 0);
  void note(std::string Message, unsigned Line = 0, unsigned Column = 0);

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace parsynt

#endif // PARSYNT_SUPPORT_DIAGNOSTICS_H
