//===- support/Random.cpp -------------------------------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace parsynt;

int64_t Rng::intIn(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range");
  std::uniform_int_distribution<int64_t> Dist(Lo, Hi);
  return Dist(Engine);
}

bool Rng::flip() { return intIn(0, 1) == 1; }

bool Rng::chance(unsigned Num, unsigned Den) {
  assert(Den > 0 && "zero denominator");
  return static_cast<uint64_t>(intIn(0, static_cast<int64_t>(Den) - 1)) < Num;
}

std::vector<int64_t> Rng::intSeq(size_t Length, int64_t Lo, int64_t Hi) {
  std::vector<int64_t> Result;
  Result.reserve(Length);
  for (size_t I = 0; I != Length; ++I)
    Result.push_back(intIn(Lo, Hi));
  return Result;
}

size_t Rng::index(size_t Size) {
  assert(Size > 0 && "index into empty range");
  return static_cast<size_t>(intIn(0, static_cast<int64_t>(Size) - 1));
}
