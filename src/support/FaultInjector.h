//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault-injection harness. Named fault points are
/// compiled into the synthesizer and the work-stealing runtime; each point
/// polls `FaultInjector::fires("name")` at the moment the fault would
/// matter, and the injector decides — from per-point counters, never from
/// wall-clock or unseeded randomness — whether the fault fires. With no
/// configuration the poll is a single relaxed atomic load, so production
/// paths pay (almost) nothing.
///
/// Configuration comes from the `PARSYNT_FAULT` environment variable (read
/// once, on first use) or programmatically via `configure()` in tests. The
/// spec grammar:
///
///   spec   := clause (',' clause)*
///   clause := point (':' key '=' value)*
///   keys   := after | every | limit | prob | seed
///
/// Semantics per point: polls 0..after-1 never fire; among the remaining
/// polls every `every`-th is eligible (default 1 — all); an eligible poll
/// fires with probability `prob`% decided by a hash of (seed, poll index)
/// — deterministic, not a PRNG stream; at most `limit` faults fire in
/// total. Examples:
///
///   PARSYNT_FAULT=synth.reject:limit=3
///   PARSYNT_FAULT=pool.steal:every=7,pool.wakeup:every=3:limit=100
///   PARSYNT_FAULT=deadline.expire:after=50
///
/// Named points (see the polling sites): `synth.reject` (forces the
/// synthesizer to reject an otherwise-accepted join candidate),
/// `deadline.expire` (forces a Deadline::expired() poll to report expiry),
/// `pool.steal` (forces a steal sweep to come back empty), `pool.wakeup`
/// (turns a parked wait into a timed wait — an injected spurious wakeup),
/// `pool.alloc` (fails a task-node allocation, exercising the spawn-inline
/// degradation path).
///
/// Thread-safety: `fires()` is safe from any thread (atomic counters, so
/// the harness is exercisable under ThreadSanitizer). `configure()` /
/// `reset()` must not race active polls: call them while no worker threads
/// are running (in tests: configure before constructing a TaskPool, reset
/// after destroying it).
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_SUPPORT_FAULTINJECTOR_H
#define PARSYNT_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace parsynt {

class FaultInjector {
public:
  /// The process-wide injector (one instance across all translation units).
  static FaultInjector &instance() {
    static FaultInjector I;
    return I;
  }

  /// Poll a fault point. Returns true when the configured fault fires. The
  /// unarmed fast path is one relaxed atomic load.
  static bool fires(const char *Point) {
    FaultInjector &I = instance();
    if (!I.Armed.load(std::memory_order_relaxed))
      return false;
    return I.shouldFire(Point);
  }

  /// Parses \p Spec and installs it, replacing any prior configuration.
  /// An empty spec disarms the injector. Returns false (and fills \p Error
  /// when given) on a malformed spec, leaving the injector disarmed.
  bool configure(const std::string &Spec, std::string *Error = nullptr) {
    Points.clear();
    Armed.store(false, std::memory_order_relaxed);
    if (Spec.empty())
      return true;
    size_t Begin = 0;
    while (Begin <= Spec.size()) {
      size_t End = Spec.find(',', Begin);
      if (End == std::string::npos)
        End = Spec.size();
      if (!parseClause(Spec.substr(Begin, End - Begin), Error)) {
        Points.clear();
        return false;
      }
      Begin = End + 1;
    }
    Armed.store(!Points.empty(), std::memory_order_relaxed);
    return true;
  }

  /// Disarms the injector and drops all per-point counters.
  void reset() {
    Points.clear();
    Armed.store(false, std::memory_order_relaxed);
  }

  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Faults fired so far at \p Point (0 for unconfigured points).
  uint64_t fireCount(const std::string &Point) const {
    for (const auto &P : Points)
      if (P->Name == Point)
        return P->Fires.load(std::memory_order_relaxed);
    return 0;
  }

  /// Polls observed so far at \p Point (0 for unconfigured points).
  uint64_t pollCount(const std::string &Point) const {
    for (const auto &P : Points)
      if (P->Name == Point)
        return P->Polls.load(std::memory_order_relaxed);
    return 0;
  }

  /// A point-in-time view of one configured fault point.
  struct PointSnapshot {
    std::string Name;
    uint64_t Polls = 0;
    uint64_t Fires = 0;
  };

  /// Every configured point with its counters, in configuration order —
  /// lets the run report record fault firings without knowing the point
  /// names in advance. Safe to call while polls are in flight (counters
  /// are atomics; the Points vector only changes via configure()/reset(),
  /// which already must not race polls).
  std::vector<PointSnapshot> pointSnapshots() const {
    std::vector<PointSnapshot> Out;
    Out.reserve(Points.size());
    for (const auto &P : Points)
      Out.push_back({P->Name, P->Polls.load(std::memory_order_relaxed),
                     P->Fires.load(std::memory_order_relaxed)});
    return Out;
  }

private:
  struct PointState {
    std::string Name;
    uint64_t After = 0;              ///< skip the first N polls
    uint64_t Every = 1;              ///< then fire every Nth eligible poll
    uint64_t Limit = UINT64_MAX;     ///< total fires cap
    uint64_t Seed = 0x5eedfau;       ///< hash seed for prob decisions
    unsigned Percent = 100;          ///< fire probability of eligible polls
    std::atomic<uint64_t> Polls{0};
    std::atomic<uint64_t> Fires{0};
  };

  FaultInjector() {
    if (const char *Env = std::getenv("PARSYNT_FAULT")) {
      std::string Error;
      if (!configure(Env, &Error))
        std::fprintf(stderr, "parsynt: ignoring PARSYNT_FAULT: %s\n",
                     Error.c_str());
    }
  }

  /// splitmix64: a deterministic avalanche of (seed, poll index) for the
  /// prob decision — no shared PRNG state, so concurrent polls stay
  /// data-race-free and single-threaded runs stay reproducible.
  static uint64_t mix(uint64_t X) {
    X += 0x9E3779B97F4A7C15ull;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
    return X ^ (X >> 31);
  }

  bool shouldFire(const char *Point) {
    for (const auto &P : Points) {
      if (P->Name != Point)
        continue;
      uint64_t N = P->Polls.fetch_add(1, std::memory_order_relaxed);
      if (N < P->After)
        return false;
      if ((N - P->After) % P->Every != 0)
        return false;
      if (P->Percent < 100 && mix(P->Seed ^ N) % 100 >= P->Percent)
        return false;
      // Claim one of the remaining fires; competitors past the limit lose.
      uint64_t F = P->Fires.load(std::memory_order_relaxed);
      while (F < P->Limit)
        if (P->Fires.compare_exchange_weak(F, F + 1,
                                           std::memory_order_relaxed))
          return true;
      return false;
    }
    return false;
  }

  bool parseClause(const std::string &Clause, std::string *Error) {
    auto Fail = [&](const std::string &Message) {
      if (Error)
        *Error = Message + " in fault clause '" + Clause + "'";
      return false;
    };
    size_t Colon = Clause.find(':');
    std::string Name = Clause.substr(0, Colon);
    if (Name.empty())
      return Fail("empty fault point name");
    auto P = std::make_unique<PointState>();
    P->Name = Name;
    while (Colon != std::string::npos) {
      size_t Begin = Colon + 1;
      Colon = Clause.find(':', Begin);
      std::string Pair = Clause.substr(
          Begin, Colon == std::string::npos ? std::string::npos
                                            : Colon - Begin);
      size_t Eq = Pair.find('=');
      if (Eq == std::string::npos)
        return Fail("expected key=value, got '" + Pair + "'");
      std::string Key = Pair.substr(0, Eq);
      uint64_t V = 0;
      std::string Digits = Pair.substr(Eq + 1);
      if (Digits.empty())
        return Fail("empty value for '" + Key + "'");
      for (char D : Digits) {
        if (D < '0' || D > '9')
          return Fail("non-numeric value for '" + Key + "'");
        if (V > (UINT64_MAX - static_cast<uint64_t>(D - '0')) / 10)
          return Fail("value overflow for '" + Key + "'");
        V = V * 10 + static_cast<uint64_t>(D - '0');
      }
      if (Key == "after")
        P->After = V;
      else if (Key == "every")
        P->Every = V == 0 ? 1 : V;
      else if (Key == "limit")
        P->Limit = V;
      else if (Key == "prob")
        P->Percent = V > 100 ? 100 : static_cast<unsigned>(V);
      else if (Key == "seed")
        P->Seed = V;
      else
        return Fail("unknown key '" + Key + "'");
    }
    Points.push_back(std::move(P));
    return true;
  }

  std::vector<std::unique_ptr<PointState>> Points;
  std::atomic<bool> Armed{false};
};

/// RAII configuration for tests: installs a spec on construction, disarms
/// and clears counters on destruction. Scope it around (not inside) any
/// TaskPool whose workers should observe the faults.
class FaultScope {
public:
  explicit FaultScope(const std::string &Spec) {
    FaultInjector::instance().configure(Spec);
  }
  ~FaultScope() { FaultInjector::instance().reset(); }
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;
};

} // namespace parsynt

#endif // PARSYNT_SUPPORT_FAULTINJECTOR_H
