//===- pipeline/Parallelizer.h - End-to-end parallelization -----*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end PARSYNT pipeline: join synthesis on the original loop
/// (Section 4); if no join exists, homomorphic lifting (Section 6) followed
/// by join synthesis on the lifted loop; finally the remove-redundancies
/// step of Algorithm 1, realized as "drop an auxiliary and re-synthesize" —
/// any auxiliary whose removal still leaves a synthesizable join is
/// redundant. Conjectured auxiliaries that are themselves unjoinable (the
/// sampling-based collect step can over-approximate) are dropped the same
/// way before declaring failure.
///
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_PIPELINE_PARALLELIZER_H
#define PARSYNT_PIPELINE_PARALLELIZER_H

#include "analysis/DependenceGraph.h"
#include "lift/Lift.h"
#include "synth/JoinSynth.h"

#include <string>
#include <vector>

namespace parsynt {

struct PipelineOptions {
  JoinSynthOptions Join;
  LiftOptions Lift;
  bool TryLift = true;
  /// Run the remove-redundancies pass (re-synthesis without each aux).
  bool RemoveRedundant = true;
  /// Run the IR verifier between phases (frontend / normalize / lift /
  /// codegen boundaries). Violations fail the pipeline gracefully instead
  /// of corrupting downstream passes.
  bool VerifyIR = true;
  /// Consult the state-variable dependence analysis: synthesize joins
  /// SCC-by-SCC in dependence order, seed trivially-homomorphic folds, and
  /// restrict each equation's search to its dependence closure (with an
  /// unrestricted retry, so results never change — only time).
  bool UseDependenceAnalysis = true;
  /// Lifting attempts, in order: (unfolding depth, init preference). The
  /// init-preference retries handle init-insensitive accumulators whose
  /// empty-chunk value must be a sentinel for the join to exist.
  std::vector<std::pair<unsigned, InitPreference>> LiftAttempts = {
      {3, InitPreference::ZeroFirst},
      {3, InitPreference::MaxFirst},
      {3, InitPreference::MinFirst},
      {4, InitPreference::ZeroFirst}};
  /// Wall-clock budgets in seconds; 0 (the default) means unbounded. The
  /// whole-loop budget caps everything; the per-phase budgets additionally
  /// cap each join-synthesis / lift call, so a single runaway phase cannot
  /// starve the rest of the pipeline.
  double TimeoutSeconds = 0;     ///< whole parallelizeLoop call
  double JoinTimeoutSeconds = 0; ///< each join-synthesis call
  double LiftTimeoutSeconds = 0; ///< each lifting attempt
};

struct PipelineResult {
  bool Success = false;
  /// True when the loop was not parallelizable in its original form
  /// (Table 1's "Aux required?" row).
  bool AuxRequired = false;
  Loop Final;      ///< the loop actually parallelized (possibly lifted)
  JoinResult Join; ///< join for Final
  unsigned AuxCount = 0;      ///< auxiliaries in Final (Table 1's "#Aux")
  unsigned AuxDiscovered = 0; ///< before redundancy removal
  bool IndexMaterialized = false;
  std::vector<std::string> DroppedAux; ///< unjoinable or redundant
  std::vector<std::string> Unresolved; ///< lift parts without accumulators
  /// Dependence classification of the final loop's state variables (empty
  /// when UseDependenceAnalysis is off).
  DependenceInfo Dependences;
  /// Join components accepted from dependence-analysis seeds, i.e. join
  /// searches skipped, summed over every synthesis call in the pipeline.
  unsigned SeedsAccepted = 0;
  /// Dependence-restricted searches that had to be retried unrestricted.
  unsigned RestrictionRetries = 0;
  double JoinSeconds = 0;  ///< total time in join synthesis
  double LiftSeconds = 0;  ///< total time in lifting
  double TotalSeconds = 0;
  /// Structured failure (see support/Failure.h); empty on success.
  FailureInfo Failure;
  /// Graceful degradation: true when synthesis failed or timed out and
  /// Final was reset to the verified (index-materialized) input loop with
  /// an empty join — still executable sequentially by InterpReduce and
  /// emittable by the C++ backend. The pipeline never returns nothing
  /// runnable once the input passes frontend verification.
  bool SequentialFallback = false;

  /// Multi-line human-readable summary (final loop + join).
  std::string report() const;
};

/// Runs the full pipeline on \p L.
PipelineResult parallelizeLoop(const Loop &L,
                               const PipelineOptions &Options = {});

} // namespace parsynt

#endif // PARSYNT_PIPELINE_PARALLELIZER_H
