//===- pipeline/Parallelizer.cpp - End-to-end parallelization -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Parallelizer.h"
#include "analysis/Verifier.h"
#include "ir/ExprOps.h"
#include "lift/Unfold.h"
#include "observe/Metrics.h"
#include "observe/Tracer.h"
#include "proof/ProofCheck.h"

#include <algorithm>
#include <chrono>
#include <sstream>

using namespace parsynt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// True if any *other* equation's update references \p Name.
bool referencedByOthers(const Loop &L, const std::string &Name) {
  for (const Equation &Eq : L.Equations) {
    if (Eq.Name == Name)
      continue;
    if (containsVar(Eq.Update, Name))
      return true;
  }
  return false;
}

/// Removes the equation \p Name; returns false if it is still referenced.
bool removeEquation(Loop &L, const std::string &Name) {
  if (referencedByOthers(L, Name))
    return false;
  auto It = std::find_if(L.Equations.begin(), L.Equations.end(),
                         [&](const Equation &Eq) { return Eq.Name == Name; });
  if (It == L.Equations.end())
    return false;
  L.Equations.erase(It);
  return true;
}

/// Acceptance gate: a synthesized join must additionally pass the
/// Section-7 induction obligations over sampled reachable states. The
/// bounded synthesis oracle can be fooled by coincidental agreements (the
/// paper relies on its proof step for exactly this reason); the obligations
/// quantify over single-step extensions and catch such joins cheaply.
bool joinProven(const Loop &L, const JoinResult &Join) {
  if (!Join.Success)
    return false;
  return checkHomomorphismProof(L, Join.Components).Verified;
}

/// Verifies \p L at pipeline phase \p Phase. On violation records the
/// report in \p Result.Failure and returns false so the caller can fail
/// gracefully instead of running downstream passes on corrupt IR.
bool verifyAt(const Loop &L, VerifyPhase Phase, const PipelineOptions &Options,
              PipelineResult &Result) {
  if (!Options.VerifyIR)
    return true;
  VerifierReport Report = verifyLoop(L, Phase);
  if (Report.ok())
    return true;
  // A frontend-phase violation indicts the input program; every later
  // phase verifies IR produced by our own passes.
  Result.Failure = {Phase == VerifyPhase::AfterFrontend
                        ? FailureKind::FragmentViolation
                        : FailureKind::InternalError,
                    Report.str()};
  return false;
}

/// Builds the synthesis guidance for \p L from its dependence analysis:
/// SCC topological order, trivial-join seeds, and per-variable allowed
/// sets (dependence closure plus all auxiliaries — lifted joins routinely
/// reference auxiliaries the original update never reads, e.g. mts's join
/// needs the lifted sum).
JoinGuidance makeGuidance(const Loop &L, const DependenceInfo &Info) {
  JoinGuidance Guidance;
  Guidance.Order = Info.synthesisOrder(L);
  std::set<std::string> Shared;
  for (const Equation &Eq : L.Equations)
    if (Eq.IsAuxiliary || Eq.Name == "_pos")
      Shared.insert(Eq.Name);
  for (const Equation &Eq : L.Equations) {
    const VarDependence *V = Info.find(Eq.Name);
    if (!V)
      continue;
    if (V->TrivialJoin)
      Guidance.Seeds[Eq.Name] = V->TrivialJoin;
    std::set<std::string> Allowed = V->Closure;
    Allowed.insert(Eq.Name);
    Allowed.insert(Shared.begin(), Shared.end());
    Guidance.AllowedVars[Eq.Name] = std::move(Allowed);
  }
  return Guidance;
}

/// Runs join synthesis on \p W with dependence guidance (when enabled) and
/// folds the timing / seed statistics into \p Result.
JoinResult runJoinSynthesis(const Loop &W, JoinSynthOptions JoinOpts,
                            const PipelineOptions &Options,
                            PipelineResult &Result, const Deadline &DL) {
  if (Options.UseDependenceAnalysis)
    JoinOpts.Guidance = makeGuidance(W, analyzeDependences(W));
  JoinOpts.Timeout = Deadline::sooner(JoinOpts.Timeout, DL);
  JoinResult Join = synthesizeJoin(W, JoinOpts);
  Result.JoinSeconds += Join.Stats.Seconds;
  Result.SeedsAccepted += Join.Stats.SeedsAccepted;
  Result.RestrictionRetries += Join.Stats.RestrictionRetries;
  return Join;
}

} // namespace

PipelineResult parsynt::parallelizeLoop(const Loop &L,
                                        const PipelineOptions &Options) {
  auto StartTime = std::chrono::steady_clock::now();
  PipelineResult Result;

  // Root span of the whole run: every phase below (verify, analyze, join
  // synthesis, lifting, proof, redundancy removal) nests under it. Outcome
  // attributes are stamped when the result is final, whichever return path
  // is taken.
  Span Root("parallelizeLoop", trace::Pipeline);
  Root.attr("loop", L.Name.empty() ? "<loop>" : L.Name);
  struct RootFinisher {
    Span &S;
    PipelineResult &R;
    ~RootFinisher() {
      S.attr("success", R.Success);
      S.attr("aux_required", R.AuxRequired);
      S.attr("aux_count", uint64_t(R.AuxCount));
      S.attr("sequential_fallback", R.SequentialFallback);
      MetricsRegistry &M = MetricsRegistry::global();
      M.counter("pipeline.runs").inc();
      if (R.Success)
        M.counter("pipeline.successes").inc();
      if (R.SequentialFallback)
        M.counter("pipeline.sequential_fallbacks").inc();
      M.counter("pipeline.dropped_aux").add(R.DroppedAux.size());
    }
  } Finish{Root, Result};

  // The input must already be well-formed IR — catches corrupt
  // programmatically-built loops before any synthesis work.
  if (!verifyAt(L, VerifyPhase::AfterFrontend, Options, Result)) {
    Result.TotalSeconds = secondsSince(StartTime);
    return Result;
  }

  // Wall-clock budgets: the whole-loop deadline caps everything; each
  // join-synthesis / lift call additionally gets its own per-phase budget.
  const Deadline Overall = Deadline::after(Options.TimeoutSeconds);
  auto joinDeadline = [&] {
    return Deadline::sooner(Overall,
                            Deadline::after(Options.JoinTimeoutSeconds));
  };

  // Index-reading loops always need the materialized position accumulator;
  // it is part of "the original form is not parallelizable" in our
  // offset-free model (see DESIGN.md).
  Loop Original = materializeIndex(L);
  Result.IndexMaterialized = Original.Equations.size() > L.Equations.size();
  if (!verifyAt(Original, VerifyPhase::AfterNormalize, Options, Result)) {
    // Our index rewrite corrupted an otherwise-verified input: fall back to
    // executing the input loop as-is.
    Result.Final = L;
    Result.SequentialFallback = true;
    Result.TotalSeconds = secondsSince(StartTime);
    return Result;
  }
  if (Options.UseDependenceAnalysis)
    Result.Dependences = analyzeDependences(Original);

  // Graceful degradation: on any failure below, hand back the verified
  // (index-materialized) input with an empty join. InterpReduce executes an
  // empty-join result sequentially and the C++ backend emits a sequential
  // program, so the pipeline never returns nothing runnable.
  auto failSequential = [&]() -> PipelineResult & {
    Result.Success = false;
    Result.Final = Original;
    Result.Join.Success = false;
    Result.Join.Components.clear();
    Result.Join.FromFallback.clear();
    Result.SequentialFallback = true;
    Result.TotalSeconds = secondsSince(StartTime);
    return Result;
  };

  // Phase 1: join synthesis on the (index-materialized) original loop. The
  // empty-guard sketch extension stays off here so "parallelizable in
  // original form" means exactly the paper's C(E)+grammar space.
  JoinSynthOptions Phase1 = Options.Join;
  Phase1.AllowEmptyGuard = false;
  Result.Join = runJoinSynthesis(Original, Phase1, Options, Result,
                                 joinDeadline());
  Loop Work = Original;

  if (!Result.Join.Success || !joinProven(Original, Result.Join)) {
    // A timed-out phase 1 is not evidence that auxiliaries are required,
    // and every lifted loop is strictly larger than the original — its
    // join searches would time out too. Fail fast to honour the budget.
    if (Result.Join.Failure.Kind == FailureKind::Timeout ||
        Overall.expired()) {
      Result.Failure =
          Result.Join.Failure.Kind == FailureKind::Timeout
              ? Result.Join.Failure
              : FailureInfo{FailureKind::Timeout,
                            "pipeline deadline expired after phase-1 join "
                            "synthesis"};
      return failSequential();
    }
    Result.AuxRequired = true;
    if (!Options.TryLift) {
      Result.Failure = Result.Join.Failure;
      return failSequential();
    }

    // Phase 2: lift, then re-synthesize; drop unjoinable conjectures.
    bool Solved = false;
    for (const auto &[Depth, Preference] : Options.LiftAttempts) {
      if (Overall.expired()) {
        Result.Failure = {FailureKind::Timeout,
                          "pipeline deadline expired during lifting"};
        break;
      }
      MetricsRegistry::global().counter("pipeline.lift_attempts").inc();
      LiftOptions LiftOpts = Options.Lift;
      LiftOpts.Unfoldings = Depth;
      LiftOpts.Preference = Preference;
      LiftOpts.Timeout = Deadline::sooner(
          Overall, Deadline::after(Options.LiftTimeoutSeconds));
      LiftResult Lift = liftLoop(L, LiftOpts);
      Result.LiftSeconds += Lift.Seconds;
      Result.Unresolved = Lift.Unresolved;
      Result.AuxDiscovered = Lift.auxCount();
      Work = Lift.Lifted;
      if (!verifyAt(Work, VerifyPhase::AfterLift, Options, Result))
        continue; // skip a corrupt lift attempt, try the next one

      while (true) {
        Result.Join = runJoinSynthesis(Work, Options.Join, Options, Result,
                                       joinDeadline());
        if (Result.Join.Success) {
          if (joinProven(Work, Result.Join)) {
            Solved = true;
            break;
          }
          // A proof-refuted join: the bounded oracle was fooled; move on
          // to the next lifting attempt rather than trusting it.
          Result.Join.Success = false;
          break;
        }
        // If a conjectured auxiliary is itself unjoinable, it was an
        // artifact of the sampling-based collect step: drop it and retry.
        // (A timed-out synthesis leaves FailedEquation empty, so timeouts
        // never drop auxiliaries.)
        const std::string &Failed = Result.Join.FailedEquation;
        const Equation *FailedEq =
            Failed.empty() ? nullptr : Work.findEquation(Failed);
        if (!FailedEq || !FailedEq->IsAuxiliary || Failed == "_pos" ||
            !removeEquation(Work, Failed))
          break;
        Result.DroppedAux.push_back(Failed + " (unjoinable conjecture)");
      }
      if (Solved)
        break;
      // A join timeout on this lifted loop would repeat on every other
      // attempt (same searches, same budget): stop retrying.
      if (Result.Join.Failure.Kind == FailureKind::Timeout)
        break;
    }
    if (!Solved) {
      if (Result.Failure.empty())
        Result.Failure =
            Result.Join.Failure.empty()
                ? FailureInfo{FailureKind::NotHomomorphic,
                              "lifting did not produce a joinable loop"}
                : Result.Join.Failure;
      // Keep the lifted loop's auxiliary figures for Table 1 even though
      // the runnable fallback is the original loop.
      Result.AuxCount = Work.auxiliaryCount();
      return failSequential();
    }
  } else {
    Result.AuxRequired = Result.IndexMaterialized;
  }

  // Phase 3: remove-redundancies — drop each auxiliary (latest first) whose
  // removal still admits a join.
  if (Options.RemoveRedundant && Work.auxiliaryCount() > 0) {
    Span Redundancy("removeRedundancies", trace::Pipeline);
    Redundancy.attr("aux_before", uint64_t(Work.auxiliaryCount()));
    std::vector<std::string> AuxNames;
    for (const Equation &Eq : Work.Equations)
      if (Eq.IsAuxiliary)
        AuxNames.push_back(Eq.Name);
    for (auto It = AuxNames.rbegin(); It != AuxNames.rend(); ++It) {
      // Redundancy removal is an optimization: with the budget gone, keep
      // the proven join we already have rather than failing.
      if (Overall.expired())
        break;
      Loop Candidate = Work;
      if (!removeEquation(Candidate, *It))
        continue;
      JoinResult Retry = runJoinSynthesis(Candidate, Options.Join, Options,
                                          Result, joinDeadline());
      if (Retry.Success && joinProven(Candidate, Retry)) {
        Work = std::move(Candidate);
        Result.Join = std::move(Retry);
        Result.DroppedAux.push_back(*It + " (redundant)");
      }
    }
  }

  // Final gate: the loop and its join must verify before we hand either to
  // code generation or report success.
  if (!verifyAt(Work, VerifyPhase::BeforeCodegen, Options, Result))
    return failSequential();
  if (Options.VerifyIR) {
    VerifierReport JoinReport = verifyJoin(Work, Result.Join.Components);
    if (!JoinReport.ok()) {
      Result.Failure = {FailureKind::InternalError, JoinReport.str()};
      return failSequential();
    }
  }
  if (Options.UseDependenceAnalysis)
    Result.Dependences = analyzeDependences(Work);

  Result.Success = true;
  Result.Final = std::move(Work);
  Result.AuxCount = Result.Final.auxiliaryCount();
  // AuxRequired reports the phase-1 judgement (the paper's "parallelizable
  // in original form?" over the C(E)+grammar space). The final auxiliary
  // count can still be zero when the empty-guard extension finds a join no
  // plain sketch expresses (line-sight) — that combination is reported
  // as-is and discussed in EXPERIMENTS.md.
  Result.TotalSeconds = secondsSince(StartTime);
  return Result;
}

std::string PipelineResult::report() const {
  std::ostringstream OS;
  OS << (Success ? "PARALLELIZED" : "FAILED") << " "
     << (Final.Name.empty() ? "<loop>" : Final.Name) << "\n";
  OS << "  aux required: " << (AuxRequired ? "yes" : "no")
     << ", #aux: " << AuxCount << " (discovered " << AuxDiscovered << ")\n";
  if (!Dependences.Vars.empty()) {
    OS << "  dependence classes:";
    for (DepClass C : {DepClass::Constant, DepClass::IndependentFold,
                       DepClass::Conditional, DepClass::PrefixDependent})
      if (unsigned N = Dependences.count(C))
        OS << " " << depClassName(C) << "=" << N;
    OS << "\n";
  }
  if (SeedsAccepted || RestrictionRetries)
    OS << "  join searches skipped via trivial seeds: " << SeedsAccepted
       << ", restricted-search retries: " << RestrictionRetries << "\n";
  if (!Failure.empty())
    OS << "  failure: " << Failure << "\n";
  if (SequentialFallback)
    OS << "  sequential fallback: loop remains runnable single-threaded\n";
  for (const std::string &Dropped : DroppedAux)
    OS << "  dropped: " << Dropped << "\n";
  for (const std::string &U : Unresolved)
    OS << "  unresolved: " << U << "\n";
  OS << Final.str();
  if (Success) {
    OS << "join:\n";
    for (size_t I = 0; I != Join.Components.size(); ++I)
      OS << "  " << Final.Equations[I].Name << " = "
         << exprToString(Join.Components[I]) << "\n";
  }
  return OS.str();
}
