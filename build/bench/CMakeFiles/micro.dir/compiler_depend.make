# Empty compiler generated dependencies file for micro.
# This may be replaced when dependencies are built.
