file(REMOVE_RECURSE
  "CMakeFiles/micro.dir/micro.cpp.o"
  "CMakeFiles/micro.dir/micro.cpp.o.d"
  "micro"
  "micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
