file(REMOVE_RECURSE
  "CMakeFiles/parsynt_frontend.dir/Convert.cpp.o"
  "CMakeFiles/parsynt_frontend.dir/Convert.cpp.o.d"
  "CMakeFiles/parsynt_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/parsynt_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/parsynt_frontend.dir/Parser.cpp.o"
  "CMakeFiles/parsynt_frontend.dir/Parser.cpp.o.d"
  "libparsynt_frontend.a"
  "libparsynt_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
