file(REMOVE_RECURSE
  "libparsynt_frontend.a"
)
