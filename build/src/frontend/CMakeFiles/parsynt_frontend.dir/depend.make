# Empty dependencies file for parsynt_frontend.
# This may be replaced when dependencies are built.
