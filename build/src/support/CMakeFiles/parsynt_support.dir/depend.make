# Empty dependencies file for parsynt_support.
# This may be replaced when dependencies are built.
