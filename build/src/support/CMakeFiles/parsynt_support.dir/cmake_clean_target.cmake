file(REMOVE_RECURSE
  "libparsynt_support.a"
)
