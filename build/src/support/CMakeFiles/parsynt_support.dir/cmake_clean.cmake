file(REMOVE_RECURSE
  "CMakeFiles/parsynt_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/parsynt_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/parsynt_support.dir/Random.cpp.o"
  "CMakeFiles/parsynt_support.dir/Random.cpp.o.d"
  "libparsynt_support.a"
  "libparsynt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
