# Empty dependencies file for parsynt_ir.
# This may be replaced when dependencies are built.
