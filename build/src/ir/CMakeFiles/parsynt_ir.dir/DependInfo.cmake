
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/parsynt_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/parsynt_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/ExprOps.cpp" "src/ir/CMakeFiles/parsynt_ir.dir/ExprOps.cpp.o" "gcc" "src/ir/CMakeFiles/parsynt_ir.dir/ExprOps.cpp.o.d"
  "/root/repo/src/ir/Loop.cpp" "src/ir/CMakeFiles/parsynt_ir.dir/Loop.cpp.o" "gcc" "src/ir/CMakeFiles/parsynt_ir.dir/Loop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parsynt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
