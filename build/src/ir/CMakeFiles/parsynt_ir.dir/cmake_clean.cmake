file(REMOVE_RECURSE
  "CMakeFiles/parsynt_ir.dir/Expr.cpp.o"
  "CMakeFiles/parsynt_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/parsynt_ir.dir/ExprOps.cpp.o"
  "CMakeFiles/parsynt_ir.dir/ExprOps.cpp.o.d"
  "CMakeFiles/parsynt_ir.dir/Loop.cpp.o"
  "CMakeFiles/parsynt_ir.dir/Loop.cpp.o.d"
  "libparsynt_ir.a"
  "libparsynt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
