file(REMOVE_RECURSE
  "libparsynt_ir.a"
)
