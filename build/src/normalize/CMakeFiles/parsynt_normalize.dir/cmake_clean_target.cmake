file(REMOVE_RECURSE
  "libparsynt_normalize.a"
)
