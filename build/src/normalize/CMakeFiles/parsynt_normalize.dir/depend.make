# Empty dependencies file for parsynt_normalize.
# This may be replaced when dependencies are built.
