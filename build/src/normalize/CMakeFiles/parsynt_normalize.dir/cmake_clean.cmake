file(REMOVE_RECURSE
  "CMakeFiles/parsynt_normalize.dir/Normalizer.cpp.o"
  "CMakeFiles/parsynt_normalize.dir/Normalizer.cpp.o.d"
  "CMakeFiles/parsynt_normalize.dir/Rules.cpp.o"
  "CMakeFiles/parsynt_normalize.dir/Rules.cpp.o.d"
  "CMakeFiles/parsynt_normalize.dir/Simplify.cpp.o"
  "CMakeFiles/parsynt_normalize.dir/Simplify.cpp.o.d"
  "libparsynt_normalize.a"
  "libparsynt_normalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_normalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
