file(REMOVE_RECURSE
  "CMakeFiles/parsynt_synth.dir/Enumerator.cpp.o"
  "CMakeFiles/parsynt_synth.dir/Enumerator.cpp.o.d"
  "CMakeFiles/parsynt_synth.dir/HomOracle.cpp.o"
  "CMakeFiles/parsynt_synth.dir/HomOracle.cpp.o.d"
  "CMakeFiles/parsynt_synth.dir/JoinSynth.cpp.o"
  "CMakeFiles/parsynt_synth.dir/JoinSynth.cpp.o.d"
  "CMakeFiles/parsynt_synth.dir/Sketch.cpp.o"
  "CMakeFiles/parsynt_synth.dir/Sketch.cpp.o.d"
  "libparsynt_synth.a"
  "libparsynt_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
