# Empty dependencies file for parsynt_synth.
# This may be replaced when dependencies are built.
