file(REMOVE_RECURSE
  "libparsynt_synth.a"
)
