
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/Enumerator.cpp" "src/synth/CMakeFiles/parsynt_synth.dir/Enumerator.cpp.o" "gcc" "src/synth/CMakeFiles/parsynt_synth.dir/Enumerator.cpp.o.d"
  "/root/repo/src/synth/HomOracle.cpp" "src/synth/CMakeFiles/parsynt_synth.dir/HomOracle.cpp.o" "gcc" "src/synth/CMakeFiles/parsynt_synth.dir/HomOracle.cpp.o.d"
  "/root/repo/src/synth/JoinSynth.cpp" "src/synth/CMakeFiles/parsynt_synth.dir/JoinSynth.cpp.o" "gcc" "src/synth/CMakeFiles/parsynt_synth.dir/JoinSynth.cpp.o.d"
  "/root/repo/src/synth/Sketch.cpp" "src/synth/CMakeFiles/parsynt_synth.dir/Sketch.cpp.o" "gcc" "src/synth/CMakeFiles/parsynt_synth.dir/Sketch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/parsynt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/normalize/CMakeFiles/parsynt_normalize.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parsynt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parsynt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
