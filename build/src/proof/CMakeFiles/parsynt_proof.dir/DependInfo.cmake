
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proof/DafnyEmit.cpp" "src/proof/CMakeFiles/parsynt_proof.dir/DafnyEmit.cpp.o" "gcc" "src/proof/CMakeFiles/parsynt_proof.dir/DafnyEmit.cpp.o.d"
  "/root/repo/src/proof/ProofCheck.cpp" "src/proof/CMakeFiles/parsynt_proof.dir/ProofCheck.cpp.o" "gcc" "src/proof/CMakeFiles/parsynt_proof.dir/ProofCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/parsynt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parsynt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parsynt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
