file(REMOVE_RECURSE
  "libparsynt_proof.a"
)
