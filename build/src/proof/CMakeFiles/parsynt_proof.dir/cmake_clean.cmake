file(REMOVE_RECURSE
  "CMakeFiles/parsynt_proof.dir/DafnyEmit.cpp.o"
  "CMakeFiles/parsynt_proof.dir/DafnyEmit.cpp.o.d"
  "CMakeFiles/parsynt_proof.dir/ProofCheck.cpp.o"
  "CMakeFiles/parsynt_proof.dir/ProofCheck.cpp.o.d"
  "libparsynt_proof.a"
  "libparsynt_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
