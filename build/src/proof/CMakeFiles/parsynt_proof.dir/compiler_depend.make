# Empty compiler generated dependencies file for parsynt_proof.
# This may be replaced when dependencies are built.
