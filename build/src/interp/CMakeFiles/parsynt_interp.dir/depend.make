# Empty dependencies file for parsynt_interp.
# This may be replaced when dependencies are built.
