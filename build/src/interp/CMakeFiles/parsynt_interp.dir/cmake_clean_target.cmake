file(REMOVE_RECURSE
  "libparsynt_interp.a"
)
