file(REMOVE_RECURSE
  "CMakeFiles/parsynt_interp.dir/Interp.cpp.o"
  "CMakeFiles/parsynt_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/parsynt_interp.dir/SemanticEq.cpp.o"
  "CMakeFiles/parsynt_interp.dir/SemanticEq.cpp.o.d"
  "libparsynt_interp.a"
  "libparsynt_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
