file(REMOVE_RECURSE
  "CMakeFiles/parsynt_lift.dir/Lift.cpp.o"
  "CMakeFiles/parsynt_lift.dir/Lift.cpp.o.d"
  "CMakeFiles/parsynt_lift.dir/NormalForms.cpp.o"
  "CMakeFiles/parsynt_lift.dir/NormalForms.cpp.o.d"
  "CMakeFiles/parsynt_lift.dir/Unfold.cpp.o"
  "CMakeFiles/parsynt_lift.dir/Unfold.cpp.o.d"
  "libparsynt_lift.a"
  "libparsynt_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
