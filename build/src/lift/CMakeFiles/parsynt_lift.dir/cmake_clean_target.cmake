file(REMOVE_RECURSE
  "libparsynt_lift.a"
)
