# Empty compiler generated dependencies file for parsynt_lift.
# This may be replaced when dependencies are built.
