file(REMOVE_RECURSE
  "CMakeFiles/parsynt_pipeline.dir/Parallelizer.cpp.o"
  "CMakeFiles/parsynt_pipeline.dir/Parallelizer.cpp.o.d"
  "libparsynt_pipeline.a"
  "libparsynt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
