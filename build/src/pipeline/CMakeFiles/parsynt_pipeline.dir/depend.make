# Empty dependencies file for parsynt_pipeline.
# This may be replaced when dependencies are built.
