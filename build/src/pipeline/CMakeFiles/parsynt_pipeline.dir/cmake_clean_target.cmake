file(REMOVE_RECURSE
  "libparsynt_pipeline.a"
)
