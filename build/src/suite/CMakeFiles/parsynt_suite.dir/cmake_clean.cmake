file(REMOVE_RECURSE
  "CMakeFiles/parsynt_suite.dir/Benchmarks.cpp.o"
  "CMakeFiles/parsynt_suite.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/parsynt_suite.dir/Kernels.cpp.o"
  "CMakeFiles/parsynt_suite.dir/Kernels.cpp.o.d"
  "libparsynt_suite.a"
  "libparsynt_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
