file(REMOVE_RECURSE
  "libparsynt_suite.a"
)
