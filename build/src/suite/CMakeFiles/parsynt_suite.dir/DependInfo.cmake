
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/Benchmarks.cpp" "src/suite/CMakeFiles/parsynt_suite.dir/Benchmarks.cpp.o" "gcc" "src/suite/CMakeFiles/parsynt_suite.dir/Benchmarks.cpp.o.d"
  "/root/repo/src/suite/Kernels.cpp" "src/suite/CMakeFiles/parsynt_suite.dir/Kernels.cpp.o" "gcc" "src/suite/CMakeFiles/parsynt_suite.dir/Kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/parsynt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parsynt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parsynt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
