# Empty dependencies file for parsynt_suite.
# This may be replaced when dependencies are built.
