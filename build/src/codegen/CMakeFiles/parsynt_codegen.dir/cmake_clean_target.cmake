file(REMOVE_RECURSE
  "libparsynt_codegen.a"
)
