file(REMOVE_RECURSE
  "CMakeFiles/parsynt_codegen.dir/EmitCpp.cpp.o"
  "CMakeFiles/parsynt_codegen.dir/EmitCpp.cpp.o.d"
  "libparsynt_codegen.a"
  "libparsynt_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
