# Empty dependencies file for parsynt_codegen.
# This may be replaced when dependencies are built.
