
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/InterpReduce.cpp" "src/runtime/CMakeFiles/parsynt_runtime.dir/InterpReduce.cpp.o" "gcc" "src/runtime/CMakeFiles/parsynt_runtime.dir/InterpReduce.cpp.o.d"
  "/root/repo/src/runtime/TaskPool.cpp" "src/runtime/CMakeFiles/parsynt_runtime.dir/TaskPool.cpp.o" "gcc" "src/runtime/CMakeFiles/parsynt_runtime.dir/TaskPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/parsynt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parsynt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parsynt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
