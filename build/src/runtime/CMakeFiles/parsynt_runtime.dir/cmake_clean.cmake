file(REMOVE_RECURSE
  "CMakeFiles/parsynt_runtime.dir/InterpReduce.cpp.o"
  "CMakeFiles/parsynt_runtime.dir/InterpReduce.cpp.o.d"
  "CMakeFiles/parsynt_runtime.dir/TaskPool.cpp.o"
  "CMakeFiles/parsynt_runtime.dir/TaskPool.cpp.o.d"
  "libparsynt_runtime.a"
  "libparsynt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
