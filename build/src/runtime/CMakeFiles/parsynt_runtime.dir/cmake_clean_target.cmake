file(REMOVE_RECURSE
  "libparsynt_runtime.a"
)
