# Empty compiler generated dependencies file for parsynt_runtime.
# This may be replaced when dependencies are built.
