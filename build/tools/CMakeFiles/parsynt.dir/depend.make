# Empty dependencies file for parsynt.
# This may be replaced when dependencies are built.
