file(REMOVE_RECURSE
  "CMakeFiles/parsynt.dir/parsynt/main.cpp.o"
  "CMakeFiles/parsynt.dir/parsynt/main.cpp.o.d"
  "parsynt"
  "parsynt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsynt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
