file(REMOVE_RECURSE
  "CMakeFiles/enum_oracle_test.dir/enum_oracle_test.cpp.o"
  "CMakeFiles/enum_oracle_test.dir/enum_oracle_test.cpp.o.d"
  "enum_oracle_test"
  "enum_oracle_test.pdb"
  "enum_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enum_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
