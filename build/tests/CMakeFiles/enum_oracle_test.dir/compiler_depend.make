# Empty compiler generated dependencies file for enum_oracle_test.
# This may be replaced when dependencies are built.
