# Empty compiler generated dependencies file for lift_test.
# This may be replaced when dependencies are built.
