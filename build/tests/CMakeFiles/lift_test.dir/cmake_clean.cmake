file(REMOVE_RECURSE
  "CMakeFiles/lift_test.dir/lift_test.cpp.o"
  "CMakeFiles/lift_test.dir/lift_test.cpp.o.d"
  "lift_test"
  "lift_test.pdb"
  "lift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
