# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/normalize_test[1]_include.cmake")
include("/root/repo/build/tests/lift_test[1]_include.cmake")
include("/root/repo/build/tests/enum_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/proof_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
