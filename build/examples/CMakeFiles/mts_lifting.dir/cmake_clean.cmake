file(REMOVE_RECURSE
  "CMakeFiles/mts_lifting.dir/mts_lifting.cpp.o"
  "CMakeFiles/mts_lifting.dir/mts_lifting.cpp.o.d"
  "mts_lifting"
  "mts_lifting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_lifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
