# Empty compiler generated dependencies file for mts_lifting.
# This may be replaced when dependencies are built.
