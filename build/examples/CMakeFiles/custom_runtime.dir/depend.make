# Empty dependencies file for custom_runtime.
# This may be replaced when dependencies are built.
