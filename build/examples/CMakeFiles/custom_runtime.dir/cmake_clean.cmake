file(REMOVE_RECURSE
  "CMakeFiles/custom_runtime.dir/custom_runtime.cpp.o"
  "CMakeFiles/custom_runtime.dir/custom_runtime.cpp.o.d"
  "custom_runtime"
  "custom_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
