file(REMOVE_RECURSE
  "CMakeFiles/balanced_parens.dir/balanced_parens.cpp.o"
  "CMakeFiles/balanced_parens.dir/balanced_parens.cpp.o.d"
  "balanced_parens"
  "balanced_parens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_parens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
