# Empty compiler generated dependencies file for balanced_parens.
# This may be replaced when dependencies are built.
