//===- bench/ablation.cpp - Design-choice ablations -----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Ablations for the design choices called out in DESIGN.md §5:
//   A. the C(E) sketch vs. pure free-grammar synthesis (Proposition 4.4's
//      search-space reduction);
//   B. the free-grammar fallback disabled (how much the sketch alone
//      covers);
//   C. normalization search budget (cost-directed best-first convergence).
//
//===----------------------------------------------------------------------===//

#include "normalize/Normalizer.h"
#include "lift/Unfold.h"
#include "pipeline/Parallelizer.h"
#include "suite/Benchmarks.h"
#include "synth/JoinSynth.h"

#include <cstdio>

using namespace parsynt;

namespace {

const char *Probes[] = {"sum",  "2nd-min",   "mps",       "mts",
                        "mss",  "is-sorted", "dropwhile", "0after1"};

void ablationSketch() {
  std::printf("A. Sketch C(E) vs free-grammar synthesis (join synthesis on "
              "the already-lifted/parallelizable loop)\n");
  std::printf("%-10s | %-28s | %-28s\n", "benchmark",
              "sketch (s, assignments)", "free only (s, enumerated)");
  for (const char *Name : Probes) {
    Loop L = parseBenchmark(*findBenchmark(Name));
    // Obtain the lifted loop via the full pipeline once.
    PipelineResult Prepared = parallelizeLoop(L);
    if (!Prepared.Success) {
      std::printf("%-10s | pipeline failed\n", Name);
      continue;
    }
    JoinSynthOptions WithSketch;
    JoinResult A = synthesizeJoin(Prepared.Final, WithSketch);
    JoinSynthOptions FreeOnly;
    FreeOnly.UseSketch = false;
    JoinResult B = synthesizeJoin(Prepared.Final, FreeOnly);
    std::printf("%-10s | %-5s %6.2fs %12llu | %-5s %6.2fs %12llu\n", Name,
                A.Success ? "ok" : "fail", A.Stats.Seconds,
                (unsigned long long)A.Stats.SketchAssignmentsTried,
                B.Success ? "ok" : "fail", B.Stats.Seconds,
                (unsigned long long)B.Stats.EnumeratedCandidates);
  }
  std::printf("\n");
}

void ablationFallback() {
  std::printf("B. Sketch-only (free-grammar fallback disabled)\n");
  std::printf("%-10s | %-8s | %-8s\n", "benchmark", "default", "no-fallback");
  for (const char *Name : Probes) {
    Loop L = parseBenchmark(*findBenchmark(Name));
    PipelineResult Prepared = parallelizeLoop(L);
    if (!Prepared.Success)
      continue;
    JoinSynthOptions NoFallback;
    NoFallback.AllowFallback = false;
    JoinResult A = synthesizeJoin(Prepared.Final);
    JoinResult B = synthesizeJoin(Prepared.Final, NoFallback);
    std::printf("%-10s | %-8s | %-8s\n", Name, A.Success ? "ok" : "fail",
                B.Success ? "ok" : "fail");
  }
  std::printf("\n");
}

void ablationNormalizeBudget() {
  std::printf("C. Normalization budget (balanced-() second unfolding; cost "
              "= (unknown depth, occurrences))\n");
  Loop L = materializeIndex(parseBenchmark(*findBenchmark("balanced-()")));
  Unfolding U = unfoldLoop(L, 2, /*FromUnknowns=*/true);
  ExprRef Tau = U.ValuesAtStep.at("bal")[2];
  std::set<std::string> Unknowns;
  for (const Equation &Eq : L.Equations)
    Unknowns.insert(unknownName(Eq.Name));

  std::printf("%-12s | %-10s | %-10s | %s\n", "expansions", "cost depth",
              "cost occs", "generated");
  for (unsigned Budget : {10u, 50u, 200u, 1000u, 4000u}) {
    NormalizeOptions Opts;
    Opts.MaxExpansions = Budget;
    NormalizeStats Stats;
    ExprRef Ell = normalizeExpr(Tau, Unknowns, Opts, &Stats);
    ExprCost Cost = exprCost(Ell, Unknowns);
    std::printf("%-12u | %-10u | %-10u | %u\n", Budget, Cost.MaxDepth,
                Cost.Occurrences, Stats.Generated);
  }
  std::printf("\n");
}

} // namespace

int main() {
  ablationSketch();
  ablationFallback();
  ablationNormalizeBudget();
  return 0;
}
