//===- bench/table1.cpp - Reproduction of the paper's Table 1 -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: for each of the 22 benchmarks, whether auxiliary
// accumulators are required, the join synthesis time, and the number of
// auxiliaries discovered — plus the auxiliary-synthesis and proof times the
// paper reports as negligible. max-block-1 must fail with partial progress
// (the paper's footnote *).
//
// `--report json` prints the machine-readable run report (observe/Report.h)
// on stdout with the human table moved to stderr; each benchmark entry
// carries its per-benchmark counter deltas (CEGIS rounds, candidates
// enumerated, rewrite-rule hits, ...) attributed by snapshotting the global
// metrics registry around the pipeline call. CI archives the document as
// BENCH_table1.json.
//
//===----------------------------------------------------------------------===//

#include "observe/Report.h"
#include "pipeline/Parallelizer.h"
#include "proof/ProofCheck.h"
#include "suite/Benchmarks.h"

#include <cstdio>
#include <cstring>

using namespace parsynt;

int main(int argc, char **argv) {
  bool ReportJson = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--report") == 0 && I + 1 < argc &&
        std::strcmp(argv[I + 1], "json") == 0) {
      ReportJson = true;
      ++I;
    } else {
      std::fprintf(stderr, "usage: table1 [--report json]\n");
      return 2;
    }
  }
  // In report mode the JSON document owns stdout.
  FILE *HumanOut = ReportJson ? stderr : stdout;

  std::fprintf(HumanOut,
               "Table 1: PARSYNT over all benchmarks (times in seconds)\n");
  std::fprintf(HumanOut,
               "%-12s | %-12s | %-13s | %-13s | %-10s | %-10s | %s\n",
               "benchmark", "aux required", "join synt (s)", "#aux required",
               "aux synt(s)", "proof (s)", "status");
  std::fprintf(HumanOut,
               "-------------+--------------+---------------+---------------"
               "+------------+------------+--------\n");

  RunReport Report;
  Report.Tool = "table1";
  unsigned Successes = 0, ExpectedFailures = 0;
  double TotalSeconds = 0;
  for (const Benchmark &B : allBenchmarks()) {
    Loop L = parseBenchmark(B);
    MetricsRegistry::Snapshot Before = MetricsRegistry::global().snapshot();
    PipelineResult R = parallelizeLoop(L);
    TotalSeconds += R.TotalSeconds;

    double ProofSeconds = -1;
    bool ProofOk = false;
    if (R.Success) {
      ProofReport Proof = checkHomomorphismProof(R.Final, R.Join.Components);
      ProofSeconds = Proof.Seconds;
      ProofOk = Proof.Verified;
    }
    MetricsRegistry::Snapshot After = MetricsRegistry::global().snapshot();

    BenchmarkEntry Entry = makeBenchmarkEntry(B.Name, R, ProofSeconds);
    Entry.Metrics = counterDeltas(Before, After);
    Entry.Extra.emplace_back("expected_success",
                             B.ExpectFullSuccess ? 1.0 : 0.0);
    if (R.Success)
      Entry.Extra.emplace_back("proof_verified", ProofOk ? 1.0 : 0.0);
    Report.Benchmarks.push_back(std::move(Entry));

    char AuxCount[32];
    if (!R.AuxRequired)
      std::snprintf(AuxCount, sizeof(AuxCount), "-");
    else if (R.Success)
      std::snprintf(AuxCount, sizeof(AuxCount), "%u", R.AuxCount);
    else
      std::snprintf(AuxCount, sizeof(AuxCount), "%u found*",
                    R.AuxDiscovered);

    const char *Status = R.Success
                             ? (ProofOk ? "ok" : "ok (proof?)")
                             : (B.ExpectFullSuccess ? "FAIL" : "fail*");
    if (R.Success)
      ++Successes;
    else if (!B.ExpectFullSuccess)
      ++ExpectedFailures;

    std::fprintf(HumanOut,
                 "%-12s | %-12s | %13.2f | %-13s | %10.2f | %10.3f | %s\n",
                 B.Name.c_str(), R.AuxRequired ? "yes" : "no", R.JoinSeconds,
                 AuxCount, R.LiftSeconds, ProofSeconds < 0 ? 0 : ProofSeconds,
                 Status);
  }

  std::fprintf(HumanOut,
               "\n%u/%zu parallelized; %u expected failure(s) "
               "(max-block-1, as in the paper: the Figure-6 rule set cannot "
               "resolve its conditional accumulators). Total %.1fs.\n",
               Successes, allBenchmarks().size(), ExpectedFailures,
               TotalSeconds);
  std::fprintf(HumanOut,
               "* marks the paper's footnote case: partial auxiliary "
               "discovery, join synthesis incomplete.\n");
  if (ReportJson)
    std::printf("%s", Report.toJson().c_str());
  return 0;
}
