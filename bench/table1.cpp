//===- bench/table1.cpp - Reproduction of the paper's Table 1 -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: for each of the 22 benchmarks, whether auxiliary
// accumulators are required, the join synthesis time, and the number of
// auxiliaries discovered — plus the auxiliary-synthesis and proof times the
// paper reports as negligible. max-block-1 must fail with partial progress
// (the paper's footnote *).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Parallelizer.h"
#include "proof/ProofCheck.h"
#include "suite/Benchmarks.h"

#include <cstdio>

using namespace parsynt;

int main() {
  std::printf("Table 1: PARSYNT over all benchmarks (times in seconds)\n");
  std::printf("%-12s | %-12s | %-13s | %-13s | %-10s | %-10s | %s\n",
              "benchmark", "aux required", "join synt (s)", "#aux required",
              "aux synt(s)", "proof (s)", "status");
  std::printf("-------------+--------------+---------------+---------------"
              "+------------+------------+--------\n");

  unsigned Successes = 0, ExpectedFailures = 0;
  double TotalSeconds = 0;
  for (const Benchmark &B : allBenchmarks()) {
    Loop L = parseBenchmark(B);
    PipelineResult R = parallelizeLoop(L);
    TotalSeconds += R.TotalSeconds;

    double ProofSeconds = 0;
    bool ProofOk = false;
    if (R.Success) {
      ProofReport Proof = checkHomomorphismProof(R.Final, R.Join.Components);
      ProofSeconds = Proof.Seconds;
      ProofOk = Proof.Verified;
    }

    char AuxCount[32];
    if (!R.AuxRequired)
      std::snprintf(AuxCount, sizeof(AuxCount), "-");
    else if (R.Success)
      std::snprintf(AuxCount, sizeof(AuxCount), "%u", R.AuxCount);
    else
      std::snprintf(AuxCount, sizeof(AuxCount), "%u found*",
                    R.AuxDiscovered);

    const char *Status = R.Success
                             ? (ProofOk ? "ok" : "ok (proof?)")
                             : (B.ExpectFullSuccess ? "FAIL" : "fail*");
    if (R.Success)
      ++Successes;
    else if (!B.ExpectFullSuccess)
      ++ExpectedFailures;

    std::printf("%-12s | %-12s | %13.2f | %-13s | %10.2f | %10.3f | %s\n",
                B.Name.c_str(), R.AuxRequired ? "yes" : "no", R.JoinSeconds,
                AuxCount, R.LiftSeconds, ProofSeconds, Status);
  }

  std::printf("\n%u/%zu parallelized; %u expected failure(s) "
              "(max-block-1, as in the paper: the Figure-6 rule set cannot "
              "resolve its conditional accumulators). Total %.1fs.\n",
              Successes, allBenchmarks().size(), ExpectedFailures,
              TotalSeconds);
  std::printf("* marks the paper's footnote case: partial auxiliary "
              "discovery, join synthesis incomplete.\n");
  return 0;
}
