//===- bench/fig8.cpp - Reproduction of the paper's Figure 8 --------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8 (speedup of the synthesized parallel programs over
// the original sequential loops) and the Section-8.2 single-core overhead
// measurement (slowdown mean ~1.0, sigma ~0.04 in the paper).
//
// The paper runs 2-billion-element arrays with grain 50k on a 64-core
// Proliant; this harness defaults to 2^24 elements (override with
// PARSYNT_FIG8_ELEMS) and sweeps thread counts up to the machine's core
// count, or up to PARSYNT_FIG8_THREADS to probe oversubscription (the
// shape — near-linear scaling to the core count, ~1.0 one-core overhead —
// is the reproduction target; see EXPERIMENTS.md).
//
// `--report json` prints the machine-readable run report
// (observe/Report.h) on stdout with the human table moved to stderr; CI
// archives it as BENCH_fig8.json. `--stats` prints the scheduler's
// counters after each row, formatted through the metrics registry.
//
//===----------------------------------------------------------------------===//

#include "observe/PoolMetrics.h"
#include "observe/Report.h"
#include "runtime/ParallelReduce.h"
#include "suite/Kernels.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace parsynt;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-N timing to suppress scheduler noise on small machines.
template <typename Fn> double bestOf(unsigned Reps, Fn &&Body) {
  double Best = 1e100;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    double Start = now();
    Body();
    Best = std::min(Best, now() - Start);
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  bool Stats = false, ReportJson = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--stats") == 0) {
      Stats = true;
    } else if (std::strcmp(argv[I], "--report") == 0 && I + 1 < argc &&
               std::strcmp(argv[I + 1], "json") == 0) {
      ReportJson = true;
      ++I;
    } else {
      std::fprintf(stderr, "usage: fig8 [--stats] [--report json]\n");
      return 2;
    }
  }
  // In report mode the JSON document owns stdout.
  FILE *HumanOut = ReportJson ? stderr : stdout;
  size_t N = size_t(1) << 26;
  if (const char *Env = std::getenv("PARSYNT_FIG8_ELEMS"))
    N = static_cast<size_t>(std::atoll(Env));
  const size_t Grain = 50000; // the paper's grain size
  // PARSYNT_FIG8_THREADS extends the sweep past the core count so the
  // scheduler's oversubscription behaviour is measurable on small machines.
  unsigned Cores = defaultThreadCount();
  if (const char *Env = std::getenv("PARSYNT_FIG8_THREADS"))
    Cores = std::max(1u, static_cast<unsigned>(std::atoi(Env)));
  std::vector<unsigned> ThreadCounts;
  for (unsigned T = 1; T <= Cores; T *= 2)
    ThreadCounts.push_back(T);
  if (ThreadCounts.back() != Cores)
    ThreadCounts.push_back(Cores);
  const unsigned Reps = 3;

  std::fprintf(HumanOut,
               "Figure 8: speedup of the synthesized divide-and-conquer "
               "programs over the sequential originals\n");
  std::fprintf(HumanOut,
               "elements=%zu grain=%zu cores=%u (paper: 2bn elements, grain "
               "50k, 64 cores)\n\n",
               N, Grain, Cores);
  std::fprintf(HumanOut, "%-12s %10s |", "benchmark", "seq (s)");
  for (unsigned T : ThreadCounts)
    std::fprintf(HumanOut, "  x%-5u", T);
  std::fprintf(HumanOut, "   (speedup per thread count)\n");

  RunReport Report;
  Report.Tool = "fig8";
  std::vector<double> OneThreadSlowdowns;
  for (const NativeKernel &K : nativeKernels()) {
    std::vector<int64_t> A = generateInput(K.Kind, N, 0xF168);
    std::vector<int64_t> B =
        K.TwoSequences ? generateInput(K.Kind, N, 77) : std::vector<int64_t>();
    const int64_t *PB = K.TwoSequences ? B.data() : nullptr;

    volatile int64_t Sink = 0;
    double SeqTime = bestOf(Reps, [&] {
      KState S = K.Sequential(A.data(), PB, N);
      Sink = K.Output(S);
    });

    std::fprintf(HumanOut, "%-12s %10.3f |", K.Name.c_str(), SeqTime);
    BenchmarkEntry Entry;
    Entry.Name = K.Name;
    Entry.Success = true;
    Entry.TotalSeconds = SeqTime;
    Entry.Extra.emplace_back("seq_seconds", SeqTime);
    Entry.Extra.emplace_back("elements", double(N));
    std::vector<std::string> StatLines;
    for (unsigned T : ThreadCounts) {
      TaskPool Pool(T);
      Pool.setTimingEnabled(Stats);
      int64_t ParOut = 0;
      double ParTime = bestOf(Reps, [&] {
        KState S = parallelReduce<KState>(
            BlockedRange{0, N, Grain}, Pool,
            [&](size_t Begin, size_t End) {
              return K.Leaf(A.data(), PB, Begin, End);
            },
            [&](const KState &L, const KState &R) { return K.Join(L, R); });
        ParOut = K.Output(S);
      });
      if (ParOut != Sink) {
        std::fprintf(HumanOut, " WRONG! ");
        Entry.Success = false;
      } else {
        std::fprintf(HumanOut, "  %5.2f ", SeqTime / ParTime);
      }
      Entry.Extra.emplace_back("speedup_x" + std::to_string(T),
                               SeqTime / ParTime);
      // Exclude degenerate rows from the §8.2 statistic: when the
      // sequential loop compiles to O(1) (length), the ratio divides by
      // ~0 and measures nothing but the fixed cost of the grain tree.
      if (T == 1 && SeqTime > 1e-3) {
        OneThreadSlowdowns.push_back(ParTime / SeqTime);
        Entry.Extra.emplace_back("one_thread_slowdown", ParTime / SeqTime);
      }
      // One code path for the scheduler counters: the pool snapshot is
      // absorbed into the metrics registry (under "pool.") and both the
      // report and the --stats lines read from there.
      StatsSnapshot Snap = Pool.statsSnapshot();
      absorbPoolStats(MetricsRegistry::global(), Snap);
      if (Stats)
        StatLines.push_back("    x" + std::to_string(T) + " (" +
                            std::to_string(Reps) + " reps): " +
                            poolSummary(Snap));
    }
    if (!Entry.Success)
      Entry.Failure =
          FailureInfo(FailureKind::InternalError,
                      "parallel output mismatches the sequential loop");
    Report.Benchmarks.push_back(std::move(Entry));
    std::fprintf(HumanOut, "\n");
    for (const std::string &Line : StatLines)
      std::fprintf(HumanOut, "%s\n", Line.c_str());
  }

  // Section 8.2: single-core overhead of the runtime + lifted leaves.
  double Mean = 0;
  for (double S : OneThreadSlowdowns)
    Mean += S;
  Mean /= OneThreadSlowdowns.size();
  double Var = 0;
  for (double S : OneThreadSlowdowns)
    Var += (S - Mean) * (S - Mean);
  double Sigma = std::sqrt(Var / OneThreadSlowdowns.size());
  std::fprintf(HumanOut,
               "\nSingle-core slowdown of the parallel version (paper: mean "
               "~1.0, sigma ~0.04):\n  mean %.3f, sigma %.3f over %zu "
               "benchmarks (degenerate seq<1ms rows excluded)\n",
               Mean, Sigma, OneThreadSlowdowns.size());

  bool AllOk = true;
  for (const BenchmarkEntry &E : Report.Benchmarks)
    AllOk = AllOk && E.Success;
  if (ReportJson)
    std::printf("%s", Report.toJson().c_str());
  return AllOk ? 0 : 1;
}
