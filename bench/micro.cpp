//===- bench/micro.cpp - google-benchmark micro benchmarks ----------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Microbenchmarks for the building blocks whose throughput bounds the whole
// system: the interpreter (every synthesis oracle evaluation), the
// bottom-up enumerator, the rewrite engine, and the runtime's reduce
// skeleton.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "interp/SemanticEq.h"
#include "normalize/Normalizer.h"
#include "runtime/ParallelReduce.h"
#include "suite/Benchmarks.h"
#include "suite/Kernels.h"
#include "synth/Enumerator.h"

#include <benchmark/benchmark.h>

using namespace parsynt;

namespace {

void BM_InterpRunLoop(benchmark::State &State) {
  Loop L = parseBenchmark(*findBenchmark("mss"));
  SeqEnv Seqs;
  std::vector<Value> Elems;
  Rng R(1);
  for (int I = 0; I != 1024; ++I)
    Elems.push_back(Value::ofInt(R.intIn(-50, 50)));
  Seqs["s"] = std::move(Elems);
  for (auto _ : State) {
    StateTuple S = runLoop(L, Seqs);
    benchmark::DoNotOptimize(S);
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_InterpRunLoop);

void BM_EnumeratorGrow(benchmark::State &State) {
  Rng R(2);
  std::vector<Env> Envs = sampleEnvs(
      {{"a_l", Type::Int}, {"a_r", Type::Int}, {"b_l", Type::Int},
       {"b_r", Type::Int}},
      64, R);
  for (auto _ : State) {
    EnumeratorOptions Opts;
    Opts.MaxSize = static_cast<unsigned>(State.range(0));
    Enumerator E(Envs, Opts);
    E.addLeaf(inputVar("a_l"));
    E.addLeaf(inputVar("a_r"));
    E.addLeaf(inputVar("b_l"));
    E.addLeaf(inputVar("b_r"));
    E.addLeaf(intConst(0));
    E.addLeaf(intConst(1));
    E.run();
    benchmark::DoNotOptimize(E.totalCandidates());
    State.counters["candidates"] =
        static_cast<double>(E.totalCandidates());
  }
}
BENCHMARK(BM_EnumeratorGrow)->Arg(3)->Arg(5)->Arg(7);

void BM_NormalizeMtsUnfolding(benchmark::State &State) {
  ExprRef U = unknownVar("mts@0");
  ExprRef Tau = U;
  for (int Step = 1; Step <= State.range(0); ++Step)
    Tau = maxE(add(Tau, inputVar("s@" + std::to_string(Step))), intConst(0));
  for (auto _ : State) {
    ExprRef Ell = normalizeExpr(Tau, {"mts@0"});
    benchmark::DoNotOptimize(Ell);
  }
}
BENCHMARK(BM_NormalizeMtsUnfolding)->Arg(2)->Arg(3);

void BM_ParallelReduceSum(benchmark::State &State) {
  const NativeKernel &K = *findKernel("sum");
  size_t N = 1 << 22;
  std::vector<int64_t> A = generateInput(K.Kind, N, 3);
  TaskPool Pool(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    KState S = parallelReduce<KState>(
        BlockedRange{0, N, 50000}, Pool,
        [&](size_t B, size_t E) { return K.Leaf(A.data(), nullptr, B, E); },
        [&](const KState &L, const KState &R) { return K.Join(L, R); });
    benchmark::DoNotOptimize(S);
  }
  State.SetBytesProcessed(State.iterations() * N * sizeof(int64_t));
}
BENCHMARK(BM_ParallelReduceSum)->Arg(1)->Arg(2)->Arg(4);

void BM_TaskPoolSpawnJoin(benchmark::State &State) {
  TaskPool Pool(4);
  for (auto _ : State) {
    TaskGroup Group;
    for (int I = 0; I != 256; ++I)
      Pool.spawn(Group, [] {});
    Pool.wait(Group);
  }
  State.SetItemsProcessed(State.iterations() * 256);
}
BENCHMARK(BM_TaskPoolSpawnJoin);

// Scheduler-overhead check: a leaf-grain sweep (trivial leaves, grain 1
// relative to a small range) where spawn/steal/park cost dominates. The
// spawn/steal/park counters are reported so scheduler regressions are
// visible directly in bench output, not just as wall time.
void BM_SchedulerOverheadFineGrain(benchmark::State &State) {
  TaskPool Pool(static_cast<unsigned>(State.range(0)));
  const size_t N = 4096;
  for (auto _ : State) {
    int64_t Sum = parallelReduce<int64_t>(
        BlockedRange{0, N, 1}, Pool,
        [](size_t B, size_t E) { return static_cast<int64_t>(E - B); },
        [](const int64_t &L, const int64_t &R) { return L + R; });
    benchmark::DoNotOptimize(Sum);
    if (Sum != static_cast<int64_t>(N))
      State.SkipWithError("wrong reduction result");
  }
  StatsSnapshot Snap = Pool.statsSnapshot();
  double Iters = static_cast<double>(std::max<int64_t>(State.iterations(), 1));
  State.counters["spawns/iter"] =
      static_cast<double>(Snap.Total.Spawned) / Iters;
  State.counters["steals/iter"] =
      static_cast<double>(Snap.Total.Stolen) / Iters;
  State.counters["parks/iter"] = static_cast<double>(Snap.Total.Parks) / Iters;
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_SchedulerOverheadFineGrain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
