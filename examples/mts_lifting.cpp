//===- examples/mts_lifting.cpp - The Section-2 mts walkthrough -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The paper's flagship example: maximum tail sum has *no* join in its
// original form (Section 2 exhibits the counterexample pair); the loop must
// first be lifted with the auxiliary running sum. This example walks every
// stage explicitly: failed synthesis, the counterexample, Algorithm-1
// lifting, successful synthesis on the lifted loop, proof artifact.
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "lift/Lift.h"
#include "proof/DafnyEmit.h"
#include "proof/ProofCheck.h"
#include "synth/JoinSynth.h"

#include <cstdio>

using namespace parsynt;

int main() {
  const char *Source = "mts = 0;\n"
                       "for (i = 0; i < |s|; i++) {\n"
                       "  mts = max(mts + s[i], 0);\n"
                       "}\n";
  DiagnosticEngine Diags;
  auto L = parseLoop(Source, "mts", Diags);
  if (!L)
    return 1;

  // The paper's Section-2 counterexample, replayed concretely:
  // mts([1,3]) == mts for both suffix pairs, yet the concatenations differ.
  auto mtsOf = [&](std::vector<int64_t> Elems) {
    SeqEnv Seqs;
    std::vector<Value> Values;
    for (int64_t V : Elems)
      Values.push_back(Value::ofInt(V));
    Seqs["s"] = std::move(Values);
    return runLoop(*L, Seqs)[0].asInt();
  };
  std::printf("mts([1,3]) = %lld, mts([-2,5]) = %lld, mts([0,5]) = %lld\n",
              (long long)mtsOf({1, 3}), (long long)mtsOf({-2, 5}),
              (long long)mtsOf({0, 5}));
  std::printf("mts([1,3,-2,5]) = %lld but mts([1,3,0,5]) = %lld\n",
              (long long)mtsOf({1, 3, -2, 5}), (long long)mtsOf({1, 3, 0, 5}));
  std::printf("-> no function of (4, 5) can produce both 7 and 9: "
              "no join exists.\n\n");

  // 1. Join synthesis on the original loop fails, as it must.
  JoinResult Direct = synthesizeJoin(*L);
  std::printf("direct synthesis: %s\n",
              Direct.Success ? "succeeded (unexpected!)"
                             : Direct.Failure.str().c_str());

  // 2. Algorithm 1 discovers the auxiliary accumulator (the running sum).
  LiftResult Lift = liftLoop(*L);
  std::printf("\n== lifted loop ==\n%s", Lift.Lifted.str().c_str());
  for (const AuxAccumulator &Aux : Lift.Auxiliaries)
    std::printf("discovered %s from collected expression %s\n",
                Aux.Name.c_str(), exprToString(Aux.Definition).c_str());

  // 3. Join synthesis on the lifted loop succeeds.
  JoinResult Join = synthesizeJoin(Lift.Lifted);
  if (!Join.Success) {
    std::fprintf(stderr, "join synthesis failed: %s\n",
                 Join.Failure.str().c_str());
    return 1;
  }
  std::printf("\n== join for the lifted loop ==\n%s",
              joinToString(Lift.Lifted, Join.Components).c_str());

  // 4. Proof: the internal induction checker plus the Dafny artifact.
  ProofReport Proof = checkHomomorphismProof(Lift.Lifted, Join.Components);
  std::printf("\n%s\n", Proof.str().c_str());
  std::printf("\n== Figure-7 Dafny artifact ==\n%s",
              emitDafnyProof(Lift.Lifted, Join.Components).c_str());
  return Proof.Verified ? 0 : 1;
}
