//===- examples/quickstart.cpp - Five-minute tour -------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Quickstart: parse a sequential loop, synthesize its divide-and-conquer
// join, check the homomorphism proof obligations, and run it in parallel.
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "pipeline/Parallelizer.h"
#include "proof/ProofCheck.h"
#include "runtime/InterpReduce.h"

#include <cstdio>

using namespace parsynt;

int main() {
  // 1. A sequential loop in the Figure-3 input language: the second
  //    smallest element (the paper's Section-2 example).
  const char *Source = "m = MAX_INT;\n"
                       "m2 = MAX_INT;\n"
                       "for (i = 0; i < |s|; i++) {\n"
                       "  m2 = min(m2, max(m, s[i]));\n"
                       "  m = min(m, s[i]);\n"
                       "}\n";

  DiagnosticEngine Diags;
  auto L = parseLoop(Source, "2nd-min", Diags);
  if (!L) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::printf("== recurrence-equation model ==\n%s\n", L->str().c_str());

  // 2. Synthesize the join (this loop is a homomorphism as-is, so no
  //    lifting is needed).
  PipelineResult Result = parallelizeLoop(*L);
  if (!Result.Success) {
    std::fprintf(stderr, "synthesis failed: %s\n", Result.Failure.str().c_str());
    return 1;
  }
  std::printf("== synthesized join ==\n%s\n",
              joinToString(Result.Final, Result.Join.Components).c_str());

  // 3. Check the Section-7 proof obligations.
  ProofReport Proof =
      checkHomomorphismProof(Result.Final, Result.Join.Components);
  std::printf("%s\n\n", Proof.str().c_str());

  // 4. Run the parallelized loop on real data.
  SeqEnv Seqs;
  std::vector<Value> Data;
  for (int I = 0; I != 100000; ++I)
    Data.push_back(Value::ofInt((I * 7919) % 10007 - 5000));
  Seqs["s"] = std::move(Data);

  TaskPool Pool(defaultThreadCount());
  StateTuple Par =
      parallelRunLoop(Result.Final, Result.Join.Components, Seqs, Pool,
                      /*Grain=*/4096);
  StateTuple Seq = runLoop(Result.Final, Seqs);
  std::printf("parallel result:   %s\n",
              stateToString(Result.Final, Par).c_str());
  std::printf("sequential result: %s\n",
              stateToString(Result.Final, Seq).c_str());
  return Par == Seq ? 0 : 1;
}
