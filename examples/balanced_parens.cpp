//===- examples/balanced_parens.cpp - Section-6 walkthrough + speedup -----===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The Section-6 balanced-parentheses example end to end, finishing with a
// timed parallel run of the *native* synthesized kernel on a large input —
// a single-benchmark slice of the Figure-8 experiment.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Parallelizer.h"
#include "runtime/ParallelReduce.h"
#include "suite/Benchmarks.h"
#include "suite/Kernels.h"

#include <chrono>
#include <cstdio>

using namespace parsynt;

namespace {

double secondsOf(std::function<void()> Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main() {
  // 1. Synthesize: the loop needs one auxiliary (the maximum of the negated
  //    prefix sums), discovered by Algorithm 1's normalize/collect steps.
  Loop L = parseBenchmark(*findBenchmark("balanced-()"));
  PipelineResult Result = parallelizeLoop(L);
  std::printf("%s\n", Result.report().c_str());
  if (!Result.Success)
    return 1;

  // 2. Run the native transcription of the synthesized program on a large
  //    string and compare against the sequential baseline.
  const NativeKernel &K = *findKernel("balanced-()");
  const size_t N = size_t(1) << 24;
  const size_t Grain = 50000; // the paper's Figure-8 grain size
  std::vector<int64_t> Input = generateInput(K.Kind, N, /*Seed=*/42);

  KState SeqState;
  double SeqTime = secondsOf(
      [&] { SeqState = K.Sequential(Input.data(), nullptr, N); });

  unsigned Cores = defaultThreadCount();
  TaskPool Pool(Cores);
  KState ParState;
  double ParTime = secondsOf([&] {
    ParState = parallelReduce<KState>(
        BlockedRange{0, N, Grain}, Pool,
        [&](size_t B, size_t E) { return K.Leaf(Input.data(), nullptr, B, E); },
        [&](const KState &A, const KState &B) { return K.Join(A, B); });
  });

  bool Match = K.Output(SeqState) == K.Output(ParState);
  std::printf("sequential: balanced=%lld in %.3fs\n",
              (long long)K.Output(SeqState), SeqTime);
  std::printf("parallel  : balanced=%lld in %.3fs on %u threads "
              "(speedup %.2fx)\n",
              (long long)K.Output(ParState), ParTime, Cores,
              SeqTime / ParTime);
  std::printf("results %s\n", Match ? "MATCH" : "MISMATCH");
  return Match ? 0 : 1;
}
