//===- examples/custom_runtime.cpp - Using the runtime directly -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The divide-and-conquer skeleton is an ordinary library: this example
// parallelizes a hand-written computation (longest run of equal adjacent
// elements — a cousin of max-block-1) without going through synthesis,
// demonstrating the leaf/join contract a downstream user writes against.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParallelReduce.h"

#include <cstdio>
#include <random>
#include <thread>
#include <vector>

using namespace parsynt;

namespace {

/// Partial result for "longest run of equal adjacent elements".
struct RunState {
  long Best = 0;      // longest run seen
  long PrefixLen = 0; // run touching the left edge
  long SuffixLen = 0; // run touching the right edge
  long Len = 0;       // chunk length
  int First = 0, Last = 0;
};

RunState leaf(const std::vector<int> &Data, size_t Begin, size_t End) {
  RunState S;
  S.Len = static_cast<long>(End - Begin);
  if (Begin == End)
    return S;
  S.First = Data[Begin];
  S.Last = Data[End - 1];
  long Current = 1;
  S.Best = 1;
  for (size_t I = Begin + 1; I != End; ++I) {
    Current = Data[I] == Data[I - 1] ? Current + 1 : 1;
    S.Best = std::max(S.Best, Current);
  }
  // Prefix/suffix runs: how far the edge runs extend.
  S.PrefixLen = 1;
  while (S.PrefixLen < S.Len &&
         Data[Begin + static_cast<size_t>(S.PrefixLen)] == S.First)
    ++S.PrefixLen;
  S.SuffixLen = 1;
  while (S.SuffixLen < S.Len &&
         Data[End - 1 - static_cast<size_t>(S.SuffixLen)] == S.Last)
    ++S.SuffixLen;
  return S;
}

RunState join(const RunState &L, const RunState &R) {
  if (L.Len == 0)
    return R;
  if (R.Len == 0)
    return L;
  RunState S;
  S.Len = L.Len + R.Len;
  S.First = L.First;
  S.Last = R.Last;
  long Bridge = L.Last == R.First ? L.SuffixLen + R.PrefixLen : 0;
  S.Best = std::max({L.Best, R.Best, Bridge});
  S.PrefixLen = (L.PrefixLen == L.Len && L.Last == R.First)
                    ? L.Len + R.PrefixLen
                    : L.PrefixLen;
  S.SuffixLen = (R.SuffixLen == R.Len && L.Last == R.First)
                    ? R.Len + L.SuffixLen
                    : R.SuffixLen;
  return S;
}

} // namespace

int main() {
  std::mt19937 Rand(7);
  std::vector<int> Data(1 << 22);
  for (int &V : Data)
    V = static_cast<int>(Rand() % 3);

  TaskPool Pool(defaultThreadCount());
  RunState Par = parallelReduce<RunState>(
      BlockedRange{0, Data.size(), 65536}, Pool,
      [&](size_t B, size_t E) { return leaf(Data, B, E); },
      [](const RunState &L, const RunState &R) { return join(L, R); });
  RunState Seq = leaf(Data, 0, Data.size());

  std::printf("longest equal run: parallel=%ld sequential=%ld (%s)\n",
              Par.Best, Seq.Best, Par.Best == Seq.Best ? "match" : "BUG");
  return Par.Best == Seq.Best ? 0 : 1;
}
