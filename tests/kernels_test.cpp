//===- tests/kernels_test.cpp - Native kernel correctness sweep -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Two properties per kernel, swept over all 22:
//   1. divide-and-conquer (leaf + join over any split tree) reproduces the
//      sequential baseline's output, on random data and adversarial splits;
//   2. the sequential baseline agrees with the interpreted benchmark loop
//      (i.e. the native code really implements the Table-1 benchmark).
//
//===----------------------------------------------------------------------===//

#include "runtime/ParallelReduce.h"
#include "suite/Benchmarks.h"
#include "suite/Kernels.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

class KernelSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelSweep, DivideAndConquerMatchesSequential) {
  const NativeKernel &K = nativeKernels()[GetParam()];
  Rng R(GetParam() * 1299709 + 11);
  for (int Round = 0; Round != 60; ++Round) {
    size_t N = static_cast<size_t>(R.intIn(0, 2000));
    std::vector<int64_t> A = generateInput(K.Kind, N, Round * 17 + 1);
    std::vector<int64_t> B =
        K.TwoSequences ? generateInput(K.Kind, N, Round * 17 + 2)
                       : std::vector<int64_t>();
    const int64_t *PB = K.TwoSequences ? B.data() : nullptr;

    KState Seq = K.Sequential(A.data(), PB, N);

    // Random split tree via sequentialReduce with random grain.
    size_t Grain = static_cast<size_t>(R.intIn(1, 200));
    KState Dc = sequentialReduce<KState>(
        BlockedRange{0, N, Grain},
        [&](size_t Begin, size_t End) {
          return K.Leaf(A.data(), PB, Begin, End);
        },
        [&](const KState &L2, const KState &R2) { return K.Join(L2, R2); });
    ASSERT_EQ(K.Output(Seq), K.Output(Dc))
        << K.Name << " N=" << N << " grain=" << Grain;
  }
}

TEST_P(KernelSweep, ParallelMatchesSequential) {
  const NativeKernel &K = nativeKernels()[GetParam()];
  TaskPool Pool(4);
  size_t N = 100000;
  std::vector<int64_t> A = generateInput(K.Kind, N, 99);
  std::vector<int64_t> B = K.TwoSequences
                               ? generateInput(K.Kind, N, 100)
                               : std::vector<int64_t>();
  const int64_t *PB = K.TwoSequences ? B.data() : nullptr;
  KState Seq = K.Sequential(A.data(), PB, N);
  KState Par = parallelReduce<KState>(
      BlockedRange{0, N, 1024}, Pool,
      [&](size_t Begin, size_t End) {
        return K.Leaf(A.data(), PB, Begin, End);
      },
      [&](const KState &L2, const KState &R2) { return K.Join(L2, R2); });
  EXPECT_EQ(K.Output(Seq), K.Output(Par)) << K.Name;
}

TEST_P(KernelSweep, SequentialMatchesInterpretedLoop) {
  const NativeKernel &K = nativeKernels()[GetParam()];
  const Benchmark *B = findBenchmark(K.Name);
  ASSERT_NE(B, nullptr) << K.Name;
  Loop L = parseBenchmark(*B);

  // The interpreted loop's output variable: by convention the benchmark's
  // result is a designated state variable; map it per benchmark.
  std::map<std::string, std::string> OutputVar = {
      {"sum", "sum"},       {"min", "m"},         {"max", "m"},
      {"average", "sum"},   {"hamming", "ham"},   {"length", "len"},
      {"2nd-min", "m2"},    {"mps", "mps"},       {"mts", "mts"},
      {"mss", "mss"},       {"mts-p", "pos"},     {"mps-p", "pos"},
      {"poly", "res"},      {"is-sorted", "sorted"}, {"atoi", "res"},
      {"dropwhile", "cnt"}, {"balanced-()", "bal"},  {"0*1*", "ok"},
      {"count-1's", "cnt"}, {"line-sight", "vis"},   {"0after1", "res"},
      {"max-block-1", "best"}};
  // average's native output is the mean, the loop's is the sum: compare
  // sums by using the state directly (native slot V0 is the sum).
  std::string Var = OutputVar.at(K.Name);

  Rng R(GetParam() * 31 + 5);
  for (int Round = 0; Round != 40; ++Round) {
    size_t N = static_cast<size_t>(R.intIn(0, 300));
    std::vector<int64_t> A = generateInput(K.Kind, N, Round + 7);
    std::vector<int64_t> Bv = K.TwoSequences
                                  ? generateInput(K.Kind, N, Round + 8)
                                  : std::vector<int64_t>();
    SeqEnv Seqs;
    std::vector<Value> Av;
    for (int64_t V : A)
      Av.push_back(Value::ofInt(V));
    Seqs["s"] = std::move(Av);
    if (K.TwoSequences) {
      std::vector<Value> BvV;
      for (int64_t V : Bv)
        BvV.push_back(Value::ofInt(V));
      Seqs["t"] = std::move(BvV);
    }
    Env Params;
    for (const ParamDecl &P : L.Params)
      Params[P.Name] = Value::ofInt(3); // poly's fixed evaluation point

    Env Final = stateToEnv(L, runLoop(L, Seqs, Params));
    Value Interp = Final.at(Var);
    int64_t Expected =
        Interp.type() == Type::Bool ? (Interp.asBool() ? 1 : 0)
                                    : Interp.asInt();

    KState Native =
        K.Sequential(A.data(), K.TwoSequences ? Bv.data() : nullptr, N);
    int64_t Got =
        K.Name == "average" ? Native.V[0] : K.Output(Native);
    ASSERT_EQ(Got, Expected) << K.Name << " N=" << N;
  }
}

std::string kernelName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = nativeKernels()[Info.param].Name;
  std::string Clean;
  for (char C : Name)
    Clean += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  return Clean;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::Range<size_t>(0, nativeKernels().size()),
                         kernelName);

TEST(Kernels, InputGeneratorsAreDeterministicAndInDomain) {
  auto A = generateInput(InputKind::Parens, 1000, 5);
  auto B = generateInput(InputKind::Parens, 1000, 5);
  EXPECT_EQ(A, B);
  for (int64_t V : A)
    EXPECT_TRUE(V == '(' || V == ')');
  for (int64_t V : generateInput(InputKind::Bits, 500, 1))
    EXPECT_TRUE(V == 0 || V == 1);
  for (int64_t V : generateInput(InputKind::Digits, 500, 1))
    EXPECT_TRUE(V >= '0' && V <= '9');
  for (int64_t V : generateInput(InputKind::Heights, 500, 1))
    EXPECT_GT(V, 0);
}

} // namespace
