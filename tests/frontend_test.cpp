//===- tests/frontend_test.cpp - Lexer/parser/converter tests -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(Lexer, BasicTokens) {
  DiagnosticEngine Diags;
  auto Tokens = lex("for (i = 0; i < |s|; i++) { x = x + 'a'; }", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Tokens.front().Kind, TokKind::KwFor);
  EXPECT_EQ(Tokens.back().Kind, TokKind::Eof);
  // Character literal decodes to its code point.
  bool FoundChar = false;
  for (const Token &T : Tokens)
    if (T.Kind == TokKind::IntLiteral && T.IntValue == 'a')
      FoundChar = true;
  EXPECT_TRUE(FoundChar);
}

TEST(Lexer, CommentsAndOperators) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a // line comment\n/* block */ <= >= == != && ||", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::vector<TokKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::Identifier, TokKind::Le, TokKind::Ge,
                       TokKind::EqEq, TokKind::NotEq, TokKind::AndAnd,
                       TokKind::OrOr, TokKind::Eof}));
}

TEST(Lexer, ReportsErrors) {
  DiagnosticEngine Diags;
  lex("a = #;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  lex("a & b", Diags2);
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(Parser, RejectsMalformedLoops) {
  DiagnosticEngine Diags;
  // Loop must start at zero.
  EXPECT_EQ(parseProgram("x = 0; for (i = 1; i < |s|; i++) { x = x + 1; }",
                         Diags),
            nullptr);
  DiagnosticEngine Diags2;
  // Condition must test the index.
  EXPECT_EQ(parseProgram("x = 0; for (i = 0; j < |s|; i++) { x = x + 1; }",
                         Diags2),
            nullptr);
  DiagnosticEngine Diags3;
  // Trailing garbage.
  EXPECT_EQ(parseProgram(
                "x = 0; for (i = 0; i < |s|; i++) { x = x + 1; } garbage",
                Diags3),
            nullptr);
}

TEST(Parser, PrecedenceAndTernary) {
  Loop L = mustParse(
      "x = 0;\n"
      "for (i = 0; i < |s|; i++) { x = s[i] > 0 ? x + s[i] * 2 : x - 1; }");
  EXPECT_EQ(exprToString(L.Equations[0].Update),
            "((s[i] > 0) ? (x + (s[i] * 2)) : (x - 1))");
}

TEST(Convert, SecondSmallestLongForm) {
  // The paper's Example 3.6: nested conditional statements convert into
  // conditional expressions over the start-of-iteration state.
  Loop L = mustParse("m = MAX_INT;\n"
                     "m2 = MAX_INT;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (m > s[i]) {\n"
                     "    if (m2 > m) { m2 = m; }\n"
                     "  } else {\n"
                     "    if (m2 > s[i]) { m2 = s[i]; }\n"
                     "  }\n"
                     "  if (m > s[i]) { m = s[i]; }\n"
                     "}");
  ASSERT_EQ(L.Equations.size(), 2u);
  // Semantics: identical to the min/max short form.
  Loop Short = mustParse("m = MAX_INT;\n"
                         "m2 = MAX_INT;\n"
                         "for (i = 0; i < |s|; i++) {\n"
                         "  m2 = min(m2, max(m, s[i]));\n"
                         "  m = min(m, s[i]);\n"
                         "}");
  Rng R(7);
  for (int Round = 0; Round != 50; ++Round) {
    SeqEnv Seqs;
    std::vector<Value> Elems;
    for (int I = 0, N = static_cast<int>(R.intIn(0, 8)); I != N; ++I)
      Elems.push_back(Value::ofInt(R.intIn(-20, 20)));
    Seqs["s"] = Elems;
    // m2 is equation 0 in the long form (first assigned); align by name.
    StateTuple A = runLoop(L, Seqs);
    StateTuple B = runLoop(Short, Seqs);
    Env EA = stateToEnv(L, A), EB = stateToEnv(Short, B);
    EXPECT_EQ(EA.at("m"), EB.at("m"));
    EXPECT_EQ(EA.at("m2"), EB.at("m2"));
  }
}

TEST(Convert, SequentialDependencyWithinIteration) {
  // ofs is updated before bal reads it; conversion must substitute the
  // updated expression (Appendix A).
  Loop L = mustParse("bal = true;\nofs = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (s[i] == '(') { ofs = ofs + 1; }\n"
                     "  else { ofs = ofs - 1; }\n"
                     "  bal = bal && (ofs >= 0);\n"
                     "}");
  const Equation *Bal = L.findEquation("bal");
  ASSERT_NE(Bal, nullptr);
  // bal's update must contain the conditional ofs-update inline.
  EXPECT_NE(exprToString(Bal->Update).find("?"), std::string::npos);

  SeqEnv Seqs;
  auto Str = [](const std::string &S) {
    std::vector<Value> Out;
    for (char C : S)
      Out.push_back(Value::ofInt(C));
    return Out;
  };
  Seqs["s"] = Str("(())");
  Env E = stateToEnv(L, runLoop(L, Seqs));
  EXPECT_TRUE(E.at("bal").asBool());
  EXPECT_EQ(E.at("ofs").asInt(), 0);
  Seqs["s"] = Str("())(");
  E = stateToEnv(L, runLoop(L, Seqs));
  EXPECT_FALSE(E.at("bal").asBool());
}

TEST(Convert, ImplicitParameters) {
  Loop L = mustParse("res = 0;\np = 1;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  res = res + s[i] * p;\n"
                     "  p = p * x;\n"
                     "}");
  ASSERT_EQ(L.Params.size(), 1u);
  EXPECT_EQ(L.Params[0].Name, "x");
}

TEST(Convert, DerivedInitConstants) {
  // A name initialized before the loop but never assigned inside acts as a
  // derived constant folded into the body.
  Loop L = mustParse("t = 5;\ncnt = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (s[i] > t) { cnt = cnt + 1; }\n"
                     "}");
  EXPECT_EQ(L.Equations.size(), 1u);
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(10), Value::ofInt(3), Value::ofInt(6)};
  EXPECT_EQ(runLoop(L, Seqs)[0].asInt(), 2);
}

TEST(Convert, ErrorsAreReported) {
  DiagnosticEngine Diags;
  // Uninitialized state variable.
  EXPECT_FALSE(
      parseLoop("for (i = 0; i < |s|; i++) { x = x + 1; }", "t", Diags)
          .has_value());
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticEngine Diags2;
  // Type error: boolean + int.
  EXPECT_FALSE(parseLoop("x = true;\n"
                         "for (i = 0; i < |s|; i++) { x = x && s[i] > 0; "
                         "x = x + 1; }",
                         "t", Diags2)
                   .has_value());
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(Convert, TwoSequences) {
  Loop L = mustParse("ham = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (s[i] != t[i]) { ham = ham + 1; }\n"
                     "}");
  EXPECT_EQ(L.Sequences.size(), 2u);
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(1), Value::ofInt(2), Value::ofInt(3)};
  Seqs["t"] = {Value::ofInt(1), Value::ofInt(0), Value::ofInt(3)};
  EXPECT_EQ(runLoop(L, Seqs)[0].asInt(), 1);
}

} // namespace
