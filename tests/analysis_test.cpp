//===- tests/analysis_test.cpp - Static analysis layer tests --------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Covers the analysis layer: the IR verifier (corrupted loops are caught,
// well-formed ones pass at every phase), the state-variable dependence
// classification, and the fragment-conformance linter's diagnostics.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Lint.h"
#include "analysis/Verifier.h"
#include "lift/Lift.h"
#include "lift/Unfold.h"
#include "suite/Benchmarks.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace parsynt;
using namespace parsynt::test;

namespace {

/// A minimal well-formed loop: sum = sum + s[i].
Loop sumLoop() {
  Loop L;
  L.Name = "sum";
  L.Sequences.push_back({"s", Type::Int});
  Equation Eq;
  Eq.Name = "sum";
  Eq.Ty = Type::Int;
  Eq.Init = intConst(0);
  Eq.Update = add(stateVar("sum"), seqAccess("s", inputVar("i")));
  L.Equations.push_back(Eq);
  return L;
}

bool reportMentions(const VerifierReport &Report, const std::string &Text) {
  return std::any_of(Report.Violations.begin(), Report.Violations.end(),
                     [&](const std::string &V) {
                       return V.find(Text) != std::string::npos;
                     });
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, WellFormedLoopPasses) {
  VerifierReport Report = verifyLoop(sumLoop(), VerifyPhase::AfterFrontend);
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(Verifier, CatchesDanglingVariable) {
  Loop L = sumLoop();
  L.Equations[0].Update = add(stateVar("sum"), stateVar("ghost"));
  VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
  ASSERT_FALSE(Report.ok());
  EXPECT_TRUE(reportMentions(Report, "ghost")) << Report.str();
}

TEST(Verifier, CatchesEquationTypeMismatch) {
  Loop L = sumLoop();
  // Update computes a bool for an int-typed equation.
  L.Equations[0].Update = boolConst(true);
  VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
  ASSERT_FALSE(Report.ok());
  EXPECT_TRUE(reportMentions(Report, "sum")) << Report.str();
}

TEST(Verifier, CatchesDeclaredTypeDisagreement) {
  // A read of `flag` as int when its equation declares bool.
  Loop L = sumLoop();
  Equation Flag;
  Flag.Name = "flag";
  Flag.Ty = Type::Bool;
  Flag.Init = boolConst(false);
  Flag.Update = stateVar("flag", Type::Bool);
  L.Equations.push_back(Flag);
  L.Equations[0].Update =
      add(stateVar("sum"), stateVar("flag", Type::Int)); // wrong type
  VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
  ASSERT_FALSE(Report.ok());
  EXPECT_TRUE(reportMentions(Report, "flag")) << Report.str();
}

TEST(Verifier, CatchesLeakedUnknown) {
  Loop L = sumLoop();
  L.Equations[0].Update =
      add(unknownVar("sum@0"), seqAccess("s", inputVar("i")));
  VerifierReport Report = verifyLoop(L, VerifyPhase::AfterLift);
  ASSERT_FALSE(Report.ok());
  EXPECT_TRUE(reportMentions(Report, "sum@0")) << Report.str();
}

TEST(Verifier, CatchesStatefulInit) {
  Loop L = sumLoop();
  L.Equations[0].Init = stateVar("sum");
  VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
  ASSERT_FALSE(Report.ok());
  EXPECT_TRUE(reportMentions(Report, "init")) << Report.str();
}

TEST(Verifier, CatchesNonIndexSubscript) {
  Loop L = sumLoop();
  L.Equations[0].Update =
      add(stateVar("sum"), seqAccess("s", add(inputVar("i"), intConst(1))));
  VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
  ASSERT_FALSE(Report.ok());
  EXPECT_TRUE(reportMentions(Report, "s")) << Report.str();
}

TEST(Verifier, ExprUnknownsGatedByPhase) {
  ExprRef E = add(unknownVar("sum@0"), intConst(1));
  EXPECT_TRUE(
      verifyExpr(E, VerifyPhase::AfterNormalize, /*AllowUnknowns=*/true).ok());
  EXPECT_FALSE(
      verifyExpr(E, VerifyPhase::AfterNormalize, /*AllowUnknowns=*/false)
          .ok());
}

TEST(Verifier, JoinChecks) {
  Loop L = sumLoop();
  std::vector<ExprRef> Good = {add(inputVar("sum_l"), inputVar("sum_r"))};
  EXPECT_TRUE(verifyJoin(L, Good).ok());

  // A join may not touch the sequences.
  std::vector<ExprRef> ReadsSeq = {
      add(inputVar("sum_l"), seqAccess("s", inputVar("i")))};
  EXPECT_FALSE(verifyJoin(L, ReadsSeq).ok());

  // One component per equation.
  EXPECT_FALSE(verifyJoin(L, {}).ok());

  // Unsplit state reads are dangling in a join.
  std::vector<ExprRef> Unsplit = {add(stateVar("sum"), inputVar("sum_r"))};
  EXPECT_FALSE(verifyJoin(L, Unsplit).ok());
}

TEST(Verifier, SuiteCleanAtEveryPhase) {
  for (const Benchmark &B : allBenchmarks()) {
    Loop L = parseBenchmark(B);
    VerifierReport Frontend = verifyLoop(L, VerifyPhase::AfterFrontend);
    EXPECT_TRUE(Frontend.ok()) << B.Name << ": " << Frontend.str();
    Loop M = materializeIndex(L);
    VerifierReport Normalized = verifyLoop(M, VerifyPhase::AfterNormalize);
    EXPECT_TRUE(Normalized.ok()) << B.Name << ": " << Normalized.str();
  }
}

TEST(Verifier, LiftedLoopClean) {
  Loop L = parseBenchmark(*findBenchmark("mts"));
  LiftResult Lift = liftLoop(L);
  VerifierReport Report = verifyLoop(Lift.Lifted, VerifyPhase::AfterLift);
  EXPECT_TRUE(Report.ok()) << Report.str();
}

//===----------------------------------------------------------------------===//
// Dependence classification
//===----------------------------------------------------------------------===//

DepClass classOf(const DependenceInfo &Info, const std::string &Name) {
  const VarDependence *V = Info.find(Name);
  EXPECT_NE(V, nullptr) << Name;
  return V ? V->Class : DepClass::PrefixDependent;
}

TEST(Dependence, SumIsIndependentFoldWithTrivialJoin) {
  DependenceInfo Info =
      analyzeDependences(parseBenchmark(*findBenchmark("sum")));
  EXPECT_EQ(classOf(Info, "sum"), DepClass::IndependentFold);
  const VarDependence *Sum = Info.find("sum");
  ASSERT_NE(Sum, nullptr);
  ASSERT_NE(Sum->TrivialJoin, nullptr);
  EXPECT_EQ(exprToString(Sum->TrivialJoin), "(sum_l + sum_r)");
}

TEST(Dependence, MinMaxFoldsAreTrivial) {
  DependenceInfo Info =
      analyzeDependences(parseBenchmark(*findBenchmark("min")));
  EXPECT_EQ(classOf(Info, "m"), DepClass::IndependentFold);
  ASSERT_NE(Info.find("m")->TrivialJoin, nullptr);
  EXPECT_EQ(exprToString(Info.find("m")->TrivialJoin), "min(m_l, m_r)");
}

TEST(Dependence, MpsIsPrefixDependentOnSum) {
  DependenceInfo Info =
      analyzeDependences(parseBenchmark(*findBenchmark("mps")));
  EXPECT_EQ(classOf(Info, "sum"), DepClass::IndependentFold);
  EXPECT_EQ(classOf(Info, "mps"), DepClass::PrefixDependent);
  const VarDependence *Mps = Info.find("mps");
  ASSERT_NE(Mps, nullptr);
  EXPECT_TRUE(Mps->Reads.count("sum"));
  EXPECT_TRUE(Mps->Closure.count("sum"));
  EXPECT_EQ(Mps->TrivialJoin, nullptr);
}

TEST(Dependence, MtsNonAssociativeSelfRecurrenceIsPrefixDependent) {
  // mts = max(mts + s[i], 0) is self-only but NOT a fold by an associative
  // operator — the value depends on where the prefix ends.
  DependenceInfo Info =
      analyzeDependences(parseBenchmark(*findBenchmark("mts")));
  EXPECT_EQ(classOf(Info, "mts"), DepClass::PrefixDependent);
  EXPECT_TRUE(Info.find("mts")->SelfRecursive);
}

TEST(Dependence, BalancedParensIsConditional) {
  DependenceInfo Info =
      analyzeDependences(parseBenchmark(*findBenchmark("balanced-()")));
  EXPECT_EQ(classOf(Info, "ofs"), DepClass::Conditional);
  EXPECT_EQ(classOf(Info, "bal"), DepClass::Conditional);
}

TEST(Dependence, PolyMultiplicativeFoldNeedsIdentityInit) {
  DependenceInfo Info =
      analyzeDependences(parseBenchmark(*findBenchmark("poly")));
  const VarDependence *P = Info.find("p");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Class, DepClass::IndependentFold);
  // p0 = 1 is the multiplicative identity, so p_l * p_r is safe to seed.
  ASSERT_NE(P->TrivialJoin, nullptr);
  EXPECT_EQ(exprToString(P->TrivialJoin), "(p_l * p_r)");
  EXPECT_EQ(classOf(Info, "res"), DepClass::PrefixDependent);
}

TEST(Dependence, AdditiveFoldWithNonzeroInitIsNotSeeded) {
  // acc = acc + s[i] with acc0 = 5: summing the init twice would be wrong,
  // so no trivial join may be offered.
  Loop L = mustParse("acc = 5;\n"
                     "for (i = 0; i < |s|; i++) { acc = acc + s[i]; }\n");
  DependenceInfo Info = analyzeDependences(L);
  EXPECT_EQ(classOf(Info, "acc"), DepClass::IndependentFold);
  EXPECT_EQ(Info.find("acc")->TrivialJoin, nullptr);
}

TEST(Dependence, SynthesisOrderPutsDependenciesFirst) {
  Loop L = parseBenchmark(*findBenchmark("mps"));
  DependenceInfo Info = analyzeDependences(L);
  std::vector<size_t> Order = Info.synthesisOrder(L);
  ASSERT_EQ(Order.size(), L.Equations.size());
  size_t SumPos = 0, MpsPos = 0;
  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    if (L.Equations[Order[Pos]].Name == "sum")
      SumPos = Pos;
    if (L.Equations[Order[Pos]].Name == "mps")
      MpsPos = Pos;
  }
  EXPECT_LT(SumPos, MpsPos);
}

TEST(Dependence, SccTopologicalOrder) {
  Loop L = parseBenchmark(*findBenchmark("mss"));
  DependenceInfo Info = analyzeDependences(L);
  // Every variable's SCC id must be >= those of the SCCs it reads from.
  for (const VarDependence &V : Info.Vars)
    for (const std::string &R : V.Reads)
      EXPECT_GE(V.SccId, Info.find(R)->SccId) << V.Name << " reads " << R;
}

//===----------------------------------------------------------------------===//
// Linter diagnostics
//===----------------------------------------------------------------------===//

struct LintOutcome {
  bool Parsed = false;
  std::vector<Diagnostic> Diags;

  /// True if some diagnostic contains \p Text at the given position
  /// (0 = any).
  bool has(const std::string &Text, unsigned Line = 0,
           unsigned Column = 0) const {
    return std::any_of(Diags.begin(), Diags.end(), [&](const Diagnostic &D) {
      return D.Message.find(Text) != std::string::npos &&
             (Line == 0 || D.Line == Line) &&
             (Column == 0 || D.Column == Column);
    });
  }
};

LintOutcome lint(const std::string &Source) {
  DiagnosticEngine Diags;
  LintOutcome Out;
  Out.Parsed = parseLoop(Source, "lint-test", Diags).has_value();
  Out.Diags = Diags.diagnostics();
  return Out;
}

TEST(Lint, RejectsSequenceWrite) {
  LintOutcome Out = lint("sum = 0;\n"
                         "for (i = 0; i < |s|; i++) {\n"
                         "  s[i] = sum;\n"
                         "}\n");
  EXPECT_FALSE(Out.Parsed);
  EXPECT_TRUE(Out.has("sequence 's' is written", 3, 3));
}

TEST(Lint, RejectsNonIndexSubscript) {
  LintOutcome Out = lint("sum = 0;\n"
                         "for (i = 0; i < |s|; i++) {\n"
                         "  sum = sum + s[i + 1];\n"
                         "}\n");
  EXPECT_FALSE(Out.Parsed);
  EXPECT_TRUE(Out.has("subscripted", 3));
}

TEST(Lint, RejectsUninitializedState) {
  LintOutcome Out = lint("for (i = 0; i < |s|; i++) {\n"
                         "  acc = acc + s[i];\n"
                         "}\n");
  EXPECT_FALSE(Out.Parsed);
  EXPECT_TRUE(Out.has("'acc' is not initialized", 2, 3));
}

TEST(Lint, RejectsIndexAssignment) {
  LintOutcome Out = lint("sum = 0;\n"
                         "for (i = 0; i < |s|; i++) {\n"
                         "  i = i + 2;\n"
                         "  sum = sum + s[i];\n"
                         "}\n");
  EXPECT_FALSE(Out.Parsed);
  EXPECT_TRUE(Out.has("loop index 'i' may not be assigned", 3, 3));
}

TEST(Lint, RejectsParameterAssignment) {
  LintOutcome Out = lint("param x;\n"
                         "acc = 0;\n"
                         "for (i = 0; i < |s|; i++) {\n"
                         "  x = x + 1;\n"
                         "  acc = acc + s[i] * x;\n"
                         "}\n");
  EXPECT_FALSE(Out.Parsed);
  EXPECT_TRUE(Out.has("parameter 'x' is read-only", 4, 3));
}

TEST(Lint, WarnsOnPositionDependence) {
  // Reading the index outside a subscript is legal but forces index
  // materialization; the linter explains this with a warning while the
  // program still parses.
  LintOutcome Out = lint("cnt = 0;\n"
                         "for (i = 0; i < |s|; i++) {\n"
                         "  if (cnt == i && s[i] > 0) { cnt = cnt + 1; }\n"
                         "}\n");
  EXPECT_TRUE(Out.Parsed);
  EXPECT_TRUE(Out.has("position/bound"));
}

TEST(Lint, CleanProgramHasNoDiagnostics) {
  LintOutcome Out = lint("sum = 0;\n"
                         "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }\n");
  EXPECT_TRUE(Out.Parsed);
  EXPECT_TRUE(Out.Diags.empty());
}

} // namespace
