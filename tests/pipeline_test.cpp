//===- tests/pipeline_test.cpp - Full-pipeline benchmark sweep ------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The integration test of record: every Table-1 benchmark runs through the
// complete pipeline (join synthesis -> lifting -> join synthesis ->
// redundancy removal), the outcome is checked against the paper's
// qualitative claims, and every synthesized join is re-validated on fresh
// random inputs far beyond the synthesis bound.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Parallelizer.h"
#include "suite/Benchmarks.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

class PipelineSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineSweep, MatchesPaperExpectations) {
  const Benchmark &B = allBenchmarks()[GetParam()];
  Loop L = parseBenchmark(B);
  PipelineResult Result = parallelizeLoop(L);

  if (!B.ExpectFullSuccess) {
    // max-block-1: the paper's tool finds 1 of 2 auxiliaries and fails;
    // ours must fail the same way, having made partial progress.
    EXPECT_FALSE(Result.Success) << Result.report();
    EXPECT_TRUE(Result.AuxRequired);
    EXPECT_GE(Result.AuxDiscovered, 1u);
    return;
  }

  ASSERT_TRUE(Result.Success) << Result.report();
  EXPECT_EQ(Result.AuxRequired, B.ExpectAuxRequired) << Result.report();
  if (B.ExpectedAux >= 0) {
    EXPECT_EQ(Result.AuxCount, static_cast<unsigned>(B.ExpectedAux))
        << Result.report();
  }

  // Independent validation: the homomorphism property on fresh inputs with
  // lengths and values well beyond the synthesis oracle's bound.
  const Loop &F = Result.Final;
  Rng R(0x515 + GetParam());
  std::vector<int64_t> Pool = {-50, -7, -1, 0, 1, 2, 9, 40, 41, 48, 57, 100};
  for (unsigned Round = 0; Round != 120; ++Round) {
    SeqEnv Left, Right, Whole;
    size_t LenL = static_cast<size_t>(R.intIn(0, 16));
    size_t LenR = static_cast<size_t>(R.intIn(0, 16));
    for (const SeqDecl &S : F.Sequences) {
      std::vector<Value> Lv, Rv;
      for (size_t I = 0; I != LenL; ++I)
        Lv.push_back(Value::ofInt(Pool[R.index(Pool.size())]));
      for (size_t I = 0; I != LenR; ++I)
        Rv.push_back(Value::ofInt(Pool[R.index(Pool.size())]));
      std::vector<Value> Wv = Lv;
      Wv.insert(Wv.end(), Rv.begin(), Rv.end());
      Left[S.Name] = std::move(Lv);
      Right[S.Name] = std::move(Rv);
      Whole[S.Name] = std::move(Wv);
    }
    Env Params;
    for (const ParamDecl &P : F.Params)
      Params[P.Name] = Value::ofInt(R.intIn(-3, 3));

    StateTuple Lt = runLoop(F, Left, Params);
    StateTuple Rt = runLoop(F, Right, Params);
    StateTuple Expected = runLoop(F, Whole, Params);
    Env E = Params;
    for (size_t I = 0; I != F.Equations.size(); ++I) {
      E[F.Equations[I].Name + "_l"] = Lt[I];
      E[F.Equations[I].Name + "_r"] = Rt[I];
    }
    for (size_t I = 0; I != F.Equations.size(); ++I) {
      ASSERT_EQ(evalExpr(Result.Join.Components[I], E), Expected[I])
          << B.Name << " component " << F.Equations[I].Name << " = "
          << exprToString(Result.Join.Components[I]);
    }
  }
}

std::string sweepName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = allBenchmarks()[Info.param].Name;
  std::string Clean;
  for (char C : Name)
    Clean += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  return Clean;
}

INSTANTIATE_TEST_SUITE_P(Table1, PipelineSweep,
                         ::testing::Range<size_t>(0, allBenchmarks().size()),
                         sweepName);

TEST(Pipeline, ReportIsInformative) {
  Loop L = parseBenchmark(*findBenchmark("mts"));
  PipelineResult Result = parallelizeLoop(L);
  ASSERT_TRUE(Result.Success);
  std::string Report = Result.report();
  EXPECT_NE(Report.find("aux required: yes"), std::string::npos);
  EXPECT_NE(Report.find("join:"), std::string::npos);
}

TEST(Pipeline, NoLiftOptionStopsEarly) {
  PipelineOptions Opts;
  Opts.TryLift = false;
  Loop L = parseBenchmark(*findBenchmark("mts"));
  PipelineResult Result = parallelizeLoop(L, Opts);
  EXPECT_FALSE(Result.Success);
  EXPECT_TRUE(Result.AuxRequired);
}

} // namespace
