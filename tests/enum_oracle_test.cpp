//===- tests/enum_oracle_test.cpp - Enumerator / sketch / oracle tests ----===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "synth/Enumerator.h"
#include "synth/HomOracle.h"
#include "synth/Sketch.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

std::vector<Env> smallEnvs() {
  Rng R(77);
  return sampleEnvs({{"x", Type::Int}, {"y", Type::Int}, {"p", Type::Bool}},
                    24, R);
}

TEST(Enumerator, BuildsBySizeWithDedup) {
  Enumerator E(smallEnvs());
  E.addLeaf(inputVar("x"));
  E.addLeaf(inputVar("y"));
  E.addLeaf(intConst(0));
  E.options().MaxSize = 3;
  E.run();
  // x + 0 is observationally x: never kept as a separate class.
  for (const Candidate *C : E.candidatesUpTo(Type::Int, 3))
    EXPECT_NE(exprToString(C->E), "(x + 0)");
  // x + y exists.
  bool Found = false;
  for (const Candidate *C : E.candidatesUpTo(Type::Int, 3))
    if (exprToString(C->E) == "(x + y)")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Enumerator, FindMatchingByValueVector) {
  std::vector<Env> Envs = smallEnvs();
  Enumerator E(Envs);
  E.addLeaf(inputVar("x"));
  E.addLeaf(inputVar("y"));
  E.options().MaxSize = 5;
  E.run();
  // Target: max(x, y) values.
  std::vector<Value> Target;
  for (const Env &TestEnv : Envs)
    Target.push_back(evalExpr(maxE(inputVar("x"), inputVar("y")), TestEnv));
  const Candidate *C = E.findMatching(Type::Int, Target);
  ASSERT_NE(C, nullptr);
  expectEquivalent(C->E, maxE(inputVar("x"), inputVar("y")));
}

TEST(Enumerator, IncrementalGrowth) {
  Enumerator E(smallEnvs());
  E.addLeaf(inputVar("x"));
  E.addLeaf(inputVar("y"));
  E.options().MaxSize = 3;
  E.run();
  size_t After3 = E.totalCandidates();
  E.options().MaxSize = 5;
  E.run();
  EXPECT_GT(E.totalCandidates(), After3);
}

TEST(Enumerator, RespectsCaps) {
  EnumeratorOptions Opts;
  Opts.MaxSize = 7;
  Opts.MaxPerType = 50;
  Enumerator E(smallEnvs(), Opts);
  E.addLeaf(inputVar("x"));
  E.addLeaf(inputVar("y"));
  E.addLeaf(intConst(1));
  E.run();
  EXPECT_LE(E.candidates(Type::Int).size(), 50u);
}

TEST(Sketch, CompilationFollowsC) {
  // C(min(m2, max(m, s[i]))) == min(??LR, max(??LR, ??R)) — Example 4.2.
  Loop L = mustParse("m = MAX_INT;\nm2 = MAX_INT;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  m2 = min(m2, max(m, s[i]));\n"
                     "  m = min(m, s[i]);\n"
                     "}");
  Sketch S2 = compileSketch(L.Equations[0]); // m2
  EXPECT_EQ(sketchToString(S2), "min(??LR, max(??LR, ??R))");
  ASSERT_EQ(S2.Holes.size(), 3u);
  EXPECT_FALSE(S2.Holes[0].RightOnly);
  EXPECT_FALSE(S2.Holes[1].RightOnly);
  EXPECT_TRUE(S2.Holes[2].RightOnly);

  Sketch S1 = compileSketch(L.Equations[1]); // m
  EXPECT_EQ(sketchToString(S1), "min(??LR, ??R)");
}

TEST(Sketch, ConstantsBecomeRightHoles) {
  Loop L = mustParse("mts = 0;\n"
                     "for (i = 0; i < |s|; i++) { mts = max(mts + s[i], 0); }");
  Sketch S = compileSketch(L.Equations[0]);
  EXPECT_EQ(sketchToString(S), "max((??LR + ??R), ??R)");
}

TEST(Sketch, HolesAreTyped) {
  Loop L = mustParse("bal = true;\nofs = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  ofs = ofs + 1;\n"
                     "  bal = bal && (ofs >= 0);\n"
                     "}");
  Sketch S = compileSketch(*L.findEquation("bal"));
  // First hole replaces the boolean state read; it must be typed bool.
  ASSERT_FALSE(S.Holes.empty());
  EXPECT_EQ(S.Holes[0].Ty, Type::Bool);
}

TEST(Oracle, SpecMatchesDefinition) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  HomOracle Oracle(L);
  ASSERT_FALSE(Oracle.tests().empty());
  for (const JoinExample &T : Oracle.tests()) {
    // Expected really is fE(x • y).
    SeqEnv Whole = T.LeftSeqs;
    for (const auto &[Name, Values] : T.RightSeqs) {
      auto &Out = Whole[Name];
      Out.insert(Out.end(), Values.begin(), Values.end());
    }
    EXPECT_EQ(runLoop(L, Whole, T.Params), T.Expected);
  }
}

TEST(Oracle, AcceptsCorrectRejectsWrong) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  HomOracle Oracle(L);
  std::vector<ExprRef> Good = {add(inputVar("sum_l"), inputVar("sum_r"))};
  EXPECT_FALSE(Oracle.findCounterexample(Good, 300).has_value());
  std::vector<ExprRef> Bad = {maxE(inputVar("sum_l"), inputVar("sum_r"))};
  EXPECT_TRUE(Oracle.findCounterexample(Bad, 300).has_value());

  EXPECT_FALSE(Oracle.firstFailure(Good[0], 0).has_value());
  EXPECT_TRUE(Oracle.firstFailure(Bad[0], 0).has_value());
}

TEST(Oracle, ElementPoolContainsLoopConstants) {
  Loop L = mustParse("bal = true;\nofs = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (s[i] == '(') { ofs = ofs + 1; }\n"
                     "  else { ofs = ofs - 1; }\n"
                     "  bal = bal && (ofs >= 0);\n"
                     "}");
  HomOracle Oracle(L);
  const auto &Pool = Oracle.elementPool();
  EXPECT_NE(std::find(Pool.begin(), Pool.end(), '('), Pool.end());
}

} // namespace
