//===- tests/synth_test.cpp - Join synthesis tests ------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "support/Random.h"
#include "synth/JoinSynth.h"

#include <gtest/gtest.h>

using namespace parsynt;

namespace {

Loop mustParse(const std::string &Source, const std::string &Name) {
  DiagnosticEngine Diags;
  auto L = parseLoop(Source, Name, Diags);
  EXPECT_TRUE(L.has_value()) << Diags.str();
  return *L;
}

/// Checks a synthesized join against the homomorphism property on fresh
/// random inputs well beyond the synthesis bound.
void expectJoinCorrect(const Loop &L, const JoinResult &Join,
                       unsigned Rounds = 200, unsigned MaxLen = 12) {
  ASSERT_TRUE(Join.Success) << Join.Failure;
  Rng R(0xABCD);
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    SeqEnv Left, Right, Whole;
    size_t LenL = static_cast<size_t>(R.intIn(0, MaxLen));
    size_t LenR = static_cast<size_t>(R.intIn(0, MaxLen));
    for (const SeqDecl &S : L.Sequences) {
      std::vector<Value> Lv, Rv;
      for (size_t I = 0; I != LenL; ++I)
        Lv.push_back(Value::ofInt(R.intIn(-50, 50)));
      for (size_t I = 0; I != LenR; ++I)
        Rv.push_back(Value::ofInt(R.intIn(-50, 50)));
      std::vector<Value> Wv = Lv;
      Wv.insert(Wv.end(), Rv.begin(), Rv.end());
      Left[S.Name] = Lv;
      Right[S.Name] = Rv;
      Whole[S.Name] = Wv;
    }
    Env Params;
    for (const ParamDecl &P : L.Params)
      Params[P.Name] = Value::ofInt(R.intIn(-3, 3));
    StateTuple Lt = runLoop(L, Left, Params);
    StateTuple Rt = runLoop(L, Right, Params);
    StateTuple Expected = runLoop(L, Whole, Params);
    Env E = Params;
    for (size_t I = 0; I != L.Equations.size(); ++I) {
      E[L.Equations[I].Name + "_l"] = Lt[I];
      E[L.Equations[I].Name + "_r"] = Rt[I];
    }
    for (size_t I = 0; I != L.Equations.size(); ++I)
      ASSERT_EQ(evalExpr(Join.Components[I], E), Expected[I])
          << "component " << L.Equations[I].Name << " = "
          << exprToString(Join.Components[I]);
  }
}

TEST(JoinSynth, Sum) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }",
                     "sum");
  JoinResult Join = synthesizeJoin(L);
  expectJoinCorrect(L, Join);
}

TEST(JoinSynth, SecondSmallest) {
  Loop L = mustParse("m = MAX_INT;\n"
                     "m2 = MAX_INT;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  m2 = min(m2, max(m, s[i]));\n"
                     "  m = min(m, s[i]);\n"
                     "}",
                     "2nd-min");
  JoinResult Join = synthesizeJoin(L);
  expectJoinCorrect(L, Join);
}

TEST(JoinSynth, MtsHasNoJoin) {
  Loop L = mustParse("mts = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  mts = max(mts + s[i], 0);\n"
                     "}",
                     "mts");
  JoinResult Join = synthesizeJoin(L);
  EXPECT_FALSE(Join.Success);
}

TEST(JoinSynth, MtsLiftedByHand) {
  Loop L = mustParse("mts = 0;\n"
                     "sum = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  mts = max(mts + s[i], 0);\n"
                     "  sum = sum + s[i];\n"
                     "}",
                     "mts-lifted");
  JoinResult Join = synthesizeJoin(L);
  expectJoinCorrect(L, Join);
}

} // namespace
