//===- tests/codegen_test.cpp - Emitted C++ compiles and runs -------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The strongest possible test of the code generator: emit the parallel
// program for a benchmark, compile it with the system compiler, run it, and
// let its built-in self-check (parallel vs sequential on random data)
// decide.
//
//===----------------------------------------------------------------------===//

#include "codegen/EmitCpp.h"
#include "pipeline/Parallelizer.h"
#include "suite/Benchmarks.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace parsynt;
using namespace parsynt::test;

namespace {

PipelineResult parallelized(const char *Name) {
  Loop L = parseBenchmark(*findBenchmark(Name));
  PipelineResult R = parallelizeLoop(L);
  EXPECT_TRUE(R.Success) << R.report();
  return R;
}

TEST(EmitCpp, ContainsTheExpectedStructure) {
  PipelineResult R = parallelized("mts");
  std::string Code = emitParallelCpp(R.Final, R.Join.Components);
  EXPECT_NE(Code.find("struct State {"), std::string::npos);
  EXPECT_NE(Code.find("int64_t mts;"), std::string::npos);
  EXPECT_NE(Code.find("static State join(const State &l, const State &r)"),
            std::string::npos);
  EXPECT_NE(Code.find("static State parallel_run"), std::string::npos);
  // The synthesized join body references left/right fields.
  EXPECT_NE(Code.find("l.mts"), std::string::npos);
  EXPECT_NE(Code.find("r.mts"), std::string::npos);
}

TEST(EmitCpp, ParametersBecomeGlobals) {
  PipelineResult R = parallelized("poly");
  std::string Code = emitParallelCpp(R.Final, R.Join.Components);
  EXPECT_NE(Code.find("static int64_t x;"), std::string::npos);
  EXPECT_NE(Code.find("x = 3;"), std::string::npos);
}

/// Emits, compiles (g++), and runs the generated program; its exit status
/// is the self-check verdict. Parameterized over a representative slice of
/// the suite (one plain, one lifted-arithmetic, one lifted-boolean, one
/// index-dependent, one two-sequence).
class EmittedProgram : public ::testing::TestWithParam<const char *> {};

TEST_P(EmittedProgram, CompilesAndSelfChecks) {
  const char *Name = GetParam();
  PipelineResult R = parallelized(Name);
  EmitCppOptions Opts;
  Opts.Grain = 4096;
  Opts.SelfCheckElements = 200000;
  std::string Code = emitParallelCpp(R.Final, R.Join.Components, Opts);

  std::string Base = std::string(::testing::TempDir()) + "/parsynt_emit_";
  for (const char *C = Name; *C; ++C)
    Base += std::isalnum(static_cast<unsigned char>(*C)) ? *C : '_';
  std::string Src = Base + ".cpp", Bin = Base + ".bin";
  {
    std::ofstream Out(Src);
    Out << Code;
  }
  // The emitted program includes the shared header-only runtime, so it
  // compiles (as C++17) against the parsynt src tree.
  std::string Compile = "g++ -O1 -std=c++17 -pthread -I " PARSYNT_SRC_DIR
                        " -o " + Bin + " " + Src + " 2>&1";
  ASSERT_EQ(std::system(Compile.c_str()), 0) << "compile failed:\n" << Code;
  ASSERT_EQ(std::system((Bin + " > /dev/null").c_str()), 0)
      << "generated self-check failed for " << Name;
}

INSTANTIATE_TEST_SUITE_P(Representative, EmittedProgram,
                         ::testing::Values("sum", "2nd-min", "mts",
                                           "balanced-()", "dropwhile",
                                           "hamming", "poly"));

} // namespace
