//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#ifndef PARSYNT_TESTS_TESTUTIL_H
#define PARSYNT_TESTS_TESTUTIL_H

#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "interp/SemanticEq.h"
#include "ir/ExprOps.h"
#include "support/Random.h"

#include <gtest/gtest.h>

namespace parsynt {
namespace test {

/// Parses a loop or fails the test.
inline Loop mustParse(const std::string &Source,
                      const std::string &Name = "test") {
  DiagnosticEngine Diags;
  auto L = parseLoop(Source, Name, Diags);
  EXPECT_TRUE(L.has_value()) << Diags.str();
  return L ? *L : Loop();
}

/// Generates a random well-typed expression over the given variables.
/// Depth 0 yields leaves. Exercises every operator of the Figure-4
/// grammar.
inline ExprRef randomExpr(Rng &R, unsigned Depth, Type Ty,
                          const std::vector<std::pair<std::string, Type>>
                              &Vars) {
  if (Depth == 0 || R.chance(1, 5)) {
    // Leaf: variable of the right type, or a constant.
    std::vector<const std::pair<std::string, Type> *> Matching;
    for (const auto &V : Vars)
      if (V.second == Ty)
        Matching.push_back(&V);
    if (!Matching.empty() && R.chance(3, 4)) {
      const auto *V = Matching[R.index(Matching.size())];
      return inputVar(V->first, V->second);
    }
    if (Ty == Type::Int)
      return intConst(R.intIn(-3, 3));
    return boolConst(R.flip());
  }
  if (Ty == Type::Int) {
    switch (R.intIn(0, 7)) {
    case 0:
      return add(randomExpr(R, Depth - 1, Type::Int, Vars),
                 randomExpr(R, Depth - 1, Type::Int, Vars));
    case 1:
      return sub(randomExpr(R, Depth - 1, Type::Int, Vars),
                 randomExpr(R, Depth - 1, Type::Int, Vars));
    case 2:
      return mul(randomExpr(R, Depth - 1, Type::Int, Vars),
                 randomExpr(R, Depth - 1, Type::Int, Vars));
    case 3:
      return minE(randomExpr(R, Depth - 1, Type::Int, Vars),
                  randomExpr(R, Depth - 1, Type::Int, Vars));
    case 4:
      return maxE(randomExpr(R, Depth - 1, Type::Int, Vars),
                  randomExpr(R, Depth - 1, Type::Int, Vars));
    case 5:
      return neg(randomExpr(R, Depth - 1, Type::Int, Vars));
    case 6:
      return binary(BinaryOp::Div, randomExpr(R, Depth - 1, Type::Int, Vars),
                    randomExpr(R, Depth - 1, Type::Int, Vars));
    default:
      return ite(randomExpr(R, Depth - 1, Type::Bool, Vars),
                 randomExpr(R, Depth - 1, Type::Int, Vars),
                 randomExpr(R, Depth - 1, Type::Int, Vars));
    }
  }
  switch (R.intIn(0, 6)) {
  case 0:
    return andE(randomExpr(R, Depth - 1, Type::Bool, Vars),
                randomExpr(R, Depth - 1, Type::Bool, Vars));
  case 1:
    return orE(randomExpr(R, Depth - 1, Type::Bool, Vars),
               randomExpr(R, Depth - 1, Type::Bool, Vars));
  case 2:
    return notE(randomExpr(R, Depth - 1, Type::Bool, Vars));
  case 3:
    return lt(randomExpr(R, Depth - 1, Type::Int, Vars),
              randomExpr(R, Depth - 1, Type::Int, Vars));
  case 4:
    return ge(randomExpr(R, Depth - 1, Type::Int, Vars),
              randomExpr(R, Depth - 1, Type::Int, Vars));
  case 5:
    return eq(randomExpr(R, Depth - 1, Type::Int, Vars),
              randomExpr(R, Depth - 1, Type::Int, Vars));
  default:
    return ite(randomExpr(R, Depth - 1, Type::Bool, Vars),
               randomExpr(R, Depth - 1, Type::Bool, Vars),
               randomExpr(R, Depth - 1, Type::Bool, Vars));
  }
}

/// The standard variable menu used by the property tests.
inline std::vector<std::pair<std::string, Type>> standardVars() {
  return {{"x", Type::Int},  {"y", Type::Int},  {"z", Type::Int},
          {"p", Type::Bool}, {"q", Type::Bool}};
}

/// Asserts that two expressions agree on many sampled environments, with a
/// readable message when they do not.
inline void expectEquivalent(const ExprRef &A, const ExprRef &B,
                             uint64_t Seed = 99) {
  Rng R(Seed);
  EXPECT_TRUE(probablyEquivalent(A, B, R, 64))
      << "A: " << exprToString(A) << "\nB: " << exprToString(B);
}

} // namespace test
} // namespace parsynt

#endif // PARSYNT_TESTS_TESTUTIL_H
