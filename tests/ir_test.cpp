//===- tests/ir_test.cpp - Expression IR unit tests -----------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"
#include "ir/ExprOps.h"
#include "ir/Loop.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(Expr, ConstructionAndAccessors) {
  ExprRef C = intConst(42);
  EXPECT_EQ(C->kind(), ExprKind::IntConst);
  EXPECT_EQ(C->type(), Type::Int);
  EXPECT_EQ(cast<IntConstExpr>(C)->value(), 42);
  EXPECT_EQ(C->size(), 1u);
  EXPECT_EQ(C->depth(), 1u);

  ExprRef B = boolConst(true);
  EXPECT_TRUE(cast<BoolConstExpr>(B)->value());
  EXPECT_EQ(B->type(), Type::Bool);

  ExprRef V = stateVar("sum");
  EXPECT_EQ(cast<VarExpr>(V)->varClass(), VarClass::State);
  ExprRef I = inputVar("x");
  EXPECT_EQ(cast<VarExpr>(I)->varClass(), VarClass::Input);

  ExprRef Sum = add(V, I);
  EXPECT_EQ(Sum->size(), 3u);
  EXPECT_EQ(Sum->depth(), 2u);
  EXPECT_EQ(cast<BinaryExpr>(Sum)->op(), BinaryOp::Add);
}

TEST(Expr, RttiDispatch) {
  ExprRef E = maxE(intConst(1), inputVar("x"));
  EXPECT_TRUE(isa<BinaryExpr>(E));
  EXPECT_FALSE(isa<IteExpr>(E));
  EXPECT_EQ(dyn_cast<IteExpr>(E), nullptr);
  EXPECT_NE(dyn_cast<BinaryExpr>(E), nullptr);
}

TEST(Expr, StructuralEquality) {
  ExprRef A = add(inputVar("x"), intConst(1));
  ExprRef B = add(inputVar("x"), intConst(1));
  ExprRef C = add(inputVar("x"), intConst(2));
  EXPECT_TRUE(exprEquals(A, B));
  EXPECT_FALSE(exprEquals(A, C));
  EXPECT_EQ(A->hash(), B->hash());
}

TEST(Expr, Printing) {
  ExprRef E = maxE(add(stateVar("mts"), seqAccess("s", inputVar("i"))),
                   intConst(0));
  EXPECT_EQ(exprToString(E), "max((mts + s[i]), 0)");
  ExprRef T = ite(lt(inputVar("x"), intConst(0)), neg(inputVar("x")),
                  inputVar("x"));
  EXPECT_EQ(exprToString(T), "((x < 0) ? -(x) : x)");
}

TEST(ExprOps, Substitution) {
  ExprRef E = add(stateVar("a"), mul(stateVar("b"), intConst(2)));
  Substitution Subst;
  Subst["a"] = intConst(10);
  Subst["b"] = inputVar("x");
  ExprRef Result = substitute(E, Subst);
  EXPECT_EQ(exprToString(Result), "(10 + (x * 2))");
  // The original is untouched (immutability).
  EXPECT_EQ(exprToString(E), "(a + (b * 2))");
}

TEST(ExprOps, SubstitutionInsideSeqIndex) {
  ExprRef E = seqAccess("s", add(stateVar("k"), intConst(1)));
  Substitution Subst;
  Subst["k"] = intConst(5);
  EXPECT_EQ(exprToString(substitute(E, Subst)), "s[(5 + 1)]");
}

TEST(ExprOps, CollectVars) {
  ExprRef E = andE(lt(stateVar("a"), inputVar("x")),
                   eq(stateVar("b"), intConst(0)));
  auto States = collectVars(E, VarClass::State);
  EXPECT_EQ(States.size(), 2u);
  EXPECT_TRUE(States.count("a"));
  EXPECT_TRUE(States.count("b"));
  auto Inputs = collectVars(E, VarClass::Input);
  EXPECT_EQ(Inputs.size(), 1u);
  EXPECT_TRUE(Inputs.count("x"));
}

TEST(ExprOps, CostFunction) {
  // Definition 6.1 on the paper's mts example: the unknown mts0 at depth 3.
  ExprRef U = unknownVar("mts0");
  ExprRef E = maxE(add(maxE(add(U, inputVar("a")), intConst(0)),
                       inputVar("b")),
                   intConst(0));
  ExprCost Cost = exprCost(E, {"mts0"});
  EXPECT_EQ(Cost.MaxDepth, 4u);
  EXPECT_EQ(Cost.Occurrences, 1u);

  // Rewritten with the unknown at depth 2, cost is strictly lower.
  ExprRef Better = maxE(add(U, add(inputVar("a"), inputVar("b"))),
                        maxE(add(inputVar("a"), inputVar("b")), intConst(0)));
  EXPECT_TRUE(exprCost(Better, {"mts0"}) < Cost);
}

TEST(ExprOps, MaxVarDepthAndOccurrences) {
  ExprRef U = unknownVar("u");
  ExprRef E = add(U, mul(U, intConst(2)));
  EXPECT_EQ(countOccurrences(E, {"u"}), 2u);
  EXPECT_EQ(maxVarDepth(E, {"u"}), 2u);
  EXPECT_EQ(maxVarDepth(E, {"missing"}), 0u);
}

TEST(Loop, ValidationCatchesErrors) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  EXPECT_FALSE(L.validate().has_value());

  // Duplicate state name.
  Loop Bad = L;
  Bad.Equations.push_back(Bad.Equations[0]);
  EXPECT_TRUE(Bad.validate().has_value());

  // Init reading a sequence.
  Loop Bad2 = L;
  Bad2.Equations[0].Init = seqAccess("s", intConst(0));
  EXPECT_TRUE(Bad2.validate().has_value());
}

TEST(Loop, Accessors) {
  Loop L = mustParse("a = 0;\nb = 0;\n"
                     "for (i = 0; i < |s|; i++) { a = a + s[i]; b = b + 1; }");
  EXPECT_EQ(L.stateVarNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(L.findEquation("a"), nullptr);
  EXPECT_EQ(L.findEquation("zzz"), nullptr);
  EXPECT_EQ(L.equationIndex("b"), 1u);
  EXPECT_EQ(L.auxiliaryCount(), 0u);
  EXPECT_TRUE(L.hasSequence("s"));
  EXPECT_FALSE(L.hasSequence("t"));
}

} // namespace
