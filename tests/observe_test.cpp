//===- tests/observe_test.cpp - Tracing, metrics, and report tests --------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contracts: span nesting and parentage across
// TaskPool worker threads, data-race-free draining while workers record
// (run under TSan by tools/ci/sanitize.sh), the Chrome-JSON serialization
// (golden string), report-schema stability, metric counter atomicity, and
// the near-zero-cost-when-off guarantee (a tracing-off synthesis run
// allocates no trace buffers and publishes no spans).
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"
#include "observe/PoolMetrics.h"
#include "observe/Report.h"
#include "observe/TraceExport.h"
#include "observe/Tracer.h"
#include "pipeline/Parallelizer.h"
#include "runtime/ParallelReduce.h"
#include "suite/Benchmarks.h"
#include "support/Failure.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

using namespace parsynt;

namespace {

/// Scoped tracing: clears residue from earlier tests, enables, and always
/// disables + clears on exit so later tests see a quiet tracer.
struct TracingOn {
  TracingOn() {
    Tracer::instance().reset();
    Tracer::setEnabled(true);
  }
  ~TracingOn() {
    Tracer::setEnabled(false);
    Tracer::instance().reset();
  }
};

const TraceEvent *findByName(const std::vector<TraceEvent> &Events,
                             const std::string &Name) {
  for (const TraceEvent &E : Events)
    if (Name == E.Name)
      return &E;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// The near-zero-cost-when-off contract. First in the file so it also runs
// first under gtest's default registration order, before any test enables
// tracing — though the delta form keeps it order-independent.
//===----------------------------------------------------------------------===//

TEST(TracerOff, SynthesisAllocatesNoTraceBuffers) {
  ASSERT_FALSE(Tracer::enabled());
  size_t BuffersBefore = Tracer::instance().threadBufferCount();
  uint64_t SpansBefore = Tracer::instance().publishedSpanCount();

  const Benchmark *B = findBenchmark("sum");
  ASSERT_NE(B, nullptr);
  Loop L = parseBenchmark(*B);
  PipelineResult R = parallelizeLoop(L);
  EXPECT_TRUE(R.Success);

  // A full synthesis run passed through every instrumented span site and
  // recorded nothing: no buffer allocated, no span published.
  EXPECT_EQ(Tracer::instance().threadBufferCount(), BuffersBefore);
  EXPECT_EQ(Tracer::instance().publishedSpanCount(), SpansBefore);
}

TEST(TracerOff, InactiveSpanIgnoresAttrs) {
  ASSERT_FALSE(Tracer::enabled());
  Span S("never", trace::Synth);
  EXPECT_FALSE(S.active());
  S.attr("k", uint64_t(1));
  S.attr("s", "text");
  S.finish(); // must be a no-op, not a publish
  EXPECT_EQ(S.id(), 0u);
}

//===----------------------------------------------------------------------===//
// Span recording, nesting, and parentage.
//===----------------------------------------------------------------------===//

TEST(Tracer, NestedSpansLinkParentage) {
  TracingOn Guard;
  uint64_t OuterId = 0, InnerId = 0;
  {
    Span Outer("outer", trace::Pipeline);
    OuterId = Outer.id();
    {
      Span Inner("inner", trace::Synth);
      InnerId = Inner.id();
      Inner.attr("round", uint64_t(3));
    }
  }
  std::vector<TraceEvent> Events = Tracer::instance().drain();
  ASSERT_EQ(Events.size(), 2u);

  const TraceEvent *Outer = findByName(Events, "outer");
  const TraceEvent *Inner = findByName(Events, "inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->SpanId, OuterId);
  EXPECT_EQ(Outer->ParentId, 0u);
  EXPECT_EQ(Inner->SpanId, InnerId);
  EXPECT_EQ(Inner->ParentId, OuterId);
  EXPECT_LE(Outer->StartNs, Inner->StartNs);
  EXPECT_GE(Outer->EndNs, Inner->EndNs);
  ASSERT_EQ(Inner->Attrs.size(), 1u);
  EXPECT_EQ(Inner->Attrs[0].Key, "round");
  EXPECT_EQ(Inner->Attrs[0].Value, "3");
  EXPECT_FALSE(Inner->Attrs[0].Quoted);
}

TEST(Tracer, ParentageAcrossTaskPoolWorkers) {
  TracingOn Guard;
  TaskPool Pool(4);
  TaskGroup Group;
  constexpr int Tasks = 16;
  std::atomic<int> Ran{0};
  for (int I = 0; I != Tasks; ++I)
    Pool.spawn(Group, [&] {
      Span Task("task", trace::Runtime);
      {
        Span Child("child", trace::Runtime);
        Child.attr("i", uint64_t(1));
      }
      Ran.fetch_add(1, std::memory_order_relaxed);
    });
  Pool.wait(Group);
  EXPECT_EQ(Ran.load(), Tasks);

  std::vector<TraceEvent> Events = Tracer::instance().drain();
  std::map<uint64_t, const TraceEvent *> ById;
  for (const TraceEvent &E : Events)
    ById[E.SpanId] = &E;

  int Children = 0, Roots = 0;
  for (const TraceEvent &E : Events) {
    if (std::string(E.Name) == "task") {
      // Tasks start fresh stacks on whichever thread runs them: roots.
      EXPECT_EQ(E.ParentId, 0u);
      ++Roots;
    } else if (std::string(E.Name) == "child") {
      ++Children;
      ASSERT_NE(E.ParentId, 0u);
      auto It = ById.find(E.ParentId);
      ASSERT_NE(It, ById.end());
      const TraceEvent &Parent = *It->second;
      EXPECT_STREQ(Parent.Name, "task");
      // A child shares its parent's thread and lies inside its interval.
      EXPECT_EQ(Parent.ThreadId, E.ThreadId);
      EXPECT_LE(Parent.StartNs, E.StartNs);
      EXPECT_GE(Parent.EndNs, E.EndNs);
    }
  }
  EXPECT_EQ(Roots, Tasks);
  EXPECT_EQ(Children, Tasks);
}

TEST(Tracer, DrainWhileWorkersRecord) {
  TracingOn Guard;
  TaskPool Pool(4);
  TaskGroup Group;
  constexpr int Writers = 8, SpansPerWriter = 2000;
  for (int I = 0; I != Writers; ++I)
    Pool.spawn(Group, [&] {
      for (int J = 0; J != SpansPerWriter; ++J) {
        Span S("work", trace::Runtime);
        S.attr("j", uint64_t(J));
      }
    });

  // Drain concurrently with the recording threads: every observation must
  // be a consistent prefix (TSan checks the synchronization; the interval
  // sanity check below catches torn events).
  size_t LastSeen = 0;
  for (int D = 0; D != 50; ++D) {
    std::vector<TraceEvent> Events = Tracer::instance().drain();
    EXPECT_GE(Events.size(), LastSeen);
    LastSeen = Events.size();
    for (const TraceEvent &E : Events) {
      EXPECT_LE(E.StartNs, E.EndNs);
      EXPECT_STREQ(E.Name, "work");
    }
  }
  Pool.wait(Group);
  std::vector<TraceEvent> Final = Tracer::instance().drain();
  EXPECT_EQ(Final.size(), size_t(Writers) * SpansPerWriter);
}

TEST(Tracer, ResetDropsPublishedSpans) {
  TracingOn Guard;
  { Span S("gone", trace::Synth); }
  ASSERT_EQ(Tracer::instance().drain().size(), 1u);
  Tracer::instance().reset();
  EXPECT_TRUE(Tracer::instance().drain().empty());
  { Span S("kept", trace::Synth); }
  std::vector<TraceEvent> Events = Tracer::instance().drain();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "kept");
}

//===----------------------------------------------------------------------===//
// Chrome-JSON serialization.
//===----------------------------------------------------------------------===//

TEST(TraceExport, ChromeEventJsonGolden) {
  TraceEvent E;
  E.Name = "cegisRound";
  E.Category = "synth";
  E.StartNs = 1500;
  E.EndNs = 4750;
  E.SpanId = 42;
  E.ParentId = 7;
  E.ThreadId = 3;
  E.Attrs.push_back({"round", "2", /*Quoted=*/false});
  E.Attrs.push_back({"loop", "mts\"x", /*Quoted=*/true});

  EXPECT_EQ(chromeTraceEventJson(E),
            "{\"name\":\"cegisRound\",\"cat\":\"synth\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":3,\"ts\":1.500,\"dur\":3.250,"
            "\"args\":{\"span_id\":42,\"parent_id\":7,"
            "\"round\":2,\"loop\":\"mts\\\"x\"}}");
}

TEST(TraceExport, TinyPipelineTraceIsWellFormed) {
  TracingOn Guard;
  const Benchmark *B = findBenchmark("sum");
  ASSERT_NE(B, nullptr);
  Loop L = parseBenchmark(*B);
  PipelineResult R = parallelizeLoop(L);
  ASSERT_TRUE(R.Success);

  std::vector<TraceEvent> Events = Tracer::instance().drain();
  ASSERT_FALSE(Events.empty());

  // The acceptance-criteria nesting: parse spans are recorded by the
  // frontend (benchmarks parse through parseLoop), and the pipeline root
  // encloses analysis, per-round join synthesis, and the oracle.
  const TraceEvent *Root = findByName(Events, "parallelizeLoop");
  ASSERT_NE(Root, nullptr);
  EXPECT_STREQ(Root->Category, trace::Pipeline);
  ASSERT_NE(findByName(Events, "synthesizeJoin"), nullptr);
  ASSERT_NE(findByName(Events, "cegisRound"), nullptr);
  ASSERT_NE(findByName(Events, "buildInitialTests"), nullptr);
  ASSERT_NE(findByName(Events, "analyzeDependences"), nullptr);

  // Every non-root parent id resolves within the drained set, and the
  // synth spans sit in the subtree of the pipeline root.
  std::map<uint64_t, const TraceEvent *> ById;
  for (const TraceEvent &E : Events)
    ById[E.SpanId] = &E;
  for (const TraceEvent &E : Events) {
    if (E.ParentId != 0) {
      EXPECT_TRUE(ById.count(E.ParentId)) << E.Name;
    }
  }
  const TraceEvent *Round = findByName(Events, "cegisRound");
  uint64_t Walk = Round->ParentId;
  bool ReachedRoot = false;
  while (Walk != 0) {
    if (Walk == Root->SpanId) {
      ReachedRoot = true;
      break;
    }
    ASSERT_TRUE(ById.count(Walk));
    Walk = ById[Walk]->ParentId;
  }
  EXPECT_TRUE(ReachedRoot);

  // The written document has the Chrome-trace envelope, one line per
  // event, and the root span's name inside.
  std::string Path = testing::TempDir() + "parsynt_observe_trace.json";
  std::string Error;
  ASSERT_TRUE(writeTraceFile(Path, &Error)) << Error;
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Doc = Buf.str();
  EXPECT_EQ(Doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Doc.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_NE(Doc.find("\"name\":\"parallelizeLoop\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ph\":\"X\""), std::string::npos);
  std::remove(Path.c_str());

  // The phase report renders every category that recorded spans.
  std::string Report = phaseReport(Events);
  EXPECT_NE(Report.find("pipeline"), std::string::npos);
  EXPECT_NE(Report.find("synth"), std::string::npos);
  EXPECT_NE(Report.find("hottest spans:"), std::string::npos);
}

TEST(TraceExport, PhaseAggregationCountsEntrySpansOnly) {
  // Two nested synth spans + one oracle child: the synth wall time must be
  // the entry span's interval, not the sum of both.
  std::vector<TraceEvent> Events;
  TraceEvent Outer;
  Outer.Name = "synthesizeJoin";
  Outer.Category = "synth";
  Outer.StartNs = 0;
  Outer.EndNs = 1000;
  Outer.SpanId = 1;
  Events.push_back(Outer);
  TraceEvent Inner;
  Inner.Name = "cegisRound";
  Inner.Category = "synth";
  Inner.StartNs = 100;
  Inner.EndNs = 900;
  Inner.SpanId = 2;
  Inner.ParentId = 1;
  Events.push_back(Inner);
  TraceEvent Oracle;
  Oracle.Name = "findCounterexample";
  Oracle.Category = "oracle";
  Oracle.StartNs = 200;
  Oracle.EndNs = 500;
  Oracle.SpanId = 3;
  Oracle.ParentId = 2;
  Events.push_back(Oracle);

  std::vector<PhaseRow> Rows = aggregatePhases(Events);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Category, "synth"); // sorted by wall time, descending
  EXPECT_EQ(Rows[0].WallNanos, 1000u);
  EXPECT_EQ(Rows[0].SpanCount, 2u);
  EXPECT_EQ(Rows[1].Category, "oracle");
  EXPECT_EQ(Rows[1].WallNanos, 300u); // category boundary: an entry span
  EXPECT_EQ(Rows[1].SpanCount, 1u);
}

//===----------------------------------------------------------------------===//
// Metrics.
//===----------------------------------------------------------------------===//

TEST(Metrics, CountersAreAtomicAcrossThreads) {
  Counter C;
  Histogram H;
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 50000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        C.inc();
        H.observe(I % 7);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(H.count(), Threads * PerThread);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 6u);
}

TEST(Metrics, RegistryReferencesAreStableAndResettable) {
  MetricsRegistry R;
  Counter &A = R.counter("a.counter");
  Counter &B = R.counter("a.counter");
  EXPECT_EQ(&A, &B);
  A.add(5);
  R.gauge("a.gauge").set(-3);
  R.histogram("a.hist").observe(16);

  MetricsRegistry::Snapshot S = R.snapshot();
  EXPECT_EQ(S.counterOr0("a.counter"), 5u);
  EXPECT_EQ(S.counterOr0("missing"), 0u);
  ASSERT_EQ(S.Gauges.size(), 1u);
  EXPECT_EQ(S.Gauges[0].second, -3);
  ASSERT_EQ(S.Histograms.size(), 1u);
  EXPECT_EQ(S.Histograms[0].Count, 1u);
  EXPECT_EQ(S.Histograms[0].Sum, 16u);

  R.resetAll();
  EXPECT_EQ(R.snapshot().counterOr0("a.counter"), 0u);
  EXPECT_EQ(&R.counter("a.counter"), &A); // registration survives reset
}

TEST(Metrics, PipelineRunPublishesSynthesisCounters) {
  MetricsRegistry &M = MetricsRegistry::global();
  MetricsRegistry::Snapshot Before = M.snapshot();
  const Benchmark *B = findBenchmark("sum");
  ASSERT_NE(B, nullptr);
  PipelineResult R = parallelizeLoop(parseBenchmark(*B));
  ASSERT_TRUE(R.Success);
  MetricsRegistry::Snapshot After = M.snapshot();

  auto Deltas = counterDeltas(Before, After);
  auto deltaOf = [&](const std::string &Name) -> uint64_t {
    for (const auto &KV : Deltas)
      if (KV.first == Name)
        return KV.second;
    return 0;
  };
  EXPECT_EQ(deltaOf("pipeline.runs"), 1u);
  EXPECT_EQ(deltaOf("pipeline.successes"), 1u);
  EXPECT_GE(deltaOf("synth.calls"), 1u);
  EXPECT_GE(deltaOf("synth.cegis.rounds"), 1u);
  EXPECT_GE(deltaOf("frontend.parses"), 1u);
  EXPECT_GE(deltaOf("analysis.verify.passes"), 1u);
}

//===----------------------------------------------------------------------===//
// Pool stats through the registry (the one-code-path satellite).
//===----------------------------------------------------------------------===//

TEST(PoolMetrics, SummaryAndTableRenderFromRegistry) {
  StatsSnapshot S;
  S.Workers.resize(2);
  S.Workers[0] = {10, 12, 0, 3, 1, 0};
  S.Workers[1] = {2, 0, 4, 1, 2, 0};
  S.Total = S.Workers[0];
  S.Total += S.Workers[1];
  S.TimingEnabled = true;
  S.LeafCount = 8;
  S.LeafNanos = 4000000; // 4 ms
  S.JoinCount = 7;
  S.JoinNanos = 1500000;

  std::string Summary = poolSummary(S);
  EXPECT_NE(Summary.find("spawns=12"), std::string::npos);
  EXPECT_NE(Summary.find("steals=4"), std::string::npos);
  EXPECT_NE(Summary.find("steal-fails=4"), std::string::npos);
  EXPECT_NE(Summary.find("parks=3"), std::string::npos);
  EXPECT_NE(Summary.find("leaves=8 (4.00 ms)"), std::string::npos);
  EXPECT_NE(Summary.find("joins=7 (1.500 ms)"), std::string::npos);
  EXPECT_EQ(Summary.find("inlined"), std::string::npos); // zero: omitted

  std::string Table = poolTable(S);
  EXPECT_NE(Table.find("worker"), std::string::npos);
  EXPECT_NE(Table.find("caller"), std::string::npos);
  EXPECT_NE(Table.find("total"), std::string::npos);
  EXPECT_NE(Table.find("leaves: 8 in 4.000 ms"), std::string::npos);

  // The same snapshot absorbed into a registry yields the same numbers the
  // report serializes.
  MetricsRegistry R;
  absorbPoolStats(R, S);
  MetricsRegistry::Snapshot M = R.snapshot();
  EXPECT_EQ(M.counterOr0("pool.spawns"), 12u);
  EXPECT_EQ(M.counterOr0("pool.steals"), 4u);
  EXPECT_EQ(M.counterOr0("pool.leaf.nanos"), 4000000u);
}

//===----------------------------------------------------------------------===//
// Run-report schema.
//===----------------------------------------------------------------------===//

TEST(Report, FailureInfoToJsonCarriesKindMessageAndSource) {
  FailureInfo F(FailureKind::Timeout, "join deadline expired");
  std::string J = F.toJson();
  EXPECT_NE(J.find("\"kind\":\"timeout\""), std::string::npos);
  EXPECT_NE(J.find("\"message\":\"join deadline expired\""),
            std::string::npos);
  EXPECT_NE(J.find("\"source\":{\"file\":"), std::string::npos);
  EXPECT_NE(J.find("observe_test.cpp"), std::string::npos);
}

TEST(Report, RunReportSerializesSchemaEnvelope) {
  RunReport Report;
  Report.Tool = "table1";
  BenchmarkEntry Ok;
  Ok.Name = "sum";
  Ok.Success = true;
  Ok.JoinSeconds = 0.25;
  Ok.TotalSeconds = 0.5;
  Ok.Metrics.emplace_back("synth.cegis.rounds", 3);
  Report.Benchmarks.push_back(Ok);
  BenchmarkEntry Bad;
  Bad.Name = "max-block-1";
  Bad.Success = false;
  Bad.AuxRequired = true;
  Bad.AuxDiscovered = 1;
  Bad.SequentialFallback = true;
  Bad.Failure = FailureInfo(FailureKind::NotHomomorphic, "no join found");
  Report.Benchmarks.push_back(Bad);

  std::string J = Report.toJson();
  EXPECT_NE(J.find("\"schema\": \"parsynt-run-report\""), std::string::npos);
  EXPECT_NE(J.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"tool\": \"table1\""), std::string::npos);
  EXPECT_NE(J.find("\"outcome\": \"success\""), std::string::npos);
  EXPECT_NE(J.find("\"outcome\": \"failure\""), std::string::npos);
  EXPECT_NE(J.find("\"sequential_fallback\": true"), std::string::npos);
  EXPECT_NE(J.find("not-homomorphic"), std::string::npos);
  EXPECT_NE(J.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(J.find("\"totals\""), std::string::npos);
  EXPECT_NE(J.find("\"benchmarks\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"successes\": 1"), std::string::npos);
  // The envelope always carries the registry and fault sections.
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"faults\""), std::string::npos);
}

TEST(Report, CounterDeltasDropZeroAndMissing) {
  MetricsRegistry R;
  R.counter("x").add(2);
  R.counter("y").add(1);
  MetricsRegistry::Snapshot Before = R.snapshot();
  R.counter("x").add(3);
  R.counter("z").add(7);
  MetricsRegistry::Snapshot After = R.snapshot();
  auto Deltas = counterDeltas(Before, After);
  ASSERT_EQ(Deltas.size(), 2u);
  EXPECT_EQ(Deltas[0].first, "x");
  EXPECT_EQ(Deltas[0].second, 3u);
  EXPECT_EQ(Deltas[1].first, "z");
  EXPECT_EQ(Deltas[1].second, 7u);
}
