//===- tests/normalize_test.cpp - Simplifier/rules/normalizer tests -------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "normalize/Normalizer.h"
#include "normalize/Rules.h"
#include "normalize/Simplify.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(Simplify, FoldsAndReduces) {
  EXPECT_EQ(exprToString(simplify(add(intConst(2), intConst(3)))), "5");
  EXPECT_EQ(exprToString(simplify(add(inputVar("x"), intConst(0)))), "x");
  EXPECT_EQ(exprToString(simplify(mul(inputVar("x"), intConst(1)))), "x");
  EXPECT_EQ(exprToString(simplify(mul(inputVar("x"), intConst(0)))), "0");
  EXPECT_EQ(exprToString(simplify(sub(inputVar("x"), inputVar("x")))), "0");
  EXPECT_EQ(exprToString(simplify(andE(inputVar("p", Type::Bool),
                                       boolConst(true)))),
            "p");
  EXPECT_EQ(exprToString(simplify(orE(inputVar("p", Type::Bool),
                                      boolConst(true)))),
            "true");
  EXPECT_EQ(exprToString(simplify(notE(notE(inputVar("p", Type::Bool))))),
            "p");
  EXPECT_EQ(exprToString(simplify(neg(neg(inputVar("x"))))), "x");
  EXPECT_EQ(exprToString(simplify(
                ite(boolConst(true), inputVar("x"), inputVar("y")))),
            "x");
  EXPECT_EQ(exprToString(simplify(ite(inputVar("p", Type::Bool),
                                      inputVar("x"), inputVar("x")))),
            "x");
  EXPECT_EQ(exprToString(simplify(le(inputVar("x"), inputVar("x")))), "true");
  EXPECT_EQ(exprToString(simplify(minE(inputVar("x"), inputVar("x")))), "x");
}

/// Property: simplification preserves semantics on random expressions.
class SimplifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyProperty, PreservesSemantics) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int Round = 0; Round != 40; ++Round) {
    Type Ty = R.flip() ? Type::Int : Type::Bool;
    ExprRef E = randomExpr(R, 4, Ty, standardVars());
    expectEquivalent(E, simplify(E), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Range(0, 8));

/// Property: every Figure-6 rewrite preserves semantics at every position,
/// checked per rule on random expressions. Exercised as a parameterized
/// sweep over the rule set.
class RuleProperty : public ::testing::TestWithParam<size_t> {};

/// Hand-built shapes that make the factoring-direction rules fire; random
/// expressions rarely contain structurally shared operands.
std::vector<ExprRef> factoringSeeds() {
  ExprRef X = inputVar("x"), Y = inputVar("y"), Z = inputVar("z");
  ExprRef P = inputVar("p", Type::Bool);
  return {
      maxE(add(X, Z), add(Y, Z)),            // factor-add-minmax
      minE(sub(X, Z), sub(Y, Z)),            // factor-add-minmax (sub)
      andE(ge(X, Y), ge(X, Z)),              // compare-minmax-factor
      orE(lt(X, Y), lt(Z, Y)),               // compare-minmax-factor
      ite(P, add(X, Z), add(Y, Z)),          // ite-factor
      ite(P, neg(X), neg(Y)),                // ite-factor (unary)
      ite(P, add(X, Y), X),                  // ite-add-bare
      ite(P, X, add(Y, X)),                  // ite-add-bare (else arm)
      add(mul(X, Z), mul(Y, Z)),             // mul factor
      maxE(neg(X), neg(Y)),                  // neg factor
      andE(notE(ge(X, Y)), notE(lt(X, Z))),  // De Morgan factor
      ite(P, maxE(X, Y), minE(X, Y)),        // minmax-ite (binary side)
      ite(ge(X, Y), X, Y),                   // minmax-ite (ite side)
  };
}

TEST_P(RuleProperty, RewritesPreserveSemantics) {
  const RewriteRule &Rule = figure6Rules()[GetParam()];
  Rng R(GetParam() * 104729 + 7);
  unsigned Fired = 0;
  std::vector<ExprRef> Seeds = factoringSeeds();
  for (int Round = 0; Round != 300 && Fired < 60; ++Round) {
    Type Ty = R.flip() ? Type::Int : Type::Bool;
    ExprRef E = Round < static_cast<int>(Seeds.size())
                    ? Seeds[Round]
                    : randomExpr(R, 4, Ty, standardVars());
    std::vector<ExprRef> Out;
    Rule.Apply(E, Out);
    for (const ExprRef &Rewritten : Out) {
      ++Fired;
      Rng RE(Round * 31 + 1);
      ASSERT_TRUE(probablyEquivalent(E, Rewritten, RE, 64))
          << "rule " << Rule.Name << "\n  from " << exprToString(E)
          << "\n  to   " << exprToString(Rewritten);
    }
  }
  // Every rule must actually fire on this grammar (guards against dead or
  // mis-matching patterns).
  EXPECT_GT(Fired, 0u) << "rule " << Rule.Name << " never fired";
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleProperty,
                         ::testing::Range<size_t>(0, figure6Rules().size()));

/// Property: allRewrites results are all equivalent to the source.
class AllRewritesProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllRewritesProperty, NeighborsEquivalent) {
  Rng R(static_cast<uint64_t>(GetParam()) * 31337 + 3);
  for (int Round = 0; Round != 10; ++Round) {
    ExprRef E = randomExpr(R, 3, Type::Int, standardVars());
    for (const ExprRef &N : allRewrites(E, figure6Rules())) {
      Rng RE(Round);
      ASSERT_TRUE(probablyEquivalent(E, N, RE, 48))
          << exprToString(E) << " -> " << exprToString(N);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllRewritesProperty, ::testing::Range(0, 4));

TEST(Normalizer, MtsUnfoldingReachesOptimalCost) {
  // The Section-2 rewriting chain: mts's second unfolding normalizes to an
  // expression with the unknown at depth 2 (adjacent to the collected sum).
  ExprRef U = unknownVar("mts@0");
  ExprRef A = inputVar("s@1"), B = inputVar("s@2");
  ExprRef Tau = maxE(add(maxE(add(U, A), intConst(0)), B), intConst(0));
  std::set<std::string> Unknowns = {"mts@0"};
  EXPECT_EQ(exprCost(Tau, Unknowns).MaxDepth, 4u);

  NormalizeStats Stats;
  ExprRef Ell = normalizeExpr(Tau, Unknowns, {}, &Stats);
  EXPECT_LE(exprCost(Ell, Unknowns).MaxDepth, 2u);
  EXPECT_EQ(exprCost(Ell, Unknowns).Occurrences, 1u);
  expectEquivalent(Tau, Ell);
  EXPECT_GT(Stats.Expanded, 0u);
}

TEST(Normalizer, BalancedParensFactorsTheBound) {
  // ok0 && (ofs0 >= a) && (ofs0 >= b) should factor to ofs0 >= max(a, b)
  // (the key step of the Section-6.1 walkthrough).
  ExprRef Ofs = unknownVar("ofs@0");
  ExprRef Bal = unknownVar("bal@0", Type::Bool);
  ExprRef A = inputVar("s@1"), B = inputVar("s@2");
  ExprRef Tau = andE(andE(Bal, ge(Ofs, neg(A))), ge(Ofs, sub(neg(A), B)));
  std::set<std::string> Unknowns = {"ofs@0", "bal@0"};
  EXPECT_EQ(exprCost(Tau, Unknowns).Occurrences, 3u);
  ExprRef Ell = normalizeExpr(Tau, Unknowns);
  EXPECT_EQ(exprCost(Ell, Unknowns).Occurrences, 2u);
  expectEquivalent(Tau, Ell);
}

TEST(Normalizer, RespectsBudget) {
  NormalizeOptions Tight;
  Tight.MaxExpansions = 1;
  ExprRef U = unknownVar("u");
  ExprRef Tau = maxE(add(maxE(add(U, inputVar("a")), intConst(0)),
                         inputVar("b")),
                     intConst(0));
  NormalizeStats Stats;
  normalizeExpr(Tau, {"u"}, Tight, &Stats);
  EXPECT_LE(Stats.Expanded, 1u);
}

} // namespace
