//===- tests/runtime_test.cpp - TaskPool / parallelReduce tests -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Parallelizer.h"
#include "runtime/InterpReduce.h"
#include "runtime/ParallelReduce.h"
#include "suite/Benchmarks.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(TaskPool, RunsAllSpawnedTasks) {
  TaskPool Pool(4);
  std::atomic<int> Counter{0};
  TaskGroup Group;
  for (int I = 0; I != 1000; ++I)
    Pool.spawn(Group, [&] { Counter.fetch_add(1); });
  Pool.wait(Group);
  EXPECT_EQ(Counter.load(), 1000);
}

TEST(TaskPool, SingleThreadPoolWorks) {
  TaskPool Pool(1);
  std::atomic<int> Counter{0};
  TaskGroup Group;
  for (int I = 0; I != 100; ++I)
    Pool.spawn(Group, [&] { Counter.fetch_add(1); });
  Pool.wait(Group);
  EXPECT_EQ(Counter.load(), 100);
}

TEST(TaskPool, NestedSpawnDoesNotDeadlock) {
  TaskPool Pool(2);
  std::atomic<int> Counter{0};
  TaskGroup Outer;
  for (int I = 0; I != 16; ++I) {
    Pool.spawn(Outer, [&] {
      TaskGroup Inner;
      for (int J = 0; J != 16; ++J)
        Pool.spawn(Inner, [&] { Counter.fetch_add(1); });
      Pool.wait(Inner);
    });
  }
  Pool.wait(Outer);
  EXPECT_EQ(Counter.load(), 256);
}

TEST(ParallelReduce, MatchesSequentialSum) {
  std::vector<int64_t> Data(100001);
  std::iota(Data.begin(), Data.end(), -50000);
  TaskPool Pool(4);
  auto Leaf = [&](size_t B, size_t E) {
    return std::accumulate(Data.begin() + B, Data.begin() + E, int64_t(0));
  };
  auto Join = [](int64_t A, int64_t B) { return A + B; };
  for (size_t Grain : {1ul, 7ul, 100ul, 100000ul, 1000000ul}) {
    int64_t Par =
        parallelReduce<int64_t>({0, Data.size(), Grain}, Pool, Leaf, Join);
    EXPECT_EQ(Par, Leaf(0, Data.size())) << "grain " << Grain;
  }
}

TEST(ParallelReduce, DeterministicForNonCommutativeJoin) {
  // String-concatenation-like join: result must equal the in-order fold
  // regardless of scheduling (the join tree is fixed by the recursion).
  std::vector<int64_t> Data(5000);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<int64_t>(I % 10);
  TaskPool Pool(4);
  auto Leaf = [&](size_t B, size_t E) {
    std::string S;
    for (size_t I = B; I != E; ++I)
      S += static_cast<char>('0' + Data[I]);
    return S;
  };
  auto Join = [](const std::string &A, const std::string &B) {
    return A + B;
  };
  std::string Expected = Leaf(0, Data.size());
  for (int Round = 0; Round != 5; ++Round)
    EXPECT_EQ(parallelReduce<std::string>({0, Data.size(), 64}, Pool, Leaf,
                                          Join),
              Expected);
}

TEST(ParallelReduce, EmptyAndTinyRanges) {
  TaskPool Pool(2);
  auto Leaf = [&](size_t B, size_t E) {
    return static_cast<int64_t>(E - B);
  };
  auto Join = [](int64_t A, int64_t B) { return A + B; };
  EXPECT_EQ(parallelReduce<int64_t>({0, 0, 4}, Pool, Leaf, Join), 0);
  EXPECT_EQ(parallelReduce<int64_t>({5, 6, 4}, Pool, Leaf, Join), 1);
}

TEST(SequentialReduce, SameTreeAsParallel) {
  std::vector<int64_t> Data(999);
  std::iota(Data.begin(), Data.end(), 1);
  TaskPool Pool(3);
  auto Leaf = [&](size_t B, size_t E) {
    int64_t M = INT64_MIN;
    for (size_t I = B; I != E; ++I)
      M = std::max(M, Data[I]);
    return M;
  };
  auto Join = [](int64_t A, int64_t B) { return std::max(A, B); };
  EXPECT_EQ(sequentialReduce<int64_t>({0, Data.size(), 10}, Leaf, Join),
            parallelReduce<int64_t>({0, Data.size(), 10}, Pool, Leaf, Join));
}

TEST(InterpReduce, RunsSynthesizedJoinOnData) {
  Loop L = parseBenchmark(*findBenchmark("balanced-()"));
  PipelineResult Result = parallelizeLoop(L);
  ASSERT_TRUE(Result.Success) << Result.report();

  TaskPool Pool(4);
  Rng R(0xFEED);
  for (int Round = 0; Round != 10; ++Round) {
    size_t Len = static_cast<size_t>(R.intIn(0, 3000));
    SeqEnv Seqs;
    std::vector<Value> Elems;
    for (size_t I = 0; I != Len; ++I)
      Elems.push_back(Value::ofInt(R.flip() ? '(' : ')'));
    Seqs["s"] = std::move(Elems);
    StateTuple Par = parallelRunLoop(Result.Final, Result.Join.Components,
                                     Seqs, Pool, /*Grain=*/37);
    StateTuple Seq = runLoop(Result.Final, Seqs);
    ASSERT_EQ(Par, Seq) << "round " << Round;
  }
}

TEST(InterpReduce, EmptyInput) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  std::vector<ExprRef> Join = {add(inputVar("sum_l"), inputVar("sum_r"))};
  TaskPool Pool(2);
  SeqEnv Seqs;
  Seqs["s"] = {};
  StateTuple S = parallelRunLoop(L, Join, Seqs, Pool, 16);
  EXPECT_EQ(S[0].asInt(), 0);
}

} // namespace
