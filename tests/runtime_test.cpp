//===- tests/runtime_test.cpp - TaskPool / parallelReduce tests -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "observe/PoolMetrics.h"
#include "pipeline/Parallelizer.h"
#include "runtime/InterpReduce.h"
#include "runtime/ParallelReduce.h"
#include "suite/Benchmarks.h"
#include "support/FaultInjector.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <numeric>
#include <thread>
#include <utility>

#ifdef __linux__
#include <ctime>
#endif

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(TaskPool, RunsAllSpawnedTasks) {
  TaskPool Pool(4);
  std::atomic<int> Counter{0};
  TaskGroup Group;
  for (int I = 0; I != 1000; ++I)
    Pool.spawn(Group, [&] { Counter.fetch_add(1); });
  Pool.wait(Group);
  EXPECT_EQ(Counter.load(), 1000);
}

TEST(TaskPool, SingleThreadPoolWorks) {
  TaskPool Pool(1);
  std::atomic<int> Counter{0};
  TaskGroup Group;
  for (int I = 0; I != 100; ++I)
    Pool.spawn(Group, [&] { Counter.fetch_add(1); });
  Pool.wait(Group);
  EXPECT_EQ(Counter.load(), 100);
}

TEST(TaskPool, NestedSpawnDoesNotDeadlock) {
  TaskPool Pool(2);
  std::atomic<int> Counter{0};
  TaskGroup Outer;
  for (int I = 0; I != 16; ++I) {
    Pool.spawn(Outer, [&] {
      TaskGroup Inner;
      for (int J = 0; J != 16; ++J)
        Pool.spawn(Inner, [&] { Counter.fetch_add(1); });
      Pool.wait(Inner);
    });
  }
  Pool.wait(Outer);
  EXPECT_EQ(Counter.load(), 256);
}

// The seed pool's wait() busy-spun on yield() while the group was
// unfinished. A joining thread with no runnable work must park: its CPU
// time while a worker runs a long task should be near zero, not the full
// wall time of the task.
TEST(TaskPool, WaitParksInsteadOfSpinning) {
#ifdef __linux__
  TaskPool Pool(2);
  TaskGroup Group;
  std::atomic<bool> Started{false};
  Pool.spawn(Group, [&] {
    Started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  // Let the dedicated worker take the task so our wait() finds an empty
  // deque and nothing to steal.
  while (!Started.load())
    std::this_thread::yield();

  auto ThreadCpuNanos = [] {
    timespec Ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts);
    return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
  };
  uint64_t CpuBefore = ThreadCpuNanos();
  auto WallBefore = std::chrono::steady_clock::now();
  Pool.wait(Group);
  uint64_t CpuSpent = ThreadCpuNanos() - CpuBefore;
  auto WallSpent = std::chrono::steady_clock::now() - WallBefore;

  // The join waited most of the sleep; a spinning join burns that long in
  // CPU, a parked one only the park/unpark cost. 100ms leaves a wide
  // margin for sanitizer and scheduling noise.
  EXPECT_GT(std::chrono::duration_cast<std::chrono::milliseconds>(WallSpent)
                .count(),
            100);
  EXPECT_LT(CpuSpent, 100u * 1000 * 1000)
      << "wait() burned CPU while blocked - spin-wait regression";
#else
  GTEST_SKIP() << "thread CPU clock test is Linux-only";
#endif
}

// Fine-grain recursive reduce across a wide range of pool sizes,
// including heavy oversubscription of the host. Also the ThreadSanitizer
// workhorse: grain 1 maximizes spawn/steal/park traffic.
TEST(TaskPool, RecursiveGrainOneAcrossThreadCounts) {
  const size_t N = 300;
  for (unsigned Threads : {2u, 4u, 8u, 16u, 32u, 64u}) {
    TaskPool Pool(Threads);
    int64_t Sum = parallelReduce<int64_t>(
        BlockedRange{0, N, 1}, Pool,
        [](size_t B, size_t E) {
          int64_t S = 0;
          for (size_t I = B; I != E; ++I)
            S += static_cast<int64_t>(I);
          return S;
        },
        [](const int64_t &A, const int64_t &B) { return A + B; });
    EXPECT_EQ(Sum, static_cast<int64_t>(N * (N - 1) / 2))
        << "threads " << Threads;
  }
}

// The join tree is fixed by (range, grain), not by the schedule, so even
// a non-associative floating-point reduction must be bitwise identical
// across thread counts and equal to sequentialReduce over the same tree.
TEST(ParallelReduce, BitwiseDeterministicAcrossThreadCounts) {
  const size_t N = 10007;
  std::vector<double> Data(N);
  for (size_t I = 0; I != N; ++I)
    Data[I] = (I % 2 ? 1.0 : -1.0) / static_cast<double>(3 * I + 1);
  auto Leaf = [&](size_t B, size_t E) {
    double S = 0;
    for (size_t I = B; I != E; ++I)
      S += Data[I];
    return S;
  };
  auto Join = [](const double &A, const double &B) { return A + B; };

  const BlockedRange Range{0, N, 64};
  double Reference = sequentialReduce<double>(Range, Leaf, Join);
  for (unsigned Threads : {1u, 2u, 3u, 8u, 32u}) {
    TaskPool Pool(Threads);
    for (int Round = 0; Round != 3; ++Round) {
      double Par = parallelReduce<double>(Range, Pool, Leaf, Join);
      EXPECT_EQ(std::memcmp(&Par, &Reference, sizeof(double)), 0)
          << "threads " << Threads << " round " << Round
          << ": " << Par << " vs " << Reference;
    }
  }
}

// More concurrent waits than workers: every task in a deep spawn/wait
// recursion blocks on a child group. Designs where a joining thread can
// only sleep (without helping) or only help its own queue (without being
// woken on completion) starve here.
TEST(TaskPool, OversubscribedNestedWaits) {
  TaskPool Pool(2);
  std::function<int64_t(int)> Fib = [&](int K) -> int64_t {
    if (K < 2)
      return K;
    int64_t Right = 0;
    TaskGroup Group;
    Pool.spawn(Group, [&] { Right = Fib(K - 2); });
    int64_t Left = Fib(K - 1);
    Pool.wait(Group);
    return Left + Right;
  };
  EXPECT_EQ(Fib(16), 987);
}

// Several external (non-pool) threads drive the same pool concurrently:
// one claims the caller slot, the rest go through the injection queue.
TEST(TaskPool, MultipleExternalThreads) {
  TaskPool Pool(2);
  constexpr int NumDrivers = 4;
  const size_t N = 4096;
  std::vector<int64_t> Results(NumDrivers, -1);
  std::vector<std::thread> Drivers;
  for (int D = 0; D != NumDrivers; ++D)
    Drivers.emplace_back([&, D] {
      Results[D] = parallelReduce<int64_t>(
          BlockedRange{0, N, 16}, Pool,
          [](size_t B, size_t E) { return static_cast<int64_t>(E - B); },
          [](const int64_t &A, const int64_t &B) { return A + B; });
    });
  for (std::thread &T : Drivers)
    T.join();
  for (int D = 0; D != NumDrivers; ++D)
    EXPECT_EQ(Results[D], static_cast<int64_t>(N)) << "driver " << D;
}

TEST(TaskPool, StatsCountersAddUp) {
  TaskPool Pool(4);
  Pool.setTimingEnabled(true);
  const size_t N = 1000, Grain = 100;
  // The tree splits until size <= grain: count its leaves/joins.
  std::function<std::pair<uint64_t, uint64_t>(size_t)> Shape =
      [&](size_t Len) -> std::pair<uint64_t, uint64_t> {
    if (Len <= Grain)
      return {1, 0};
    auto L = Shape(Len / 2), R = Shape(Len - Len / 2);
    return {L.first + R.first, L.second + R.second + 1};
  };
  auto [Leaves, Joins] = Shape(N);

  int64_t Sum = parallelReduce<int64_t>(
      BlockedRange{0, N, Grain}, Pool,
      [](size_t B, size_t E) { return static_cast<int64_t>(E - B); },
      [](const int64_t &A, const int64_t &B) { return A + B; });
  EXPECT_EQ(Sum, static_cast<int64_t>(N));

  StatsSnapshot Snap = Pool.statsSnapshot();
  // Every interior node spawns exactly one task, and every spawned task is
  // executed exactly once, by somebody.
  EXPECT_EQ(Snap.Total.Spawned, Joins);
  EXPECT_EQ(Snap.Total.Executed, Snap.Total.Spawned);
  EXPECT_EQ(Snap.LeafCount, Leaves);
  EXPECT_EQ(Snap.JoinCount, Joins);
  EXPECT_FALSE(poolSummary(Snap).empty());
  EXPECT_FALSE(poolTable(Snap).empty());

  Pool.resetStats();
  StatsSnapshot Zero = Pool.statsSnapshot();
  EXPECT_EQ(Zero.Total.Spawned, 0u);
  EXPECT_EQ(Zero.LeafCount, 0u);
}

TEST(TaskPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ParallelReduce, MatchesSequentialSum) {
  std::vector<int64_t> Data(100001);
  std::iota(Data.begin(), Data.end(), -50000);
  TaskPool Pool(4);
  auto Leaf = [&](size_t B, size_t E) {
    return std::accumulate(Data.begin() + B, Data.begin() + E, int64_t(0));
  };
  auto Join = [](int64_t A, int64_t B) { return A + B; };
  for (size_t Grain : {1ul, 7ul, 100ul, 100000ul, 1000000ul}) {
    int64_t Par =
        parallelReduce<int64_t>({0, Data.size(), Grain}, Pool, Leaf, Join);
    EXPECT_EQ(Par, Leaf(0, Data.size())) << "grain " << Grain;
  }
}

TEST(ParallelReduce, DeterministicForNonCommutativeJoin) {
  // String-concatenation-like join: result must equal the in-order fold
  // regardless of scheduling (the join tree is fixed by the recursion).
  std::vector<int64_t> Data(5000);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<int64_t>(I % 10);
  TaskPool Pool(4);
  auto Leaf = [&](size_t B, size_t E) {
    std::string S;
    for (size_t I = B; I != E; ++I)
      S += static_cast<char>('0' + Data[I]);
    return S;
  };
  auto Join = [](const std::string &A, const std::string &B) {
    return A + B;
  };
  std::string Expected = Leaf(0, Data.size());
  for (int Round = 0; Round != 5; ++Round)
    EXPECT_EQ(parallelReduce<std::string>({0, Data.size(), 64}, Pool, Leaf,
                                          Join),
              Expected);
}

TEST(ParallelReduce, EmptyAndTinyRanges) {
  TaskPool Pool(2);
  auto Leaf = [&](size_t B, size_t E) {
    return static_cast<int64_t>(E - B);
  };
  auto Join = [](int64_t A, int64_t B) { return A + B; };
  EXPECT_EQ(parallelReduce<int64_t>({0, 0, 4}, Pool, Leaf, Join), 0);
  EXPECT_EQ(parallelReduce<int64_t>({5, 6, 4}, Pool, Leaf, Join), 1);
}

TEST(SequentialReduce, SameTreeAsParallel) {
  std::vector<int64_t> Data(999);
  std::iota(Data.begin(), Data.end(), 1);
  TaskPool Pool(3);
  auto Leaf = [&](size_t B, size_t E) {
    int64_t M = INT64_MIN;
    for (size_t I = B; I != E; ++I)
      M = std::max(M, Data[I]);
    return M;
  };
  auto Join = [](int64_t A, int64_t B) { return std::max(A, B); };
  EXPECT_EQ(sequentialReduce<int64_t>({0, Data.size(), 10}, Leaf, Join),
            parallelReduce<int64_t>({0, Data.size(), 10}, Pool, Leaf, Join));
}

TEST(InterpReduce, RunsSynthesizedJoinOnData) {
  Loop L = parseBenchmark(*findBenchmark("balanced-()"));
  PipelineResult Result = parallelizeLoop(L);
  ASSERT_TRUE(Result.Success) << Result.report();

  TaskPool Pool(4);
  Rng R(0xFEED);
  for (int Round = 0; Round != 10; ++Round) {
    size_t Len = static_cast<size_t>(R.intIn(0, 3000));
    SeqEnv Seqs;
    std::vector<Value> Elems;
    for (size_t I = 0; I != Len; ++I)
      Elems.push_back(Value::ofInt(R.flip() ? '(' : ')'));
    Seqs["s"] = std::move(Elems);
    StateTuple Par = parallelRunLoop(Result.Final, Result.Join.Components,
                                     Seqs, Pool, /*Grain=*/37);
    StateTuple Seq = runLoop(Result.Final, Seqs);
    ASSERT_EQ(Par, Seq) << "round " << Round;
  }
}

TEST(InterpReduce, EmptyInput) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  std::vector<ExprRef> Join = {add(inputVar("sum_l"), inputVar("sum_r"))};
  TaskPool Pool(2);
  SeqEnv Seqs;
  Seqs["s"] = {};
  StateTuple S = parallelRunLoop(L, Join, Seqs, Pool, 16);
  EXPECT_EQ(S[0].asInt(), 0);
}

TEST(InterpReduce, EmptyJoinRunsSequentially) {
  // An empty join vector is the pipeline's sequential-fallback signal: the
  // run must match the plain interpreter instead of asserting on arity.
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  TaskPool Pool(2);
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(3), Value::ofInt(-1), Value::ofInt(7)};
  StateTuple S = parallelRunLoop(L, {}, Seqs, Pool, 1);
  EXPECT_EQ(S, runLoop(L, Seqs));
}

// Fault-injected scheduler runs. Each FaultScope is declared before the
// pool so its lifetime brackets every worker thread (configure/reset must
// not race active polls), and each spec bounds its faults (a limit or a
// sparse `every`) so the schedule stays live. These are part of the TSan
// CI sweep — the injected paths must be as race-free as the clean ones.

TEST(TaskPool, FaultInjectedStealFailure) {
  FaultScope Scope("pool.steal:every=3:limit=500");
  TaskPool Pool(4);
  std::atomic<int> Counter{0};
  TaskGroup Group;
  for (int I = 0; I != 1000; ++I)
    Pool.spawn(Group, [&] { Counter.fetch_add(1); });
  Pool.wait(Group);
  EXPECT_EQ(Counter.load(), 1000);
  EXPECT_GE(Pool.statsSnapshot().Total.StealFails,
            FaultInjector::instance().fireCount("pool.steal"));
}

TEST(TaskPool, FaultInjectedAllocationFailure) {
  FaultScope Scope("pool.alloc:every=2");
  TaskPool Pool(4);
  std::atomic<int> Counter{0};
  TaskGroup Group;
  for (int I = 0; I != 200; ++I)
    Pool.spawn(Group, [&] { Counter.fetch_add(1); });
  Pool.wait(Group);
  EXPECT_EQ(Counter.load(), 200);
  // Half the spawns degraded to inline calls — and still all ran.
  StatsSnapshot Snap = Pool.statsSnapshot();
  EXPECT_EQ(Snap.Total.Inlined, 100u);
  EXPECT_EQ(Snap.Total.Spawned, 200u);
  EXPECT_EQ(Snap.Total.Executed, 100u); // the non-inlined half
}

TEST(TaskPool, FaultInjectedSpuriousWakeups) {
  FaultScope Scope("pool.wakeup:every=2");
  TaskPool Pool(4);
  // Recursive fine-grain reduce maximizes park/wake traffic under the
  // injected timed waits.
  const size_t N = 300;
  int64_t Sum = parallelReduce<int64_t>(
      BlockedRange{0, N, 1}, Pool,
      [](size_t B, size_t E) {
        int64_t S = 0;
        for (size_t I = B; I != E; ++I)
          S += static_cast<int64_t>(I);
        return S;
      },
      [](const int64_t &A, const int64_t &B) { return A + B; });
  EXPECT_EQ(Sum, static_cast<int64_t>(N * (N - 1) / 2));
}

TEST(TaskPool, FaultInjectedCombinedChaos) {
  FaultScope Scope(
      "pool.steal:every=5:limit=200,pool.wakeup:every=3,pool.alloc:every=7");
  TaskPool Pool(3);
  std::atomic<int> Counter{0};
  TaskGroup Outer;
  for (int I = 0; I != 16; ++I) {
    Pool.spawn(Outer, [&] {
      TaskGroup Inner;
      for (int J = 0; J != 16; ++J)
        Pool.spawn(Inner, [&] { Counter.fetch_add(1); });
      Pool.wait(Inner);
    });
  }
  Pool.wait(Outer);
  EXPECT_EQ(Counter.load(), 256);
}

} // namespace
