//===- tests/proof_test.cpp - Proof obligation / Dafny emitter tests ------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Parallelizer.h"
#include "proof/DafnyEmit.h"
#include "proof/ProofCheck.h"
#include "suite/Benchmarks.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

Loop sumLoop() {
  return mustParse("sum = 0;\n"
                   "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }",
                   "sum");
}

TEST(ProofCheck, AcceptsCorrectJoin) {
  Loop L = sumLoop();
  std::vector<ExprRef> Join = {add(inputVar("sum_l"), inputVar("sum_r"))};
  ProofReport Report = checkHomomorphismProof(L, Join);
  EXPECT_TRUE(Report.Verified) << Report.str();
  EXPECT_GT(Report.BaseChecks, 0u);
  EXPECT_GT(Report.StepChecks, 0u);
}

TEST(ProofCheck, RejectsWrongJoinWithWitness) {
  Loop L = sumLoop();
  std::vector<ExprRef> Join = {maxE(inputVar("sum_l"), inputVar("sum_r"))};
  ProofReport Report = checkHomomorphismProof(L, Join);
  ASSERT_FALSE(Report.Verified);
  EXPECT_EQ(Report.Failure->StateVar, "sum");
  EXPECT_FALSE(Report.Failure->Details.empty());
}

TEST(ProofCheck, RejectsTheClassicSecondMinMistake) {
  // The paper's Section-2 "novice" join: m2 = min(m2_l, m2_r) alone.
  Loop L = mustParse("m = MAX_INT;\nm2 = MAX_INT;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  m2 = min(m2, max(m, s[i]));\n"
                     "  m = min(m, s[i]);\n"
                     "}");
  std::vector<ExprRef> Wrong = {
      minE(inputVar("m2_l"), inputVar("m2_r")),
      minE(inputVar("m_l"), inputVar("m_r")),
  };
  EXPECT_FALSE(checkHomomorphismProof(L, Wrong).Verified);

  std::vector<ExprRef> Right = {
      minE(minE(inputVar("m2_l"), inputVar("m2_r")),
           maxE(inputVar("m_l"), inputVar("m_r"))),
      minE(inputVar("m_l"), inputVar("m_r")),
  };
  EXPECT_TRUE(checkHomomorphismProof(L, Right).Verified);
}

/// Property sweep: for every benchmark the pipeline parallelizes, the
/// synthesized join passes the proof obligations.
class ProofSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ProofSweep, SynthesizedJoinsVerify) {
  const Benchmark &B = allBenchmarks()[GetParam()];
  if (!B.ExpectFullSuccess)
    GTEST_SKIP() << "paper-known lifting failure";
  Loop L = parseBenchmark(B);
  PipelineResult Result = parallelizeLoop(L);
  ASSERT_TRUE(Result.Success) << Result.report();
  ProofReport Report =
      checkHomomorphismProof(Result.Final, Result.Join.Components);
  EXPECT_TRUE(Report.Verified) << B.Name << ": " << Report.str();
}

std::string proofName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = allBenchmarks()[Info.param].Name;
  std::string Clean;
  for (char C : Name)
    Clean += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  return Clean;
}

INSTANTIATE_TEST_SUITE_P(Table1, ProofSweep,
                         ::testing::Range<size_t>(0, allBenchmarks().size()),
                         proofName);

TEST(DafnyEmit, MatchesFigure7Structure) {
  Loop L = mustParse("mts = 0;\nsum = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  mts = max(mts + s[i], 0);\n"
                     "  sum = sum + s[i];\n"
                     "}",
                     "mts");
  std::vector<ExprRef> Join = {
      maxE(inputVar("mts_r"), add(inputVar("mts_l"), inputVar("sum_r"))),
      add(inputVar("sum_l"), inputVar("sum_r"))};
  std::string Dafny = emitDafnyProof(L, Join);

  // Model functions with the base/recursive split.
  EXPECT_NE(Dafny.find("function F_Mts(s: seq<int>): int"),
            std::string::npos);
  EXPECT_NE(Dafny.find("if |s| == 0 then 0"), std::string::npos);
  // Join functions.
  EXPECT_NE(Dafny.find("function Join_Mts("), std::string::npos);
  // Lemmas with the generic induction guidance.
  EXPECT_NE(Dafny.find("lemma Hom_Mts("), std::string::npos);
  EXPECT_NE(Dafny.find("ensures F_Mts(s_s + s_t)"), std::string::npos);
  EXPECT_NE(Dafny.find("assert s_s + [] == s_s;"), std::string::npos);
  // The dependency rule: mts depends on sum, so Hom_Mts recalls Hom_Sum.
  size_t MtsLemma = Dafny.find("lemma Hom_Mts(");
  size_t SumRecall = Dafny.find("Hom_Sum(s_s, s_t[..|s_t|-1]);", MtsLemma);
  EXPECT_NE(SumRecall, std::string::npos);
}

TEST(DafnyEmit, HandlesParameters) {
  Loop L = mustParse("res = 0;\np = 1;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  res = res + s[i] * p;\n  p = p * x;\n}",
                     "poly");
  std::vector<ExprRef> Join = {
      add(inputVar("res_l"), mul(inputVar("p_l"), inputVar("res_r"))),
      mul(inputVar("p_l"), inputVar("p_r"))};
  std::string Dafny = emitDafnyProof(L, Join);
  EXPECT_NE(Dafny.find(", x: int)"), std::string::npos);
}

} // namespace
