//===- tests/interp_test.cpp - Interpreter tests --------------------------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "interp/SemanticEq.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(Interp, ScalarOperators) {
  Env E;
  E["x"] = Value::ofInt(7);
  E["y"] = Value::ofInt(-3);
  EXPECT_EQ(evalExpr(add(inputVar("x"), inputVar("y")), E).asInt(), 4);
  EXPECT_EQ(evalExpr(sub(inputVar("x"), inputVar("y")), E).asInt(), 10);
  EXPECT_EQ(evalExpr(mul(inputVar("x"), inputVar("y")), E).asInt(), -21);
  EXPECT_EQ(evalExpr(minE(inputVar("x"), inputVar("y")), E).asInt(), -3);
  EXPECT_EQ(evalExpr(maxE(inputVar("x"), inputVar("y")), E).asInt(), 7);
  EXPECT_TRUE(evalExpr(gt(inputVar("x"), inputVar("y")), E).asBool());
  EXPECT_FALSE(evalExpr(eq(inputVar("x"), inputVar("y")), E).asBool());
  EXPECT_EQ(evalExpr(neg(inputVar("x")), E).asInt(), -7);
}

TEST(Interp, TotalDivision) {
  Env E;
  E["x"] = Value::ofInt(7);
  // x / 0 == 0 by the documented total semantics.
  EXPECT_EQ(evalExpr(binary(BinaryOp::Div, inputVar("x"), intConst(0)), E)
                .asInt(),
            0);
  EXPECT_EQ(evalExpr(binary(BinaryOp::Div, inputVar("x"), intConst(2)), E)
                .asInt(),
            3);
}

TEST(Interp, WrapAroundIsDefined) {
  Env E;
  E["x"] = Value::ofInt(INT64_MAX);
  // Must not crash / trip UB sanitizers; wraps in two's complement.
  EXPECT_EQ(evalExpr(add(inputVar("x"), intConst(1)), E).asInt(), INT64_MIN);
  E["x"] = Value::ofInt(INT64_MIN);
  EXPECT_EQ(evalExpr(neg(inputVar("x")), E).asInt(), INT64_MIN);
}

TEST(Interp, ShortCircuit) {
  // (false && crash) is fine because && short-circuits; the right operand
  // dividing by zero is harmless under total semantics anyway, so use an
  // unbound-variable-free check: the ite branch not taken is not evaluated
  // for sequence bounds.
  Env E;
  E["p"] = Value::ofBool(false);
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(5)};
  // ite(p, s[99], 1): the out-of-range access is never evaluated.
  ExprRef Guarded = ite(inputVar("p", Type::Bool),
                        seqAccess("s", intConst(99)), intConst(1));
  EXPECT_EQ(evalExpr(Guarded, E, Seqs).asInt(), 1);
}

TEST(Interp, RunLoopMatchesManualFold) {
  Loop L = mustParse("mts = 0;\n"
                     "for (i = 0; i < |s|; i++) { mts = max(mts + s[i], 0); }");
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(1), Value::ofInt(-2), Value::ofInt(3),
               Value::ofInt(-1), Value::ofInt(3)};
  // Paper Section 2: mts([1,-2,3,-1,3]) == 5.
  EXPECT_EQ(runLoop(L, Seqs)[0].asInt(), 5);
}

TEST(Interp, RunLoopRangeComposes) {
  Loop L = mustParse("sum = 0;\nmx = MIN_INT;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  sum = sum + s[i];\n  mx = max(mx, s[i]);\n}");
  Rng R(3);
  SeqEnv Seqs;
  std::vector<Value> Elems;
  for (int I = 0; I != 64; ++I)
    Elems.push_back(Value::ofInt(R.intIn(-50, 50)));
  Seqs["s"] = Elems;
  StateTuple Whole = runLoop(L, Seqs);
  // Running [0,k) then continuing [k,n) from the midpoint state matches.
  for (int64_t K : {0, 1, 17, 63, 64}) {
    StateTuple Mid = runLoopRange(L, initialState(L), Seqs, 0, K);
    StateTuple End = runLoopRange(L, Mid, Seqs, K, 64);
    EXPECT_EQ(End, Whole);
  }
}

TEST(Interp, StepLoopIsSimultaneous) {
  // a and b swap: simultaneous semantics must not cascade.
  Loop L;
  L.Name = "swap";
  L.Sequences.push_back({"s", Type::Int});
  Equation A{"a", Type::Int, intConst(1), stateVar("b"), false};
  Equation B{"b", Type::Int, intConst(2), stateVar("a"), false};
  L.Equations = {A, B};
  ASSERT_FALSE(L.validate().has_value());
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(0)};
  StateTuple S = stepLoop(L, initialState(L), Seqs, 0);
  EXPECT_EQ(S[0].asInt(), 2);
  EXPECT_EQ(S[1].asInt(), 1);
}

TEST(Interp, ParamsThreadThrough) {
  Loop L = mustParse("res = 0;\np = 1;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  res = res + s[i] * p;\n  p = p * x;\n}");
  SeqEnv Seqs;
  Seqs["s"] = {Value::ofInt(1), Value::ofInt(2), Value::ofInt(3)};
  Env Params;
  Params["x"] = Value::ofInt(10);
  // 1 + 2*10 + 3*100 = 321.
  EXPECT_EQ(runLoop(L, Seqs, Params)[0].asInt(), 321);
}

TEST(SemanticEq, DistinguishesAndIdentifies) {
  Rng R(5);
  ExprRef X = inputVar("x"), Y = inputVar("y");
  EXPECT_TRUE(probablyEquivalent(add(X, Y), add(Y, X), R));
  EXPECT_TRUE(probablyEquivalent(maxE(X, Y), maxE(Y, X), R));
  EXPECT_FALSE(probablyEquivalent(sub(X, Y), sub(Y, X), R));
  EXPECT_FALSE(probablyEquivalent(X, Y, R));
  // Type mismatch is never equivalent.
  EXPECT_FALSE(probablyEquivalent(X, lt(X, Y), R));
}

} // namespace
