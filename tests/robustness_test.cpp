//===- tests/robustness_test.cpp - Deadlines, faults, degradation ---------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Robustness coverage: the cooperative-cancellation token, the structured
// failure taxonomy, the deterministic fault injector, adversarial frontend
// inputs (which must produce diagnostics, never crashes), and the graceful
// sequential-fallback path — a timed-out pipeline must still hand back a
// runnable loop whose sequential execution matches the reference.
//
//===----------------------------------------------------------------------===//

#include "codegen/EmitCpp.h"
#include "pipeline/Parallelizer.h"
#include "runtime/InterpReduce.h"
#include "suite/Benchmarks.h"
#include "support/Deadline.h"
#include "support/Failure.h"
#include "support/FaultInjector.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace parsynt;
using namespace parsynt::test;

namespace {

//===----------------------------------------------------------------------===//
// Deadline
//===----------------------------------------------------------------------===//

TEST(Deadline, DefaultAndNonPositiveAreUnarmed) {
  EXPECT_FALSE(Deadline().armed());
  EXPECT_FALSE(Deadline().expired());
  EXPECT_FALSE(Deadline::never().armed());
  EXPECT_FALSE(Deadline::after(0).armed());
  EXPECT_FALSE(Deadline::after(-1).armed());
  EXPECT_EQ(Deadline().remainingSeconds(),
            std::numeric_limits<double>::infinity());
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline D = Deadline::after(1e-9);
  EXPECT_TRUE(D.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingSeconds(), 0.0);
}

TEST(Deadline, GenerousBudgetDoesNotExpire) {
  Deadline D = Deadline::after(3600);
  EXPECT_TRUE(D.armed());
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingSeconds(), 3500.0);
}

TEST(Deadline, SoonerPrefersArmedAndEarlier) {
  Deadline Unarmed;
  Deadline Long = Deadline::after(3600);
  Deadline Short = Deadline::after(1e-9);
  EXPECT_FALSE(Deadline::sooner(Unarmed, Unarmed).armed());
  EXPECT_TRUE(Deadline::sooner(Unarmed, Long).armed());
  EXPECT_TRUE(Deadline::sooner(Long, Unarmed).armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(Deadline::sooner(Long, Short).expired());
  EXPECT_TRUE(Deadline::sooner(Short, Long).expired());
}

//===----------------------------------------------------------------------===//
// FailureInfo
//===----------------------------------------------------------------------===//

TEST(FailureInfo, EmptyByDefault) {
  FailureInfo F;
  EXPECT_TRUE(F.empty());
  EXPECT_FALSE(static_cast<bool>(F));
  EXPECT_EQ(F.Kind, FailureKind::None);
}

TEST(FailureInfo, FormatsKindAndMessage) {
  FailureInfo F{FailureKind::Timeout, "budget gone"};
  EXPECT_FALSE(F.empty());
  EXPECT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F.str(), "[timeout] budget gone");
  F.clear();
  EXPECT_TRUE(F.empty());
  EXPECT_EQ(F.Kind, FailureKind::None);
}

TEST(FailureInfo, KindNamesAreStable) {
  EXPECT_STREQ(failureKindName(FailureKind::Timeout), "timeout");
  EXPECT_STREQ(failureKindName(FailureKind::BudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(failureKindName(FailureKind::NotHomomorphic),
               "not-homomorphic");
  EXPECT_STREQ(failureKindName(FailureKind::FragmentViolation),
               "fragment-violation");
  EXPECT_STREQ(failureKindName(FailureKind::InternalError), "internal-error");
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjector, UnarmedNeverFires) {
  FaultInjector::instance().reset();
  EXPECT_FALSE(FaultInjector::instance().armed());
  for (int I = 0; I != 100; ++I)
    EXPECT_FALSE(FaultInjector::fires("anything"));
}

TEST(FaultInjector, LimitCapsFires) {
  FaultScope Scope("pt:limit=3");
  int Fired = 0;
  for (int I = 0; I != 50; ++I)
    if (FaultInjector::fires("pt"))
      ++Fired;
  EXPECT_EQ(Fired, 3);
  EXPECT_EQ(FaultInjector::instance().fireCount("pt"), 3u);
  EXPECT_EQ(FaultInjector::instance().pollCount("pt"), 50u);
  // Unconfigured points stay silent while another point is armed.
  EXPECT_FALSE(FaultInjector::fires("other"));
}

TEST(FaultInjector, AfterSkipsInitialPolls) {
  FaultScope Scope("pt:after=10");
  for (int I = 0; I != 10; ++I)
    EXPECT_FALSE(FaultInjector::fires("pt")) << "poll " << I;
  EXPECT_TRUE(FaultInjector::fires("pt"));
}

TEST(FaultInjector, EverySelectsPeriodicPolls) {
  FaultScope Scope("pt:every=3");
  std::vector<bool> Pattern;
  for (int I = 0; I != 9; ++I)
    Pattern.push_back(FaultInjector::fires("pt"));
  EXPECT_EQ(Pattern, (std::vector<bool>{true, false, false, true, false,
                                        false, true, false, false}));
}

TEST(FaultInjector, ProbIsDeterministicInSeed) {
  auto Sample = [] {
    std::vector<bool> Pattern;
    for (int I = 0; I != 64; ++I)
      Pattern.push_back(FaultInjector::fires("pt"));
    return Pattern;
  };
  std::vector<bool> First, Second, OtherSeed;
  {
    FaultScope Scope("pt:prob=50:seed=7");
    First = Sample();
  }
  {
    FaultScope Scope("pt:prob=50:seed=7");
    Second = Sample();
  }
  {
    FaultScope Scope("pt:prob=50:seed=8");
    OtherSeed = Sample();
  }
  EXPECT_EQ(First, Second);
  EXPECT_NE(First, OtherSeed);
  // prob=50 should fire a nontrivial fraction, not all or nothing.
  size_t Fired = 0;
  for (bool B : First)
    Fired += B;
  EXPECT_GT(Fired, 10u);
  EXPECT_LT(Fired, 54u);
}

TEST(FaultInjector, MultiClauseSpecsAreIndependent) {
  FaultScope Scope("a:limit=1,b:every=2");
  EXPECT_TRUE(FaultInjector::fires("a"));
  EXPECT_FALSE(FaultInjector::fires("a"));
  EXPECT_TRUE(FaultInjector::fires("b"));
  EXPECT_FALSE(FaultInjector::fires("b"));
  EXPECT_TRUE(FaultInjector::fires("b"));
}

TEST(FaultInjector, MalformedSpecsAreRejected) {
  std::string Error;
  FaultInjector &I = FaultInjector::instance();
  EXPECT_FALSE(I.configure(":limit=1", &Error));
  EXPECT_NE(Error.find("empty fault point name"), std::string::npos);
  EXPECT_FALSE(I.configure("pt:limit", &Error));
  EXPECT_FALSE(I.configure("pt:limit=", &Error));
  EXPECT_FALSE(I.configure("pt:limit=abc", &Error));
  EXPECT_FALSE(I.configure("pt:limit=99999999999999999999999", &Error));
  EXPECT_NE(Error.find("overflow"), std::string::npos);
  EXPECT_FALSE(I.configure("pt:bogus=1", &Error));
  EXPECT_NE(Error.find("unknown key"), std::string::npos);
  // A failed configure leaves the injector disarmed.
  EXPECT_FALSE(I.armed());
  EXPECT_FALSE(FaultInjector::fires("pt"));
  I.reset();
}

//===----------------------------------------------------------------------===//
// Adversarial frontend inputs: diagnostics, never crashes.
//===----------------------------------------------------------------------===//

TEST(AdversarialInput, HugeIntegerLiteral) {
  DiagnosticEngine Diags;
  auto L = parseLoop("x = 0;\nfor (i = 0; i < |s|; i++) { x = x + "
                     "99999999999999999999999999; }",
                     "huge", Diags);
  EXPECT_FALSE(L.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("out of range"), std::string::npos)
      << Diags.str();
}

TEST(AdversarialInput, BoundaryIntegerLiteralStillLexes) {
  // INT64_MAX itself must keep working; only the overflow is an error.
  Loop L = mustParse("x = 0;\nfor (i = 0; i < |s|; i++) { x = x + "
                     "9223372036854775807; }");
  EXPECT_EQ(L.Equations.size(), 1u);
}

TEST(AdversarialInput, DeeplyNestedTernary) {
  std::string Body = "x = ";
  for (int I = 0; I != 1000; ++I)
    Body += "(s[i] > 0 ? ";
  Body += "x";
  for (int I = 0; I != 1000; ++I)
    Body += " : x)";
  Body += "; ";
  DiagnosticEngine Diags;
  auto L = parseLoop("x = 0;\nfor (i = 0; i < |s|; i++) { " + Body + "}",
                     "deep-ite", Diags);
  EXPECT_FALSE(L.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("nesting deeper"), std::string::npos)
      << Diags.str();
}

TEST(AdversarialInput, DeepUnaryChain) {
  std::string Chain(5000, '!');
  DiagnosticEngine Diags;
  auto L = parseLoop("p = false;\nfor (i = 0; i < |s|; i++) { p = " + Chain +
                         "p; }",
                     "deep-unary", Diags);
  EXPECT_FALSE(L.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("nesting deeper"), std::string::npos)
      << Diags.str();
}

TEST(AdversarialInput, DeeplyNestedIfStatements) {
  std::string Body;
  for (int I = 0; I != 1000; ++I)
    Body += "if (s[i] > 0) { ";
  Body += "x = x + 1; ";
  for (int I = 0; I != 1000; ++I)
    Body += "} ";
  DiagnosticEngine Diags;
  auto L = parseLoop("x = 0;\nfor (i = 0; i < |s|; i++) { " + Body + "}",
                     "deep-if", Diags);
  EXPECT_FALSE(L.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(AdversarialInput, TruncatedFile) {
  for (const char *Source :
       {"x = 0;", "x = 0;\nfor (i = 0; i < |s|; i",
        "x = 0;\nfor (i = 0; i < |s|; i++) { x = x +",
        "x = 0;\nfor (i = 0; i < |s|; i++) {"}) {
    DiagnosticEngine Diags;
    auto L = parseLoop(Source, "truncated", Diags);
    EXPECT_FALSE(L.has_value()) << Source;
    EXPECT_TRUE(Diags.hasErrors()) << Source;
  }
}

TEST(AdversarialInput, EmptyLoopBody) {
  DiagnosticEngine Diags;
  auto L = parseLoop("x = 0;\nfor (i = 0; i < |s|; i++) { }", "empty", Diags);
  EXPECT_FALSE(L.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("assigns no variables"), std::string::npos)
      << Diags.str();
}

//===----------------------------------------------------------------------===//
// Timeout paths: structured Timeout + runnable sequential fallback.
//===----------------------------------------------------------------------===//

/// Asserts that a failed pipeline result is a well-formed sequential
/// fallback: structured failure, empty join, and sequential execution that
/// matches the reference loop exactly on random data.
void expectRunnableFallback(const Loop &Reference,
                            const PipelineResult &Result) {
  EXPECT_FALSE(Result.Success);
  EXPECT_TRUE(Result.SequentialFallback) << Result.report();
  EXPECT_FALSE(Result.Failure.empty());
  EXPECT_TRUE(Result.Join.Components.empty());

  TaskPool Pool(2);
  Rng R(0xfa11);
  for (unsigned Round = 0; Round != 10; ++Round) {
    size_t Len = static_cast<size_t>(R.intIn(0, 200));
    SeqEnv Seqs;
    for (const SeqDecl &S : Result.Final.Sequences) {
      std::vector<Value> Elems;
      for (size_t I = 0; I != Len; ++I)
        Elems.push_back(Value::ofInt(R.intIn(-60, 60)));
      Seqs[S.Name] = std::move(Elems);
    }
    Env Params;
    for (const ParamDecl &P : Result.Final.Params)
      Params[P.Name] = Value::ofInt(R.intIn(-3, 3));
    StateTuple Fallback = parallelRunLoop(Result.Final, Result.Join.Components,
                                          Seqs, Pool, /*Grain=*/16, Params);
    StateTuple Expected = runLoop(Result.Final, Seqs, Params);
    EXPECT_EQ(Fallback, Expected) << "round " << Round;
    // The fallback loop must agree with the *reference* loop on the
    // reference's own state variables (the fallback may carry extra
    // auxiliaries or a materialized index in front-verified form).
    if (Result.Final.Equations.size() == Reference.Equations.size() &&
        !Result.IndexMaterialized) {
      StateTuple Ref = runLoop(Reference, Seqs, Params);
      EXPECT_EQ(Fallback, Ref) << "round " << Round;
    }
  }
}

TEST(TimeoutPath, WholeLoopBudgetOnMts) {
  Loop L = parseBenchmark(*findBenchmark("mts"));
  PipelineOptions Options;
  Options.TimeoutSeconds = 1e-6;
  PipelineResult Result = parallelizeLoop(L, Options);
  EXPECT_EQ(Result.Failure.Kind, FailureKind::Timeout) << Result.report();
  expectRunnableFallback(L, Result);
}

TEST(TimeoutPath, JoinBudgetOnMaxBlock1) {
  Loop L = parseBenchmark(*findBenchmark("max-block-1"));
  PipelineOptions Options;
  Options.JoinTimeoutSeconds = 1e-6;
  PipelineResult Result = parallelizeLoop(L, Options);
  EXPECT_EQ(Result.Failure.Kind, FailureKind::Timeout) << Result.report();
  expectRunnableFallback(L, Result);
}

TEST(TimeoutPath, LiftBudgetOnMaxBlock1) {
  // A generous join budget with a tiny lift budget: phase 1 legitimately
  // fails (max-block-1 needs auxiliaries), then every lift attempt times
  // out. The pipeline must still degrade to a runnable fallback.
  Loop L = parseBenchmark(*findBenchmark("max-block-1"));
  PipelineOptions Options;
  Options.LiftTimeoutSeconds = 1e-6;
  PipelineResult Result = parallelizeLoop(L, Options);
  EXPECT_FALSE(Result.Success);
  EXPECT_TRUE(Result.SequentialFallback) << Result.report();
  EXPECT_FALSE(Result.Failure.empty());
}

TEST(TimeoutPath, DefaultBudgetsAreUnbounded) {
  // The zero defaults must behave exactly like the seed: mts succeeds.
  Loop L = parseBenchmark(*findBenchmark("mts"));
  PipelineResult Result = parallelizeLoop(L);
  EXPECT_TRUE(Result.Success) << Result.report();
  EXPECT_TRUE(Result.Failure.empty());
  EXPECT_FALSE(Result.SequentialFallback);
}

//===----------------------------------------------------------------------===//
// Synthesizer fault points.
//===----------------------------------------------------------------------===//

TEST(SynthFaults, RejectionsForceRetriesButNotFailure) {
  // Force the synthesizer to reject its first three otherwise-accepted
  // join candidates; the search must recover and still parallelize sum.
  Loop L = parseBenchmark(*findBenchmark("sum"));
  FaultScope Scope("synth.reject:limit=3");
  PipelineResult Result = parallelizeLoop(L);
  EXPECT_TRUE(Result.Success) << Result.report();
  EXPECT_EQ(FaultInjector::instance().fireCount("synth.reject"), 3u);
}

TEST(SynthFaults, InducedDeadlineExpiryYieldsTimeout) {
  // No real budgets anywhere: the deadline.expire fault point alone must
  // drive the pipeline down the structured-timeout path.
  Loop L = parseBenchmark(*findBenchmark("mts"));
  FaultScope Scope("deadline.expire:after=40");
  PipelineResult Result = parallelizeLoop(L);
  EXPECT_FALSE(Result.Success);
  EXPECT_EQ(Result.Failure.Kind, FailureKind::Timeout) << Result.report();
  EXPECT_TRUE(Result.SequentialFallback);
}

//===----------------------------------------------------------------------===//
// Sequential-fallback code emission.
//===----------------------------------------------------------------------===//

TEST(FallbackEmission, EmptyJoinEmitsSequentialProgram) {
  Loop L = parseBenchmark(*findBenchmark("mts"));
  std::string Code = emitParallelCpp(L, {});
  EXPECT_NE(Code.find("SEQUENTIAL FALLBACK"), std::string::npos);
  EXPECT_NE(Code.find("sequential fallback ok"), std::string::npos);
  // No scheduler, no join: the program must not reference the pool.
  EXPECT_EQ(Code.find("parallelReduce"), std::string::npos);
  EXPECT_EQ(Code.find("TaskPool"), std::string::npos);
  EXPECT_EQ(Code.find("static State join("), std::string::npos);
  // The loop body itself is still emitted.
  EXPECT_NE(Code.find("static State leaf("), std::string::npos);
  EXPECT_NE(Code.find("static inline void step("), std::string::npos);
}

TEST(FallbackEmission, NonEmptyJoinStillEmitsParallelProgram) {
  Loop L = parseBenchmark(*findBenchmark("sum"));
  PipelineResult Result = parallelizeLoop(L);
  ASSERT_TRUE(Result.Success);
  std::string Code = emitParallelCpp(Result.Final, Result.Join.Components);
  EXPECT_EQ(Code.find("SEQUENTIAL FALLBACK"), std::string::npos);
  EXPECT_NE(Code.find("parallelReduce"), std::string::npos);
  EXPECT_NE(Code.find("static State join("), std::string::npos);
}

} // namespace
