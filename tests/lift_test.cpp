//===- tests/lift_test.cpp - Unfolding / normal forms / lifting tests -----===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "lift/Lift.h"
#include "lift/NormalForms.h"
#include "lift/Unfold.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace parsynt;
using namespace parsynt::test;

namespace {

TEST(Unfold, SumFromUnknowns) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  Unfolding U = unfoldLoop(L, 3, /*FromUnknowns=*/true);
  EXPECT_EQ(exprToString(U.ValuesAtStep.at("sum")[0]), "sum@0");
  EXPECT_EQ(exprToString(U.ValuesAtStep.at("sum")[1]), "(sum@0 + s@1)");
  EXPECT_EQ(exprToString(U.ValuesAtStep.at("sum")[2]),
            "((sum@0 + s@1) + s@2)");
}

TEST(Unfold, FromInitEvaluatesConcretely) {
  Loop L = mustParse("sum = 0;\n"
                     "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  Unfolding U = unfoldLoop(L, 2, /*FromUnknowns=*/false);
  // Step 0 is the init; the simplifier folds 0 + s@1.
  EXPECT_EQ(exprToString(U.ValuesAtStep.at("sum")[0]), "0");
  EXPECT_EQ(exprToString(U.ValuesAtStep.at("sum")[1]), "s@1");
}

TEST(Unfold, MaterializeIndexOnlyWhenRead) {
  Loop Pure = mustParse("sum = 0;\n"
                        "for (i = 0; i < |s|; i++) { sum = sum + s[i]; }");
  EXPECT_FALSE(readsIndex(Pure));
  EXPECT_EQ(materializeIndex(Pure).Equations.size(), 1u);

  Loop Indexed = mustParse("cnt = 0;\n"
                           "for (i = 0; i < |s|; i++) {\n"
                           "  if (cnt == i && s[i] > 0) { cnt = cnt + 1; }\n"
                           "}");
  EXPECT_TRUE(readsIndex(Indexed));
  Loop Mat = materializeIndex(Indexed);
  ASSERT_EQ(Mat.Equations.size(), 2u);
  EXPECT_EQ(Mat.Equations[1].Name, "_pos");
  EXPECT_TRUE(Mat.Equations[1].IsAuxiliary);
  EXPECT_FALSE(readsIndex(Mat));

  // Semantics preserved: _pos mirrors the index.
  Rng R(11);
  for (int Round = 0; Round != 30; ++Round) {
    SeqEnv Seqs;
    std::vector<Value> Elems;
    for (int I = 0, N = static_cast<int>(R.intIn(0, 10)); I != N; ++I)
      Elems.push_back(Value::ofInt(R.intIn(-5, 5)));
    Seqs["s"] = Elems;
    EXPECT_EQ(runLoop(Indexed, Seqs)[0], runLoop(Mat, Seqs)[0]);
  }
}

TEST(TropicalNormalForm, GroupsUnknowns) {
  // max(max(u + a, 0) + b, 0) -> max(u + max(a+b, b-family...), pure):
  // the unknown must occur exactly once.
  ExprRef U = unknownVar("u");
  ExprRef A = inputVar("a"), B = inputVar("b");
  ExprRef E = maxE(add(maxE(add(U, A), intConst(0)), B), intConst(0));
  ExprRef NF = tropicalNormalize(E, {"u"});
  ASSERT_NE(NF, nullptr);
  EXPECT_EQ(countOccurrences(NF, {"u"}), 1u);
  expectEquivalent(E, NF);
}

TEST(TropicalNormalForm, StableAcrossDepths) {
  // The prefix-sum residual family extends on the right: the k-1 form is a
  // subterm of the k form (what fold-back depends on).
  ExprRef U = unknownVar("u");
  auto X = [](int I) { return inputVar("s@" + std::to_string(I)); };
  ExprRef E2 = maxE(add(U, X(1)), add(U, add(X(1), X(2))));
  ExprRef E3 = maxE(E2, add(U, add(add(X(1), X(2)), X(3))));
  ExprRef NF2 = tropicalNormalize(E2, {"u"});
  ExprRef NF3 = tropicalNormalize(E3, {"u"});
  ASSERT_NE(NF2, nullptr);
  ASSERT_NE(NF3, nullptr);
  // NF2's residual part appears verbatim inside NF3. Strip the grouping
  // prefix "(u + " and the closing parenthesis to obtain the residual.
  std::string S2 = exprToString(NF2), S3 = exprToString(NF3);
  size_t From = S2.find("max");
  ASSERT_NE(From, std::string::npos) << S2;
  std::string Residual2 = S2.substr(From, S2.size() - From - 1);
  EXPECT_NE(S3.find(Residual2), std::string::npos)
      << "NF2: " << S2 << "\nNF3: " << S3;
}

TEST(TropicalNormalForm, RejectsForeignOperators) {
  ExprRef U = unknownVar("u");
  EXPECT_EQ(tropicalNormalize(binary(BinaryOp::Div, U, intConst(2)), {"u"}),
            nullptr);
  EXPECT_EQ(tropicalNormalize(mul(U, U), {"u"}), nullptr);
}

TEST(BooleanNormalForm, GroupsClausesByUnknownLiteral) {
  // (!u | a) & (!u | b) groups to !u | (a & b).
  ExprRef U = unknownVar("u", Type::Bool);
  ExprRef A = eq(inputVar("s@1"), intConst(0));
  ExprRef B = eq(inputVar("s@2"), intConst(0));
  ExprRef E = andE(orE(notE(U), notE(A)), orE(notE(U), notE(B)));
  ExprRef NF = booleanNormalize(E, {"u"});
  ASSERT_NE(NF, nullptr);
  EXPECT_EQ(countOccurrences(NF, {"u"}), 1u);
  expectEquivalent(E, NF);
}

TEST(BooleanNormalForm, ExpandsBooleanIte) {
  ExprRef U = unknownVar("u", Type::Bool);
  ExprRef C = eq(inputVar("s@1"), intConst(1));
  ExprRef E = ite(C, boolConst(true), U); // seen1-style update
  ExprRef NF = booleanNormalize(E, {"u"});
  ASSERT_NE(NF, nullptr);
  expectEquivalent(E, NF);
}

TEST(BooleanNormalForm, RefusesCompositeUnknownAtoms) {
  // ofs@0 >= 0 has the unknown inside an arithmetic atom: the CNF grouping
  // cannot help, so the generic engine must be used instead.
  ExprRef E = ge(unknownVar("ofs@0"), intConst(0));
  EXPECT_EQ(booleanNormalize(E, {"ofs@0"}), nullptr);
}

TEST(Lift, MtsDiscoversTheRunningSum) {
  Loop L = mustParse("mts = 0;\n"
                     "for (i = 0; i < |s|; i++) { mts = max(mts + s[i], 0); }",
                     "mts");
  LiftResult R = liftLoop(L);
  ASSERT_GE(R.Auxiliaries.size(), 1u);
  // One discovered accumulator must be the plain running sum.
  bool FoundSum = false;
  for (const AuxAccumulator &Aux : R.Auxiliaries) {
    ExprRef Expected = add(stateVar(Aux.Name), seqAccess("s", inputVar("i")));
    if (exprEquals(Aux.Update, Expected) &&
        exprEquals(Aux.Init, intConst(0)))
      FoundSum = true;
  }
  EXPECT_TRUE(FoundSum) << R.Lifted.str();

  // The lifted loop preserves the original state variable's semantics.
  Rng Rand(23);
  for (int Round = 0; Round != 30; ++Round) {
    SeqEnv Seqs;
    std::vector<Value> Elems;
    for (int I = 0, N = static_cast<int>(Rand.intIn(0, 12)); I != N; ++I)
      Elems.push_back(Value::ofInt(Rand.intIn(-9, 9)));
    Seqs["s"] = Elems;
    EXPECT_EQ(runLoop(L, Seqs)[0], runLoop(R.Lifted, Seqs)[0]);
  }
}

TEST(Lift, BalancedParensDiscoversPrefixBound) {
  Loop L = mustParse("bal = true;\nofs = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (s[i] == '(') { ofs = ofs + 1; }\n"
                     "  else { ofs = ofs - 1; }\n"
                     "  bal = bal && (ofs >= 0);\n"
                     "}",
                     "balanced");
  LiftResult R = liftLoop(L);
  EXPECT_EQ(R.Auxiliaries.size(), 1u);
  EXPECT_TRUE(R.Unresolved.empty());
}

TEST(Lift, IsSortedUsesGuardedFirstElement) {
  Loop L = mustParse("sorted = true;\nprev = MIN_INT;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  sorted = sorted && (prev <= s[i]);\n"
                     "  prev = s[i];\n"
                     "}",
                     "is-sorted");
  LiftResult R = liftLoop(L);
  ASSERT_EQ(R.Auxiliaries.size(), 1u);
  // The accumulator is initialization-guarded (first element).
  EXPECT_TRUE(isa<IteExpr>(R.Auxiliaries[0].Update))
      << exprToString(R.Auxiliaries[0].Update);
}

TEST(Lift, AtoiDiscoversTheConstantFamily) {
  Loop L = mustParse("res = 0;\n"
                     "for (i = 0; i < |s|; i++) { res = res * 10 + (s[i] - "
                     "'0'); }",
                     "atoi");
  LiftResult R = liftLoop(L);
  ASSERT_EQ(R.Auxiliaries.size(), 1u);
  // p10' = p10 * 10, init 1.
  EXPECT_EQ(exprToString(R.Auxiliaries[0].Update),
            "(" + R.Auxiliaries[0].Name + " * 10)");
  EXPECT_TRUE(exprEquals(R.Auxiliaries[0].Init, intConst(1)));
}

TEST(Lift, MaxBlock1ReproducesThePaperFailure) {
  Loop L = mustParse("best = 0;\ncur = 0;\n"
                     "for (i = 0; i < |s|; i++) {\n"
                     "  if (s[i] == 1) { cur = cur + 1; } else { cur = 0; }\n"
                     "  best = max(best, cur);\n"
                     "}",
                     "max-block-1");
  LiftResult R = liftLoop(L);
  // Table 1's footnote: the rule set cannot resolve all of max-block-1's
  // needed accumulators; some collected parts stay unresolved.
  EXPECT_FALSE(R.Unresolved.empty());
}

} // namespace
