//===- tools/parsynt/main.cpp - The PARSYNT command-line driver -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Usage:
//   parsynt <file>                parallelize the loop in <file>
//   parsynt --benchmark <name>    parallelize a Table-1 benchmark
//   parsynt --list                list the Table-1 benchmarks
//   parsynt --analyze ...         static analysis only: lint diagnostics,
//                                 per-variable dependence classification,
//                                 and the IR verifier verdict — no synthesis
//   Flags: --emit-dafny <path>    write the Figure-7 proof artifact
//          --check-proof          check the induction obligations
//          --selftest             run the join on random data in parallel
//                                 and compare with the sequential loop
//          --runtime-stats        with --selftest: print the scheduler's
//                                 per-worker spawn/steal/park counters and
//                                 leaf/join timings after the runs
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "codegen/EmitCpp.h"
#include "frontend/Convert.h"
#include "pipeline/Parallelizer.h"
#include "proof/DafnyEmit.h"
#include "proof/ProofCheck.h"
#include "runtime/InterpReduce.h"
#include "suite/Benchmarks.h"
#include "support/Random.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace parsynt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parsynt [<file> | --benchmark <name> | --list]\n"
               "               [--analyze] [--emit-dafny <path>] "
               "[--check-proof] [--selftest]\n"
               "               [--runtime-stats]\n");
  return 2;
}

bool runSelfTest(const PipelineResult &Result, bool RuntimeStats) {
  const Loop &L = Result.Final;
  TaskPool Pool(defaultThreadCount());
  Pool.setTimingEnabled(RuntimeStats);
  Rng R(0x7357);
  for (unsigned Round = 0; Round != 20; ++Round) {
    size_t Len = static_cast<size_t>(R.intIn(0, 4000));
    SeqEnv Seqs;
    for (const SeqDecl &S : L.Sequences) {
      std::vector<Value> Elems;
      for (size_t I = 0; I != Len; ++I)
        Elems.push_back(Value::ofInt(R.intIn(-60, 60)));
      Seqs[S.Name] = std::move(Elems);
    }
    Env Params;
    for (const ParamDecl &P : L.Params)
      Params[P.Name] = Value::ofInt(R.intIn(-3, 3));
    StateTuple Seq = runLoop(L, Seqs, Params);
    StateTuple Par = parallelRunLoop(L, Result.Join.Components, Seqs, Pool,
                                     /*Grain=*/64, Params);
    if (Seq != Par) {
      std::printf("selftest MISMATCH at round %u\n  sequential: %s\n  "
                  "parallel:   %s\n",
                  Round, stateToString(L, Seq).c_str(),
                  stateToString(L, Par).c_str());
      return false;
    }
  }
  std::printf("selftest: 20 parallel runs match the sequential loop\n");
  if (RuntimeStats)
    std::printf("runtime stats (%u threads):\n%s",
                Pool.threadCount(), Pool.statsSnapshot().table().c_str());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string File, BenchmarkName, DafnyPath, CppPath;
  bool CheckProof = false, SelfTest = false, List = false, Analyze = false;
  bool RuntimeStats = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--benchmark" && I + 1 < argc)
      BenchmarkName = argv[++I];
    else if (Arg == "--emit-dafny" && I + 1 < argc)
      DafnyPath = argv[++I];
    else if (Arg == "--emit-cpp" && I + 1 < argc)
      CppPath = argv[++I];
    else if (Arg == "--analyze")
      Analyze = true;
    else if (Arg == "--check-proof")
      CheckProof = true;
    else if (Arg == "--selftest")
      SelfTest = true;
    else if (Arg == "--runtime-stats")
      RuntimeStats = true;
    else if (Arg == "--list")
      List = true;
    else if (!Arg.empty() && Arg[0] == '-')
      return usage();
    else
      File = Arg;
  }

  if (List) {
    for (const Benchmark &B : allBenchmarks())
      std::printf("%-12s %s\n", B.Name.c_str(), B.Description.c_str());
    return 0;
  }

  Loop L;
  if (!BenchmarkName.empty()) {
    const Benchmark *B = findBenchmark(BenchmarkName);
    if (!B) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   BenchmarkName.c_str());
      return 2;
    }
    L = parseBenchmark(*B);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    DiagnosticEngine Diags;
    auto Parsed = parseLoop(Buffer.str(), File, Diags);
    if (!Parsed) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    // Surface non-fatal lint warnings (e.g. index-dependence notes).
    if (!Diags.diagnostics().empty())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    L = *Parsed;
  } else {
    return usage();
  }

  if (Analyze) {
    DependenceInfo Info = analyzeDependences(L);
    std::printf("%s", Info.table().c_str());
    VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
    if (!Report.ok()) {
      std::printf("%s", Report.str().c_str());
      return 1;
    }
    std::printf("verifier: ok (%zu state variables, %zu sccs)\n",
                Info.Vars.size(), Info.Sccs.size());
    return 0;
  }

  PipelineResult Result = parallelizeLoop(L);
  std::printf("%s", Result.report().c_str());
  std::printf("times: join %.2fs, lift %.2fs, total %.2fs\n",
              Result.JoinSeconds, Result.LiftSeconds, Result.TotalSeconds);
  if (!Result.Success)
    return 1;

  if (CheckProof) {
    ProofReport Proof =
        checkHomomorphismProof(Result.Final, Result.Join.Components);
    std::printf("%s\n", Proof.str().c_str());
    if (!Proof.Verified)
      return 1;
  }
  if (!DafnyPath.empty()) {
    std::ofstream Out(DafnyPath);
    Out << emitDafnyProof(Result.Final, Result.Join.Components);
    std::printf("wrote Dafny artifact to %s\n", DafnyPath.c_str());
  }
  if (!CppPath.empty()) {
    std::ofstream Out(CppPath);
    Out << emitParallelCpp(Result.Final, Result.Join.Components);
    std::printf("wrote parallel C++ to %s (build: g++ -O2 -std=c++17 "
                "-pthread -I <parsynt>/src %s)\n",
                CppPath.c_str(), CppPath.c_str());
  }
  if (SelfTest && !runSelfTest(Result, RuntimeStats))
    return 1;
  return 0;
}
