//===- tools/parsynt/main.cpp - The PARSYNT command-line driver -----------===//
//
// Part of Parsynt-CXX, a reproduction of "Synthesis of Divide and Conquer
// Parallelism for Loops" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Usage:
//   parsynt <file>                parallelize the loop in <file>
//   parsynt --benchmark <name>    parallelize a Table-1 benchmark
//   parsynt --list                list the Table-1 benchmarks
//   parsynt --analyze ...         static analysis only: lint diagnostics,
//                                 per-variable dependence classification,
//                                 and the IR verifier verdict — no synthesis
//   Flags: --emit-dafny <path>    write the Figure-7 proof artifact
//          --emit-cpp <path>      write the parallel C++ program (or the
//                                 sequential fallback when synthesis fails)
//          --check-proof          check the induction obligations
//          --selftest             run the join on random data in parallel
//                                 and compare with the sequential loop
//          --runtime-stats        with --selftest: print the scheduler's
//                                 per-worker spawn/steal/park counters and
//                                 leaf/join timings after the runs
//          --trace <path>         record structured spans across the whole
//                                 pipeline and write a Chrome/Perfetto JSON
//                                 trace (load in ui.perfetto.dev)
//          --phase-report         print per-phase wall time, span counts,
//                                 and the hottest spans (implies tracing)
//          --report json          print a machine-readable run report
//                                 (schema observe/Report.h) on stdout; the
//                                 human-readable output moves to stderr
//          --timeout <dur>        whole-loop wall-clock budget
//          --join-timeout <dur>   budget for each join-synthesis call
//          --lift-timeout <dur>   budget for each lifting attempt
//                                 (<dur> is e.g. '500ms', '2s', '1m', or a
//                                 plain number of seconds)
//
// Exit codes:
//   0  success (join synthesized, requested artifacts written)
//   1  synthesis failure (no join; a sequential fallback is still emitted
//      when --emit-cpp was given) or an internal error
//   2  usage / input error (bad flags, unknown benchmark, unreadable or
//      unparsable file)
//   3  timeout (a deadline from --timeout/--join-timeout/--lift-timeout
//      expired; a sequential fallback is still emitted with --emit-cpp)
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "codegen/EmitCpp.h"
#include "frontend/Convert.h"
#include "observe/PoolMetrics.h"
#include "observe/Report.h"
#include "observe/TraceExport.h"
#include "observe/Tracer.h"
#include "pipeline/Parallelizer.h"
#include "proof/DafnyEmit.h"
#include "proof/ProofCheck.h"
#include "runtime/InterpReduce.h"
#include "suite/Benchmarks.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

using namespace parsynt;

namespace {

constexpr int ExitSuccess = 0;
constexpr int ExitSynthFailure = 1;
constexpr int ExitUsage = 2;
constexpr int ExitTimeout = 3;

/// Human-readable output stream: stdout normally, stderr under
/// `--report json` so the JSON document owns stdout.
FILE *HumanOut = stdout;

int usage() {
  std::fprintf(stderr,
               "usage: parsynt [<file> | --benchmark <name> | --list]\n"
               "               [--analyze] [--emit-dafny <path>] "
               "[--emit-cpp <path>]\n"
               "               [--check-proof] [--selftest] "
               "[--runtime-stats]\n"
               "               [--trace <path>] [--phase-report] "
               "[--report json]\n"
               "               [--timeout <dur>] [--join-timeout <dur>] "
               "[--lift-timeout <dur>]\n"
               "durations: '500ms', '2s', '1m', or plain seconds\n"
               "exit codes: 0 success, 1 synthesis failure, 2 usage, "
               "3 timeout\n");
  return ExitUsage;
}

/// Parses "500ms" / "2s" / "1.5m" / plain seconds. Returns a negative
/// value on malformed input.
double parseDuration(const std::string &Spec) {
  if (Spec.empty())
    return -1;
  size_t End = 0;
  double Magnitude;
  try {
    Magnitude = std::stod(Spec, &End);
  } catch (const std::exception &) {
    return -1;
  }
  if (Magnitude < 0)
    return -1;
  std::string Unit = Spec.substr(End);
  if (Unit.empty() || Unit == "s")
    return Magnitude;
  if (Unit == "ms")
    return Magnitude / 1000.0;
  if (Unit == "m")
    return Magnitude * 60.0;
  return -1;
}

bool runSelfTest(const PipelineResult &Result, bool RuntimeStats) {
  const Loop &L = Result.Final;
  TaskPool Pool(defaultThreadCount());
  Pool.setTimingEnabled(RuntimeStats);
  Rng R(0x7357);
  for (unsigned Round = 0; Round != 20; ++Round) {
    size_t Len = static_cast<size_t>(R.intIn(0, 4000));
    SeqEnv Seqs;
    for (const SeqDecl &S : L.Sequences) {
      std::vector<Value> Elems;
      for (size_t I = 0; I != Len; ++I)
        Elems.push_back(Value::ofInt(R.intIn(-60, 60)));
      Seqs[S.Name] = std::move(Elems);
    }
    Env Params;
    for (const ParamDecl &P : L.Params)
      Params[P.Name] = Value::ofInt(R.intIn(-3, 3));
    StateTuple Seq = runLoop(L, Seqs, Params);
    StateTuple Par = parallelRunLoop(L, Result.Join.Components, Seqs, Pool,
                                     /*Grain=*/64, Params);
    if (Seq != Par) {
      std::fprintf(HumanOut,
                   "selftest MISMATCH at round %u\n  sequential: %s\n  "
                   "parallel:   %s\n",
                   Round, stateToString(L, Seq).c_str(),
                   stateToString(L, Par).c_str());
      return false;
    }
  }
  if (Result.SequentialFallback)
    std::fprintf(HumanOut, "selftest: 20 sequential-fallback runs match the "
                           "sequential loop\n");
  else
    std::fprintf(HumanOut,
                 "selftest: 20 parallel runs match the sequential loop\n");
  if (RuntimeStats)
    std::fprintf(HumanOut, "runtime stats (%u threads):\n%s",
                 Pool.threadCount(), poolTable(Pool.statsSnapshot()).c_str());
  return true;
}

int run(int argc, char **argv, std::string &CurrentInput) {
  std::string File, BenchmarkName, DafnyPath, CppPath, TracePath;
  bool CheckProof = false, SelfTest = false, List = false, Analyze = false;
  bool RuntimeStats = false, PhaseReport = false, ReportJson = false;
  PipelineOptions Options;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--benchmark" && I + 1 < argc)
      BenchmarkName = argv[++I];
    else if (Arg == "--emit-dafny" && I + 1 < argc)
      DafnyPath = argv[++I];
    else if (Arg == "--emit-cpp" && I + 1 < argc)
      CppPath = argv[++I];
    else if (Arg == "--trace" && I + 1 < argc)
      TracePath = argv[++I];
    else if (Arg == "--phase-report")
      PhaseReport = true;
    else if (Arg == "--report") {
      if (I + 1 >= argc || std::string(argv[I + 1]) != "json") {
        std::fprintf(stderr,
                     "error: --report takes the format 'json' (got '%s')\n",
                     I + 1 < argc ? argv[I + 1] : "<nothing>");
        return ExitUsage;
      }
      ++I;
      ReportJson = true;
    } else if ((Arg == "--timeout" || Arg == "--join-timeout" ||
              Arg == "--lift-timeout") &&
             I + 1 < argc) {
      double Seconds = parseDuration(argv[++I]);
      if (Seconds < 0) {
        std::fprintf(stderr,
                     "error: malformed duration '%s' for %s (expected e.g. "
                     "'500ms', '2s', '1m')\n",
                     argv[I], Arg.c_str());
        return ExitUsage;
      }
      if (Arg == "--timeout")
        Options.TimeoutSeconds = Seconds;
      else if (Arg == "--join-timeout")
        Options.JoinTimeoutSeconds = Seconds;
      else
        Options.LiftTimeoutSeconds = Seconds;
    } else if (Arg == "--analyze")
      Analyze = true;
    else if (Arg == "--check-proof")
      CheckProof = true;
    else if (Arg == "--selftest")
      SelfTest = true;
    else if (Arg == "--runtime-stats")
      RuntimeStats = true;
    else if (Arg == "--list")
      List = true;
    else if (!Arg.empty() && Arg[0] == '-')
      return usage();
    else
      File = Arg;
  }

  if (ReportJson)
    HumanOut = stderr;
  if (PhaseReport || !TracePath.empty())
    Tracer::setEnabled(true);

  if (List) {
    for (const Benchmark &B : allBenchmarks())
      std::printf("%-12s %s\n", B.Name.c_str(), B.Description.c_str());
    return ExitSuccess;
  }

  Loop L;
  if (!BenchmarkName.empty()) {
    CurrentInput = "benchmark '" + BenchmarkName + "'";
    const Benchmark *B = findBenchmark(BenchmarkName);
    if (!B) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   BenchmarkName.c_str());
      return ExitUsage;
    }
    L = parseBenchmark(*B);
  } else if (!File.empty()) {
    CurrentInput = "'" + File + "'";
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return ExitUsage;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    DiagnosticEngine Diags;
    auto Parsed = parseLoop(Buffer.str(), File, Diags);
    if (!Parsed) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return ExitUsage;
    }
    // Surface non-fatal lint warnings (e.g. index-dependence notes).
    if (!Diags.diagnostics().empty())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    L = *Parsed;
  } else {
    return usage();
  }

  if (Analyze) {
    DependenceInfo Info = analyzeDependences(L);
    std::fprintf(HumanOut, "%s", Info.table().c_str());
    VerifierReport Report = verifyLoop(L, VerifyPhase::AfterFrontend);
    if (!Report.ok()) {
      std::fprintf(HumanOut, "%s", Report.str().c_str());
      return ExitSynthFailure;
    }
    std::fprintf(HumanOut, "verifier: ok (%zu state variables, %zu sccs)\n",
                 Info.Vars.size(), Info.Sccs.size());
    return ExitSuccess;
  }

  PipelineResult Result = parallelizeLoop(L, Options);
  std::fprintf(HumanOut, "%s", Result.report().c_str());
  std::fprintf(HumanOut, "times: join %.2fs, lift %.2fs, total %.2fs\n",
               Result.JoinSeconds, Result.LiftSeconds, Result.TotalSeconds);

  // Every post-pipeline exit goes through here so `--report json` covers
  // failures and timeouts with the same schema as successes.
  double ProofSeconds = -1;
  const std::string ReportName =
      !BenchmarkName.empty() ? BenchmarkName : File;
  auto finish = [&](int Code) {
    if (ReportJson) {
      RunReport Report;
      Report.Tool = "parsynt";
      Report.Benchmarks.push_back(
          makeBenchmarkEntry(ReportName, Result, ProofSeconds));
      std::printf("%s", Report.toJson().c_str());
    }
    return Code;
  };

  if (!Result.Success) {
    // Graceful degradation: the sequential fallback is still emittable
    // and runnable, so honor --emit-cpp / --selftest before exiting with
    // the failure taxonomy code.
    if (!CppPath.empty() && Result.SequentialFallback) {
      std::ofstream Out(CppPath);
      Out << emitParallelCpp(Result.Final, Result.Join.Components);
      std::fprintf(HumanOut,
                   "wrote sequential fallback C++ to %s (build: g++ -O2 "
                   "-std=c++17 -pthread -I <parsynt>/src %s)\n",
                   CppPath.c_str(), CppPath.c_str());
    }
    if (SelfTest && Result.SequentialFallback)
      runSelfTest(Result, RuntimeStats);
    return finish(Result.Failure.Kind == FailureKind::Timeout
                      ? ExitTimeout
                      : ExitSynthFailure);
  }

  if (CheckProof) {
    ProofReport Proof =
        checkHomomorphismProof(Result.Final, Result.Join.Components);
    ProofSeconds = Proof.Seconds;
    std::fprintf(HumanOut, "%s\n", Proof.str().c_str());
    if (!Proof.Verified)
      return finish(ExitSynthFailure);
  }
  if (!DafnyPath.empty()) {
    std::ofstream Out(DafnyPath);
    Out << emitDafnyProof(Result.Final, Result.Join.Components);
    std::fprintf(HumanOut, "wrote Dafny artifact to %s\n", DafnyPath.c_str());
  }
  if (!CppPath.empty()) {
    std::ofstream Out(CppPath);
    Out << emitParallelCpp(Result.Final, Result.Join.Components);
    std::fprintf(HumanOut,
                 "wrote parallel C++ to %s (build: g++ -O2 -std=c++17 "
                 "-pthread -I <parsynt>/src %s)\n",
                 CppPath.c_str(), CppPath.c_str());
  }
  if (SelfTest && !runSelfTest(Result, RuntimeStats))
    return finish(ExitSynthFailure);
  return finish(ExitSuccess);
}

/// The internal-error epilogue. When `--report json` was requested the
/// caught exception's message is preserved in the report's failure entry
/// instead of being dropped on stderr only.
int internalError(const std::string &Input, const std::string &Message,
                  bool ReportJson) {
  std::fprintf(stderr, "parsynt: internal error while processing %s: %s\n",
               Input.c_str(), Message.c_str());
  if (ReportJson) {
    RunReport Report;
    Report.Tool = "parsynt";
    BenchmarkEntry E;
    E.Name = Input;
    E.Failure = FailureInfo(FailureKind::InternalError, Message);
    Report.Benchmarks.push_back(std::move(E));
    std::printf("%s", Report.toJson().c_str());
  }
  return ExitSynthFailure;
}

} // namespace

int main(int argc, char **argv) {
  std::string CurrentInput = "<no input>";
  // Pre-scan the observability flags so the error paths still honor them:
  // an internal error must flush the trace and produce the report.
  std::string TracePath;
  bool PhaseReport = false, ReportJson = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--trace" && I + 1 < argc)
      TracePath = argv[++I];
    else if (Arg == "--phase-report")
      PhaseReport = true;
    else if (Arg == "--report" && I + 1 < argc &&
             std::string(argv[I + 1]) == "json")
      ReportJson = true;
  }
  if (PhaseReport || !TracePath.empty())
    Tracer::setEnabled(true);

  int Code;
  try {
    Code = run(argc, argv, CurrentInput);
  } catch (const std::exception &E) {
    Code = internalError(CurrentInput, E.what(), ReportJson);
  } catch (...) {
    Code = internalError(CurrentInput, "unknown exception", ReportJson);
  }

  if (PhaseReport)
    std::fprintf(ReportJson ? stderr : stdout, "%s", phaseReport().c_str());
  if (!TracePath.empty()) {
    std::string Error;
    if (writeTraceFile(TracePath, &Error))
      std::fprintf(stderr, "wrote trace to %s\n", TracePath.c_str());
    else
      std::fprintf(stderr, "parsynt: %s\n", Error.c_str());
  }
  return Code;
}
