#!/usr/bin/env bash
# Benchmark report CI: builds Release, runs both bench harnesses in
# `--report json` mode, validates the documents against the
# parsynt-run-report schema, and archives them at the repository root as
# BENCH_table1.json and BENCH_fig8.json.
#
# Usage: tools/ci/bench_report.sh [build-dir]
#   (default build dir: build-bench)
#
# Environment: PARSYNT_FIG8_ELEMS / PARSYNT_FIG8_THREADS pass through to
# the Figure-8 harness; CI boxes with few cores should set a reduced
# element count to keep the sweep short.

set -euo pipefail

if [[ "${1:-}" == -* ]]; then
  sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
fi

cd "$(dirname "$0")/../.."
BUILD="${1:-build-bench}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j "${JOBS}" --target table1 fig8

# The JSON document owns stdout in report mode; the human tables go to
# stderr and stay visible in the CI log.
"${BUILD}/bench/table1" --report json > BENCH_table1.json
"${BUILD}/bench/fig8" --report json > BENCH_fig8.json

# Schema gate: a malformed or incomplete document fails the job. The
# checks mirror the envelope documented in DESIGN.md §5e — consumers key
# on schema/version, per-benchmark outcome, and the totals block.
validate() {
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
path, tool, min_benchmarks = sys.argv[1], sys.argv[2], int(sys.argv[3])
doc = json.load(open(path))
assert doc["schema"] == "parsynt-run-report", f"{path}: bad schema tag"
assert doc["version"] == 1, f"{path}: unknown schema version"
assert doc["tool"] == tool, f"{path}: tool is {doc['tool']!r}, want {tool!r}"
benches = doc["benchmarks"]
assert len(benches) >= min_benchmarks, \
    f"{path}: only {len(benches)} benchmarks, want >= {min_benchmarks}"
for b in benches:
    assert b["outcome"] in ("success", "failure"), \
        f"{path}: {b['name']}: bad outcome {b['outcome']!r}"
    assert "phase_seconds" in b and "metrics" in b, \
        f"{path}: {b['name']}: missing phase_seconds/metrics"
    if b["outcome"] == "failure":
        assert "failure" in b, f"{path}: {b['name']}: failure without cause"
totals = doc["totals"]
assert totals["benchmarks"] == len(benches), f"{path}: totals mismatch"
assert totals["successes"] + totals["failures"] == len(benches), \
    f"{path}: totals do not add up"
print(f"{path}: ok ({len(benches)} benchmarks, "
      f"{totals['successes']} successes)")
EOF
}

validate BENCH_table1.json table1 22
validate BENCH_fig8.json fig8 22

echo "bench_report.sh: reports archived"
