#!/usr/bin/env bash
# Sanitizer CI sweep: builds and tests the project under ASan+UBSan, then
# re-runs the threading-sensitive tests under TSan. Warnings are promoted
# to errors in both configurations.
#
# Usage: tools/ci/sanitize.sh [build-dir-prefix]
#   Build trees are created at <prefix>-asan and <prefix>-tsan
#   (default prefix: build-sanitize).

set -euo pipefail

if [[ "${1:-}" == -* ]]; then
  sed -n '2,8p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
fi

cd "$(dirname "$0")/../.."
PREFIX="${1:-build-sanitize}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Chaos smoke: run the Table-1 suite under a starvation deadline and the
# CLI under injected synthesizer/runtime faults. Graceful exits only —
# 0 (solved inside the budget), 1 (structured synthesis failure), or
# 3 (structured timeout); crashes, sanitizer aborts, and any other code
# fail the sweep.
chaos_smoke() {
  local bin="$1" rc b
  for b in $("${bin}" --list | awk '{print $1}'); do
    rc=0
    "${bin}" --benchmark "${b}" --join-timeout 1ms >/dev/null 2>&1 || rc=$?
    case "${rc}" in
      0|1|3) ;;
      *) echo "chaos smoke: '${b}' exited ${rc} under --join-timeout 1ms" >&2
         return 1 ;;
    esac
  done
  # Forced candidate rejections: the search must recover and still solve.
  PARSYNT_FAULT='synth.reject:limit=2' \
    "${bin}" --benchmark sum >/dev/null
  # Runtime faults under the parallel selftest: forced steal failures and
  # spurious wakeups must not change any result.
  PARSYNT_FAULT='pool.steal:every=7:limit=500,pool.wakeup:every=3' \
    "${bin}" --benchmark mps --selftest >/dev/null
}

# Trace smoke: a Table-1 benchmark with tracing on must still solve, and
# the exported file must be a loadable Chrome trace with spans in it.
trace_smoke() {
  local bin="$1" out
  out="$(mktemp)"
  "${bin}" --benchmark mts --trace "${out}" --phase-report >/dev/null
  python3 - "${out}" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "trace smoke: no spans recorded"
assert any(e["name"] == "synthesizeJoin" for e in events), \
    "trace smoke: no synthesis span"
EOF
  rm -f "${out}"
}

echo "== ASan + UBSan =="
cmake -B "${PREFIX}-asan" -S . \
  -DPARSYNT_SANITIZE=address \
  -DPARSYNT_WERROR=ON
cmake --build "${PREFIX}-asan" -j "${JOBS}"
# abort_on_error: make ASan failures fail the ctest run loudly.
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}"
# Scheduler smoke under ASan: the full Figure-8 harness on a small input.
PARSYNT_FIG8_ELEMS=200000 ASAN_OPTIONS=abort_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1 "${PREFIX}-asan/bench/fig8" --stats \
  > /dev/null
echo "== chaos smoke (ASan) =="
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  chaos_smoke "${PREFIX}-asan/tools/parsynt"
echo "== trace smoke (ASan) =="
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  trace_smoke "${PREFIX}-asan/tools/parsynt"

echo "== TSan (runtime / task-pool tests) =="
cmake -B "${PREFIX}-tsan" -S . \
  -DPARSYNT_SANITIZE=thread \
  -DPARSYNT_WERROR=ON \
  -DPARSYNT_TEST_TIMEOUT=3600
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
# The parallel runtime is the only component that spawns threads; limit
# the TSan pass to the tests that exercise it (full synthesis under TSan
# is prohibitively slow). runtime_test carries the work-stealing pool's
# dedicated races: grain-1 recursion at 2-64 threads, oversubscribed
# nested waits, concurrent external drivers, and the park/wake handshake.
# The observe suites join them: per-thread trace buffers are drained while
# pool workers publish spans, and the metrics counters are hammered from
# eight threads at once.
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  --no-tests=error \
  -R '^(TaskPool|ParallelReduce|SequentialReduce|InterpReduce|EmitCpp|Representative|Tracer|TracerOff|TraceExport|Metrics|PoolMetrics|Report)'
# Scheduler smoke under TSan as well (all 22 kernels through the pool).
PARSYNT_FIG8_ELEMS=200000 TSAN_OPTIONS=halt_on_error=1 \
  "${PREFIX}-tsan/bench/fig8" --stats > /dev/null
echo "== chaos smoke (TSan) =="
TSAN_OPTIONS=halt_on_error=1 chaos_smoke "${PREFIX}-tsan/tools/parsynt"
echo "== trace smoke (TSan) =="
TSAN_OPTIONS=halt_on_error=1 trace_smoke "${PREFIX}-tsan/tools/parsynt"

echo "sanitize.sh: all clean"
