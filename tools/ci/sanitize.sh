#!/usr/bin/env bash
# Sanitizer CI sweep: builds and tests the project under ASan+UBSan, then
# re-runs the threading-sensitive tests under TSan. Warnings are promoted
# to errors in both configurations.
#
# Usage: tools/ci/sanitize.sh [build-dir-prefix]
#   Build trees are created at <prefix>-asan and <prefix>-tsan
#   (default prefix: build-sanitize).

set -euo pipefail

if [[ "${1:-}" == -* ]]; then
  sed -n '2,8p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
fi

cd "$(dirname "$0")/../.."
PREFIX="${1:-build-sanitize}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== ASan + UBSan =="
cmake -B "${PREFIX}-asan" -S . \
  -DPARSYNT_SANITIZE=address \
  -DPARSYNT_WERROR=ON
cmake --build "${PREFIX}-asan" -j "${JOBS}"
# abort_on_error: make ASan failures fail the ctest run loudly.
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}"

echo "== TSan (runtime / task-pool tests) =="
cmake -B "${PREFIX}-tsan" -S . \
  -DPARSYNT_SANITIZE=thread \
  -DPARSYNT_WERROR=ON
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
# The parallel runtime is the only component that spawns threads; limit
# the TSan pass to the tests that exercise it (full synthesis under TSan
# is prohibitively slow).
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'runtime|codegen'

echo "sanitize.sh: all clean"
